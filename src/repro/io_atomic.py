"""Torn-write-proof persistence primitives shared by every on-disk writer.

Two subsystems persist binary state to disk — the accelerator engine store
(:mod:`repro.accelerator.engine_store`) and the training checkpoints of
:mod:`repro.checkpoint` — and both need the same two guarantees:

* **Atomicity** — a reader can never observe a half-written file.  Writes go
  to a temporary file in the *destination directory* (same filesystem, so the
  final rename cannot degrade to a copy), are flushed and ``fsync``-ed, and
  land via :func:`os.replace`.  A crash at any point leaves either the old
  file or the new file, never a torn hybrid.
* **Integrity** — a file that *was* torn by something outside our control
  (power loss before the directory entry was durable, a corrupting transport,
  an injected fault) is detected rather than trusted.  The checksummed
  envelope prefixes the payload with a magic tag and a SHA-256 digest of the
  body; :func:`unwrap_checksummed` raises :class:`ChecksumError` on any
  mismatch, which callers treat as "this file does not exist".

The ``atomic-write-discipline`` lint rule holds the persistence modules to
this module: a bare ``open(path, "wb")`` + dump in ``engine_store.py`` /
``checkpoint.py`` / ``store_service.py`` is a finding.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

__all__ = [
    "ChecksumError",
    "atomic_write_bytes",
    "atomic_write_pickle",
    "wrap_checksummed",
    "unwrap_checksummed",
    "atomic_write_checksummed",
    "read_checksummed",
]

#: Leading magic of a checksummed envelope (identifies the format on disk).
ENVELOPE_MAGIC = b"RPROCK1\n"

_DIGEST_BYTES = hashlib.sha256().digest_size


class ChecksumError(ValueError):
    """A checksummed envelope is truncated, corrupt, or not an envelope."""


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------

def atomic_write_bytes(path: os.PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` via write-temp + fsync + atomic rename.

    The temporary file lives next to the destination so :func:`os.replace`
    stays a same-filesystem rename; on any failure the temp file is removed
    and the previous contents of ``path`` (if any) are untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="wb", dir=str(path.parent), prefix=path.name + ".",
        suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def atomic_write_pickle(path: os.PathLike, payload,
                        protocol: int = pickle.HIGHEST_PROTOCOL) -> Path:
    """Atomically persist ``pickle.dumps(payload)`` to ``path`` (no envelope —
    the historical engine-store file format, byte-compatible with files
    written before this helper existed)."""
    return atomic_write_bytes(path, pickle.dumps(payload, protocol=protocol))


# ---------------------------------------------------------------------------
# Checksummed envelope
# ---------------------------------------------------------------------------

def wrap_checksummed(body: bytes) -> bytes:
    """Prefix ``body`` with the envelope magic and its SHA-256 digest."""
    return ENVELOPE_MAGIC + hashlib.sha256(body).digest() + bytes(body)


def unwrap_checksummed(blob: bytes) -> bytes:
    """Validate and strip an envelope; raises :class:`ChecksumError` on a
    missing magic, truncation, or digest mismatch."""
    header = len(ENVELOPE_MAGIC) + _DIGEST_BYTES
    if len(blob) < header or not blob.startswith(ENVELOPE_MAGIC):
        raise ChecksumError("not a checksummed envelope (missing or "
                            "truncated header)")
    digest = blob[len(ENVELOPE_MAGIC):header]
    body = blob[header:]
    if hashlib.sha256(body).digest() != digest:
        raise ChecksumError("checksum mismatch (torn or corrupted file)")
    return body


def atomic_write_checksummed(path: os.PathLike, payload,
                             protocol: int = pickle.HIGHEST_PROTOCOL) -> Path:
    """Atomically persist ``payload`` pickled inside a checksummed envelope."""
    body = pickle.dumps(payload, protocol=protocol)
    return atomic_write_bytes(path, wrap_checksummed(body))


def read_checksummed(path: os.PathLike):
    """Load a checksummed-envelope pickle written by
    :func:`atomic_write_checksummed`.

    Raises :class:`ChecksumError` on integrity failures and lets
    ``OSError``/``pickle`` errors propagate — callers decide how a bad file
    degrades (the checkpoint manager falls back to the previous one).
    """
    blob = Path(path).read_bytes()
    return pickle.loads(unwrap_checksummed(blob))
