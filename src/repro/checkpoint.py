"""Durable training: atomic, checksummed, resumable checkpoints + sentinels.

Every robust-accuracy table in this reproduction comes out of a long
adversarial-training run, and until this module a SIGKILL, OOM kill or NaN
blowup at epoch 40 of 50 threw the whole run away.  :class:`CheckpointManager`
makes training crash-durable the way the engine store made evaluation
cache-durable:

* **Atomic + checksummed files.**  Each checkpoint is one pickle inside a
  SHA-256 envelope (:mod:`repro.io_atomic`), written write-temp + fsync +
  atomic rename.  A torn, truncated, corrupted or schema-stale file is
  *detected* and degrades to the previous checkpoint in the ring with
  exactly one warning — never a crash, never silently trusted bytes.
* **Complete state.**  A checkpoint carries the model ``state_dict``, the
  optimizer's scratch state (SGD momentum / Adam moments, exported by
  parameter index), the LR-schedule position, the trainer RNG's
  bit-generator state (which also drives the data-loader shuffle and the
  attack's start noise — one stream), the :class:`TrainingHistory`, the
  mid-epoch position (current permutation + batch offset) and trainer
  extras (Free training's persistent delta, the RPS precision schedule
  position).  Restoring all of it makes a resumed run **bit-identical** to
  the uninterrupted run; restored weights bump parameter versions so the
  quantized-weight and inference-plan caches invalidate correctly.
* **Keep-last-K ring.**  ``REPRO_CKPT_KEEP`` bounds the directory; pruning
  happens after each successful save, oldest first.
* **Divergence sentinels.**  :class:`DivergenceSentinel` watches each batch
  for a non-finite loss or a gradient-norm explosion past a configurable
  multiple of the running median, and the trainer rolls back to the last
  checkpoint inside a bounded budget (``REPRO_TRAIN_ROLLBACK_BUDGET``)
  before aborting with :class:`DivergenceError`.

Fault injection: the manager declares ``train.ckpt.save`` and
``train.ckpt.load`` :func:`repro.faults.fault_point` sites (the blob passes
through them, so ``corrupt`` faults produce genuinely corrupt files/reads
and ``error``/``kill`` faults model crashes mid-persistence); the training
loops add ``train.batch`` and ``train.data.next``.  The kill–resume chaos
harness drives all of them through ``REPRO_FAULTS``.
"""

from __future__ import annotations

import copy
import math
import warnings
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from . import config, faults, io_atomic

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "DivergenceError",
    "DivergenceSentinel",
    "capture_training_state",
    "restore_training_state",
    "resolve_manager",
]

#: Bump when the checkpoint payload layout (or the meaning of its keys)
#: changes; files with any other schema are *stale* and degrade like corrupt
#: ones.
CHECKPOINT_SCHEMA_VERSION = 1

_PREFIX = "ckpt-"
_SUFFIX = ".pkl"


class DivergenceError(RuntimeError):
    """Training diverged and the rollback budget is exhausted."""


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------

class CheckpointManager:
    """A keep-last-K ring of atomic, checksummed training checkpoints.

    Files are named ``ckpt-<global step>.pkl``; the newest readable one wins
    on :meth:`load_latest`.  All integrity failures — truncation, corruption,
    a foreign or stale schema — degrade to the next-older file with exactly
    one warning per bad file.
    """

    def __init__(self, directory, keep: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.keep = max(1, keep if keep is not None else config.ckpt_keep())

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> Path:
        return self.directory / f"{_PREFIX}{step:010d}{_SUFFIX}"

    def steps(self) -> List[int]:
        """Global steps with a checkpoint file on disk, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            stem = path.name[len(_PREFIX):-len(_SUFFIX)]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, step: int, payload: Dict) -> Path:
        """Atomically persist ``payload`` as the checkpoint for ``step``.

        The serialized blob passes through the ``train.ckpt.save`` fault
        point, so an injected ``error``/``kill`` models a crash mid-save
        (the atomic rename guarantees older checkpoints survive it) and an
        injected ``corrupt`` writes a genuinely bad file for the load path
        to detect.
        """
        payload = dict(payload)
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION
        payload["step"] = int(step)
        blob = io_atomic.wrap_checksummed(
            io_atomic.pickle.dumps(payload,
                                   protocol=io_atomic.pickle.HIGHEST_PROTOCOL))
        blob = faults.fault_point("train.ckpt.save", blob)
        path = io_atomic.atomic_write_bytes(self.path_for(step), blob)
        self._prune()
        return path

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[:-self.keep]:
            try:
                self.path_for(step).unlink()
            except OSError:
                pass    # a concurrent pruner got there first

    # ------------------------------------------------------------------
    def load_latest(self) -> Optional[Dict]:
        """The newest readable checkpoint payload, or ``None``.

        Unreadable files (torn, corrupt, stale schema) each warn once and
        fall through to the previous checkpoint in the ring.
        """
        for step in reversed(self.steps()):
            payload = self._load_one(self.path_for(step))
            if payload is not None:
                return payload
        return None

    def _load_one(self, path: Path) -> Optional[Dict]:
        try:
            blob = path.read_bytes()
            blob = faults.fault_point("train.ckpt.load", blob)
            payload = io_atomic.pickle.loads(io_atomic.unwrap_checksummed(blob))
        except faults.FaultError:
            raise               # an injected crash is a crash, not corruption
        except Exception as exc:
            warnings.warn(
                f"ignoring unreadable checkpoint {path.name} ({exc}); "
                f"falling back to the previous checkpoint", stacklevel=3)
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            warnings.warn(
                f"ignoring stale checkpoint {path.name} (schema "
                f"{payload.get('schema') if isinstance(payload, dict) else '?'}"
                f" != {CHECKPOINT_SCHEMA_VERSION}); falling back to the "
                f"previous checkpoint", stacklevel=3)
            return None
        return payload


def resolve_manager(checkpoint) -> Optional[CheckpointManager]:
    """Resolve ``fit``'s ``checkpoint=`` argument to a manager (or ``None``).

    An explicit :class:`CheckpointManager` or directory path wins; otherwise
    a non-empty ``REPRO_CKPT_DIR`` turns checkpointing on for every training
    run in the process; otherwise durability is off.
    """
    if isinstance(checkpoint, CheckpointManager):
        return checkpoint
    if checkpoint is not None:
        return CheckpointManager(checkpoint)
    env_dir = config.ckpt_dir()
    if env_dir:
        return CheckpointManager(env_dir)
    return None


# ---------------------------------------------------------------------------
# Trainer state capture / restore
# ---------------------------------------------------------------------------

def capture_training_state(trainer) -> Dict:
    """Snapshot everything a bit-identical resume needs from ``trainer``.

    Works on the shared trainer protocol (``model``, ``optimizer``,
    ``scheduler``, ``rng``, ``history``, plus the ``extra_state()`` hook
    that subclasses extend — Free training's delta, the RPS precision
    schedule position).
    """
    history = trainer.history
    return {
        "model": trainer.model.state_dict(),
        "optimizer": trainer.optimizer.state_dict(),
        "scheduler": (trainer.scheduler.state_dict()
                      if trainer.scheduler is not None else None),
        "rng": copy.deepcopy(trainer.rng.bit_generator.state),
        "history": {
            "train_loss": list(history.train_loss),
            "train_accuracy": list(history.train_accuracy),
            "epochs_completed": history.epochs_completed,
        },
        "extra": trainer.extra_state(),
    }


def restore_training_state(trainer, payload: Dict) -> None:
    """Restore a :func:`capture_training_state` snapshot onto ``trainer``.

    ``model.load_state_dict(strict=True)`` bumps every parameter version,
    which is what invalidates the quantized-weight and inference-plan
    caches derived from the pre-restore weights.
    """
    trainer.model.load_state_dict(payload["model"], strict=True)
    trainer.optimizer.load_state_dict(payload["optimizer"])
    if trainer.scheduler is not None and payload.get("scheduler") is not None:
        trainer.scheduler.load_state_dict(payload["scheduler"])
    trainer.rng.bit_generator.state = copy.deepcopy(payload["rng"])
    history = payload["history"]
    trainer.history.train_loss = list(history["train_loss"])
    trainer.history.train_accuracy = list(history["train_accuracy"])
    trainer.history.epochs_completed = history["epochs_completed"]
    trainer.load_extra_state(payload.get("extra", {}))


# ---------------------------------------------------------------------------
# Divergence sentinels
# ---------------------------------------------------------------------------

class DivergenceSentinel:
    """Per-batch divergence detection: non-finite loss or a gradient-norm
    explosion past ``grad_mult`` times the running median norm.

    The window is a bounded deque of recent *accepted* norms; a tripping
    batch's norm is never admitted (one explosion must not drag the median
    up toward the next one).  The sentinel needs ``min_history`` accepted
    batches before the ratio test arms, so noisy early steps cannot trip it.
    """

    def __init__(self, grad_mult: Optional[float] = None, window: int = 64,
                 min_history: int = 8) -> None:
        self.grad_mult = (grad_mult if grad_mult is not None
                          else config.train_sentinel_grad_mult())
        self.min_history = min_history
        self.norms: deque = deque(maxlen=window)

    def observe(self, loss: float, grad_norm: float) -> Optional[str]:
        """Admit one batch; returns a trip reason, or ``None`` if healthy."""
        if not math.isfinite(loss):
            return f"non-finite loss {loss!r}"
        if not math.isfinite(grad_norm):
            return f"non-finite gradient norm {grad_norm!r}"
        if len(self.norms) >= self.min_history:
            median = float(np.median(self.norms))
            if median > 0.0 and grad_norm > self.grad_mult * median:
                return (f"gradient norm {grad_norm:.4g} exceeds "
                        f"{self.grad_mult:g}x the running median "
                        f"{median:.4g}")
        self.norms.append(float(grad_norm))
        return None

    # -- checkpointable ----------------------------------------------------
    def state_dict(self) -> Dict:
        return {"norms": list(self.norms), "grad_mult": self.grad_mult,
                "min_history": self.min_history}

    def load_state_dict(self, state: Dict) -> None:
        self.grad_mult = float(state["grad_mult"])
        self.min_history = int(state["min_history"])
        self.norms = deque(state["norms"], maxlen=self.norms.maxlen)
