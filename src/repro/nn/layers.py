"""Standard neural-network layers, including switchable batch normalisation.

Switchable batch normalisation (SBN) is the key algorithmic component that
the paper's RPS training (Alg. 1, line 2) relies on: the model keeps an
independent set of batch-norm statistics (and affine parameters) for every
candidate precision so that the feature-statistics shift introduced by
quantisation noise at one precision does not contaminate the others.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor
from .workspace import default_workspace

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "SwitchableBatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Identity",
    "Dropout",
]

# Key used by SwitchableBatchNorm2d for the full-precision branch.
FULL_PRECISION_KEY: Hashable = "fp"


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer with square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self._gemm_cache = None

    def gemm_weights(self, weight: Optional[Tensor] = None) -> tuple:
        """Cached forward/backward GEMM repacks of ``weight``.

        Returns ``(fwd, bwd)``: the (kh*kw*C_in, C_out) forward pack and the
        spatially-flipped (kh*kw*C_out, C_in) transposed-conv pack.  Keyed on
        ``(id(data), version)`` so optimizer steps (which bump the parameter
        version) invalidate them; attack loops and eval batches with frozen
        weights reuse the packs across every forward/backward.
        """
        weight = weight if weight is not None else self.weight
        key = (id(weight.data), weight.version)
        cached = self._gemm_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        fwd, bwd = F.pack_gemm_weights(weight.data)
        self._gemm_cache = (key, fwd, bwd)
        return fwd, bwd

    def forward(self, x: Tensor) -> Tensor:
        gemm_fwd = gemm_bwd = None
        if F.get_backend() in ("fast", "native"):
            # The native direct kernels consume the same forward/flipped
            # packs (zero-padded to vector lanes inside the dispatch).
            gemm_fwd, gemm_bwd = self.gemm_weights()
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, workspace=default_workspace(),
                        gemm_weight=gemm_fwd, gemm_weight_bwd=gemm_bwd)


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of (N, C, H, W) inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.weight, self.bias, self.running_mean,
                            self.running_var, training=self.training,
                            momentum=self.momentum, eps=self.eps,
                            workspace=default_workspace())


class SwitchableBatchNorm2d(Module):
    """Batch normalisation with one independent branch per candidate precision.

    The active branch is selected with :meth:`switch_to`.  A dedicated
    full-precision branch (key ``"fp"``) is always available so the same model
    can be evaluated unquantised.  At inference time the affine transform of
    the active branch can be fused into the quantiser scale factors and the
    layer bias (see Sec. 2.4 of the paper), so SBN adds no inference modules.
    """

    def __init__(self, num_features: int, precisions: Sequence[Hashable],
                 momentum: float = 0.3, eps: float = 1e-5) -> None:
        # Each branch only sees roughly 1/len(precisions) of the training
        # batches, so its running statistics are updated with a larger
        # momentum than a plain BatchNorm2d to converge in the same number of
        # epochs.
        super().__init__()
        self.num_features = num_features
        self.precisions: List[Hashable] = list(precisions)
        keys = [FULL_PRECISION_KEY] + [p for p in self.precisions
                                       if p != FULL_PRECISION_KEY]
        self._branches: Dict[Hashable, BatchNorm2d] = {}
        for key in keys:
            branch = BatchNorm2d(num_features, momentum=momentum, eps=eps)
            setattr(self, f"bn_{key}", branch)
            self._branches[key] = branch
        self.active_key: Hashable = keys[0]

    # ------------------------------------------------------------------
    def available_keys(self) -> List[Hashable]:
        return list(self._branches.keys())

    def branch(self, key: Hashable) -> BatchNorm2d:
        """The BN branch for precision ``key`` without switching to it.

        Used by compiled inference plans, which bind a branch's statistics
        per precision instead of mutating :attr:`active_key`.
        """
        if key not in self._branches:
            raise KeyError(f"no SBN branch for precision {key!r}; "
                           f"available: {self.available_keys()}")
        return self._branches[key]

    def branch_modules(self) -> List[BatchNorm2d]:
        """All branch modules (used to exclude them from model tracing)."""
        return list(self._branches.values())

    def switch_to(self, key: Hashable) -> None:
        """Select the BN branch for precision ``key`` (``"fp"`` = unquantised)."""
        if key not in self._branches:
            raise KeyError(f"no SBN branch for precision {key!r}; "
                           f"available: {self.available_keys()}")
        self.active_key = key

    @property
    def active_branch(self) -> BatchNorm2d:
        return self._branches[self.active_key]

    def forward(self, x: Tensor) -> Tensor:
        return self.active_branch(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x, workspace=default_workspace())


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride,
                            workspace=default_workspace())


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride,
                            workspace=default_workspace())


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size,
                                     workspace=default_workspace())


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)
