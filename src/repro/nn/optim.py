"""Optimizers and learning-rate schedules used for (adversarial) training."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LRScheduler", "StepLR", "MultiStepLR",
           "CosineAnnealingLR", "CyclicLR"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Scratch-state serialization (training checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot of everything a resumed run needs to continue with
        bit-identical updates: the (scheduler-mutated) learning rate plus the
        subclass's per-parameter scratch state, keyed by *parameter index*
        (positions in the construction-order parameter list — stable across
        processes, unlike ``id()``)."""
        return {"lr": self.lr, "state": self._export_state()}

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this optimizer.

        The parameter list must match the one the snapshot was taken from
        (same model architecture, same ordering); indices outside it raise.
        """
        self.lr = float(state["lr"])
        self._import_state(state.get("state", {}))

    def _export_state(self) -> Dict:
        return {}

    def _import_state(self, state: Dict) -> None:
        if state:
            raise ValueError(f"{type(self).__name__} has no scratch state "
                             f"but the snapshot carries keys {sorted(state)}")

    def _indexed(self, per_param: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Re-key an ``id(param) -> array`` dict by parameter index."""
        by_id = {id(p): i for i, p in enumerate(self.params)}
        return {by_id[pid]: array.copy()
                for pid, array in per_param.items() if pid in by_id}

    def _param_at(self, index: int) -> Parameter:
        try:
            return self.params[index]
        except IndexError:
            raise ValueError(
                f"optimizer snapshot refers to parameter index {index} but "
                f"this optimizer holds only {len(self.params)}") from None


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    The update runs fully in place through a persistent per-parameter
    scratch buffer, so steady-state steps allocate nothing; the arithmetic
    is associated exactly as the textbook ``v = m*v + (g + wd*w); w -= lr*v``
    so results are bit-identical to the allocating formulation.
    """

    def __init__(self, params: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def _param_scratch(self, param: Parameter) -> np.ndarray:
        scratch = self._scratch.get(id(param))
        if scratch is None or scratch.shape != param.data.shape:
            scratch = self._scratch[id(param)] = np.empty_like(param.data)
        return scratch

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            scratch = self._param_scratch(param)
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = self._velocity[id(param)] = np.zeros_like(param.data)
                vel *= self.momentum
                vel += grad
                if self.nesterov:
                    grad = grad + self.momentum * vel
                else:
                    grad = vel
            if grad is not scratch:
                np.multiply(grad, self.lr, out=scratch)
            else:
                scratch *= self.lr
            param.data -= scratch
            param.bump_version()

    def _export_state(self) -> Dict:
        # Only the velocity is state: the scratch buffer is fully rewritten
        # every step before it is read, so it never crosses a step boundary.
        return {"velocity": self._indexed(self._velocity)}

    def _import_state(self, state: Dict) -> None:
        self._velocity = {
            id(self._param_at(index)): np.array(vel, copy=True)
            for index, vel in state.get("velocity", {}).items()
        }


class Adam(Optimizer):
    """Adam optimizer (used for the Bandits attack prior updates and ablations)."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = self._m[id(param)] = np.zeros_like(param.data)
                v = self._v[id(param)] = np.zeros_like(param.data)
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad ** 2
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.bump_version()

    def _export_state(self) -> Dict:
        return {"m": self._indexed(self._m), "v": self._indexed(self._v),
                "t": self._t}

    def _import_state(self, state: Dict) -> None:
        self._m = {id(self._param_at(i)): np.array(m, copy=True)
                   for i, m in state.get("m", {}).items()}
        self._v = {id(self._param_at(i)): np.array(v, copy=True)
                   for i, v in state.get("v", {}).items()}
        self._t = int(state.get("t", 0))


class LRScheduler:
    """Base learning-rate schedule attached to an optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> Dict:
        """Schedule position (the optimizer's mutated ``lr`` is snapshotted
        separately by :meth:`Optimizer.state_dict`)."""
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: Dict) -> None:
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])


class StepLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * progress))


class CyclicLR(LRScheduler):
    """Triangular cyclic schedule (used by FGSM-RS fast adversarial training)."""

    def __init__(self, optimizer: Optimizer, max_lr: float, total_steps: int,
                 pct_start: float = 0.5) -> None:
        super().__init__(optimizer)
        self.max_lr = max_lr
        self.total_steps = max(total_steps, 1)
        self.pct_start = pct_start

    def get_lr(self) -> float:
        progress = min(self.epoch / self.total_steps, 1.0)
        if progress < self.pct_start:
            return self.base_lr + (self.max_lr - self.base_lr) * (
                progress / self.pct_start)
        remaining = (progress - self.pct_start) / max(1e-9, 1 - self.pct_start)
        return self.max_lr - (self.max_lr - self.base_lr) * remaining
