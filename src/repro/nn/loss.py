"""Loss functions wrapped as callables."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels."""

    def __init__(self, reduction: str = "mean") -> None:
        self.reduction = reduction

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class MSELoss:
    def __call__(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target)
