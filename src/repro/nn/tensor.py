"""Define-by-run autograd tensor over numpy arrays.

This is the lowest layer of the ``repro`` stack.  It provides a ``Tensor``
class that records a backward graph as operations are applied and replays it
in reverse topological order when :meth:`Tensor.backward` is called.  The
design mirrors the small tape-based autograd engines used in teaching
material (micrograd, tinygrad) but is vectorised over numpy arrays and
supports broadcasting, which is required for convolutional networks,
batch normalisation and the quantizers built on top of it.

Only the operations needed by the rest of the library are implemented; the
heavier neural-network primitives (convolution, pooling, batch norm,
softmax/cross-entropy) live in :mod:`repro.nn.functional` and are written in
terms of explicit forward/backward pairs registered through
:meth:`Tensor.make_from_op`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

# ---------------------------------------------------------------------------
# Global gradient-enabled switch (mirrors torch.no_grad()).
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient graph construction.

    Use it around inference-only code (e.g. evaluating robust accuracy on a
    large adversarial test set) to avoid building the backward tape.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return True when new operations should record gradient information."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "_version")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple["Tensor", ...] = ()
        self.name = name
        self._version = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, scale: float = 1.0, rng: Optional[np.random.Generator] = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.normal(0.0, scale, size=shape).astype(np.float32),
                      requires_grad=requires_grad)

    @staticmethod
    def make_from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a tensor produced by an op with a custom backward closure.

        ``backward(grad_out)`` must accumulate gradients directly into the
        parents' ``.grad`` attributes (using :meth:`Tensor.accumulate_grad`).
        """
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._prev = tuple(p for p in parents if p.requires_grad)
        return out

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    @property
    def version(self) -> int:
        """Counter bumped by every tracked in-place mutation of ``data``.

        Consumers (the quantized-weight cache, the conv GEMM-weight cache)
        key derived arrays on ``(id(data), version)`` so an optimizer step or
        ``load_state_dict`` invalidates them.
        """
        return self._version

    def bump_version(self) -> None:
        """Record an in-place mutation of ``data`` (see :attr:`version`)."""
        self._version += 1

    def accumulate_grad(self, grad: np.ndarray, owned: bool = False) -> None:
        """Accumulate ``grad`` into ``self.grad`` (creating it if needed).

        ``owned=True`` asserts the caller freshly computed ``grad`` for this
        tensor and holds no other reference, so the first accumulation can
        adopt the array instead of copying it.  ``copy(order="K")`` on the
        unowned path preserves a channels-last memory layout end to end.
        """
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            # Broadcast reduction always produces a fresh array.
            grad = _unbroadcast(grad, self.data.shape)
            owned = True
        if self.grad is None:
            self.grad = grad if owned else grad.copy(order="K")
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (i.e. this tensor must be scalar-valued for
        the common loss.backward() usage, but a seed gradient of any matching
        shape may be supplied).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.accumulate_grad(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad_out: np.ndarray) -> None:
            # The first parent may adopt the incoming array: once this node's
            # backward has run, nothing reads its grad again, so later ``+=``
            # accumulations into the adopted array are safe.  The second
            # parent still copies (two parents must not alias one buffer).
            self.accumulate_grad(grad_out, owned=True)
            other.accumulate_grad(grad_out)

        return Tensor.make_from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(-grad_out)

        return Tensor.make_from_op(out_data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out, owned=True)   # see __add__
            other.accumulate_grad(-grad_out, owned=True)

        return Tensor.make_from_op(out_data, (self, other), backward)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * other.data, owned=True)
            other.accumulate_grad(grad_out * self.data, owned=True)

        return Tensor.make_from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out / other.data)
            other.accumulate_grad(-grad_out * self.data / (other.data ** 2))

        return Tensor.make_from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * exponent * self.data ** (exponent - 1))

        return Tensor.make_from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * out_data)

        return Tensor.make_from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out / self.data)

        return Tensor.make_from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor.make_from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * np.sign(self.data))

        return Tensor.make_from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * (1.0 - out_data ** 2))

        return Tensor.make_from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * out_data * (1.0 - out_data))

        return Tensor.make_from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0)

        def backward(grad_out: np.ndarray) -> None:
            # out > 0 exactly where the input was positive.
            self.accumulate_grad(grad_out * (out_data > 0), owned=True)

        return Tensor.make_from_op(out_data, (self,), backward)

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        """Clamp values; gradient flows only where no clipping occurred."""
        out_data = np.clip(self.data, minimum, maximum)
        mask = (self.data >= minimum) & (self.data <= maximum)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out * mask)

        return Tensor.make_from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad_out: np.ndarray) -> None:
            grad = np.asarray(grad_out)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                grad = np.expand_dims(grad, axis=tuple(a % self.data.ndim for a in axes))
            self.accumulate_grad(np.broadcast_to(grad, self.data.shape))

        return Tensor.make_from_op(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad_out: np.ndarray) -> None:
            grad = np.asarray(grad_out)
            if axis is None:
                mask = (self.data == out_data)
                self.accumulate_grad(grad * mask / np.maximum(mask.sum(), 1))
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            grad_e = grad if keepdims else np.expand_dims(grad, axis=axis)
            mask = (self.data == expanded)
            counts = np.maximum(mask.sum(axis=axis, keepdims=True), 1)
            self.accumulate_grad(grad_e * mask / counts)

        return Tensor.make_from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation and linear algebra
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out.reshape(original))

        return Tensor.make_from_op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad_out: np.ndarray) -> None:
            self.accumulate_grad(grad_out.transpose(inverse))

        return Tensor.make_from_op(out_data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad_out: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad_out @ np.swapaxes(other.data, -1, -2),
                                     owned=True)
            if other.requires_grad:
                other.accumulate_grad(np.swapaxes(self.data, -1, -2) @ grad_out,
                                      owned=True)

        return Tensor.make_from_op(out_data, (self, other), backward)

    __matmul__ = matmul

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad_out: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, grad_out)
            self.accumulate_grad(grad)

        return Tensor.make_from_op(out_data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    # ------------------------------------------------------------------
    # Comparisons (no gradient; return numpy arrays for convenience)
    # ------------------------------------------------------------------
    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __eq__(self, other) -> np.ndarray:  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data == other_data

    def __hash__(self) -> int:  # tensors are identity-hashed (needed for sets)
        return id(self)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad_out: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad_out.ndim
            slicer[axis] = slice(start, stop)
            tensor.accumulate_grad(grad_out[tuple(slicer)])

    return Tensor.make_from_op(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad_out: np.ndarray) -> None:
        moved = np.moveaxis(grad_out, axis, 0)
        for tensor, grad in zip(tensors, moved):
            tensor.accumulate_grad(grad)

    return Tensor.make_from_op(out_data, tensors, backward)
