"""Module system: parameter containers with train/eval modes and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter`, :class:`Module` and numpy buffers as
    attributes; those are discovered automatically for ``parameters()``,
    ``state_dict()`` and recursive ``train()`` / ``eval()`` switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------
    # Train / eval and gradient bookkeeping
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = False) -> None:
        """Copy ``state`` into this module's parameters and buffers in place.

        With ``strict`` (the checkpoint-restore path) any key mismatch —
        a snapshot entry this model has no slot for, or a parameter/buffer
        the snapshot is missing — raises instead of being skipped silently:
        a checkpoint taken from a different architecture must fail loudly,
        not half-load.  The default stays lenient for the historical
        partial-load callers.
        """
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        if strict:
            expected = set(params) | {f"buffer:{n}" for n in buffers}
            missing = sorted(expected - set(state))
            unexpected = sorted(set(state) - expected)
            if missing or unexpected:
                raise ValueError(
                    f"state dict does not match this module: "
                    f"missing keys {missing[:5]}, unexpected keys "
                    f"{unexpected[:5]}")
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name in buffers:
                    buffers[name][...] = value
            elif key in params:
                params[key].data[...] = value
                # Invalidate version-keyed caches (quantized weights, conv
                # GEMM repacks) that were derived from the old values.
                params[key].bump_version()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding the output of each into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._layers)
        setattr(self, f"layer{index}", module)
        self._layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list of sub-modules that is properly registered for introspection."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        setattr(self, f"item{index}", module)
        self._items.append(module)
        return self

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers only
        raise RuntimeError("ModuleList is a container and cannot be called")
