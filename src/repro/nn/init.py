"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:            # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:          # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU networks (normal variant)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialisation (uniform variant)."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
