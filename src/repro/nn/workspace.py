"""Reusable scratch-buffer arena for the channels-last NN compute core.

Steady-state training re-creates the same large arrays every step: im2col
column buffers, GEMM outputs, batch-norm normalised activations, quantizer
scratch and gradient accumulators.  ``Workspace`` keeps those arrays alive
across steps in per-(shape, dtype) free lists so the hot path allocates only
on the first step (or after a shape change).

Safety model — *leak, never corrupt*:

* ``acquire`` hands out a buffer only when ``sys.getrefcount`` proves the
  arena holds the sole reference.  A buffer that escaped (a caller kept
  ``tensor.data``, a view, or a closure still references it) fails the check
  and is dropped to the garbage collector instead of being recycled.
* ``end_step()`` marks everything handed out since the previous step
  boundary as reusable.  Trainers, attacks and the evaluation helpers call
  it once per optimisation step / gradient computation / eval batch.  A
  missing ``end_step`` cannot corrupt results — buffers merely stop being
  reused once ``pending`` overflows and is flushed (the refcount check still
  guards every reuse).

``REPRO_NN_WORKSPACE_MB`` caps the arena (default 256 MiB, ``0`` disables
pooling entirely so every acquire falls back to ``np.empty``).
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from .. import config

__all__ = ["Workspace", "default_workspace", "aligned_empty", "BUFFER_ALIGN"]

_Key = Tuple[Tuple[int, ...], str]

#: Memo of dtype -> dtype.str for the acquire fast path.
_DTYPE_STR: dict = {}

#: Alignment of buffers built for the native direct-conv kernels (their
#: packed weights stream through vector loads; a cache-line start keeps
#: those accesses split-free — numpy's own allocator only guarantees 16
#: bytes).  Arena buffers deliberately keep numpy's default allocator:
#: BLAS selects (ULP-different) kernels by pointer alignment, and the
#: fast backend's blessed parity numbers were measured against numpy's
#: defaults, so forcing arena alignment would shift them.
BUFFER_ALIGN = 64


def aligned_empty(shape: Tuple[int, ...], dtype=np.float32,
                  align: int = BUFFER_ALIGN) -> np.ndarray:
    """``np.empty`` with the first element on an ``align``-byte boundary.

    Over-allocates a byte buffer and returns an offset view; the view keeps
    the allocation alive and behaves like any ndarray (in particular the
    workspace refcount guard counts references to the view object itself,
    so these buffers may be released into an arena like any other).  Used
    by :mod:`repro.nn.native` for buffers only the C kernels consume.
    """
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    raw = np.empty(nbytes + align, dtype=np.uint8)
    offset = (-raw.ctypes.data) % align
    return raw[offset:offset + nbytes].view(dtype).reshape(shape)


def _env_cap_bytes() -> int:
    return int(config.nn_workspace_mb() * (1 << 20))


class Workspace:
    """Keyed free-lists of numpy scratch buffers with refcount-guarded reuse."""

    #: Flush ``pending`` automatically once it holds this many buffers, so a
    #: caller that never reaches a step boundary still gets reuse (the
    #: refcount guard keeps early flushes safe).
    PENDING_FLUSH = 512

    def __init__(self, max_bytes: int | None = None) -> None:
        self.max_bytes = _env_cap_bytes() if max_bytes is None else int(max_bytes)
        # (shape, dtype) -> stack of free buffers; OrderedDict gives LRU
        # eviction order across keys when the byte cap is exceeded.
        self._free: "OrderedDict[_Key, List[np.ndarray]]" = OrderedDict()
        self._pending: List[np.ndarray] = []
        # id(buf) -> number of early releases this step, so end_step() does
        # not stash a released buffer a second time.
        self._released: Dict[int, int] = {}
        self._free_bytes = 0
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    # ------------------------------------------------------------------
    def acquire(self, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Return an uninitialised buffer of ``shape``/``dtype`` for this step."""
        if not self.enabled:
            return np.empty(shape, dtype=dtype)
        dstr = _DTYPE_STR.get(dtype)
        if dstr is None:
            dstr = _DTYPE_STR[dtype] = np.dtype(dtype).str
        key = (tuple(shape), dstr)
        bucket = self._free.get(key)
        while bucket:
            buf = bucket.pop()
            self._free_bytes -= buf.nbytes
            # Sole-owner check: after the pop the only references are the
            # local ``buf`` and getrefcount's argument — plus one ``pending``
            # entry when the buffer was early-released this step.  Anything
            # else (an escaped ``tensor.data``, a view, a live backward
            # closure) raises the count and the buffer is abandoned to GC.
            count = sys.getrefcount(buf)
            if count == 2 or (count == 3 and id(buf) in self._released):
                self.hits += 1
                self._pending.append(buf)
                return buf
        self.misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._pending.append(buf)
        if len(self._pending) >= self.PENDING_FLUSH:
            self.end_step()
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return ``buf`` to the free list before the step boundary.

        Only for purely intra-op scratch (e.g. the padded-input staging
        buffer) acquired from this workspace during the current step; the
        caller must drop its own reference right after.  O(1): the buffer
        stays on ``pending`` and is skipped at the next ``end_step``.
        """
        if not self.enabled:
            return
        key = id(buf)
        self._released[key] = self._released.get(key, 0) + 1
        self._stash(buf)

    def end_step(self) -> None:
        """Mark every buffer handed out since the last boundary as reusable."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        released = self._released
        for buf in pending:
            if released:
                count = released.get(id(buf))
                if count:
                    if count == 1:
                        del released[id(buf)]
                    else:
                        released[id(buf)] = count - 1
                    continue
            self._stash(buf)
        released.clear()

    # ------------------------------------------------------------------
    def _stash(self, buf: np.ndarray) -> None:
        key = (buf.shape, buf.dtype.str)
        bucket = self._free.get(key)
        if bucket is None:
            bucket = self._free[key] = []
        bucket.append(buf)
        self._free.move_to_end(key)
        self._free_bytes += buf.nbytes
        while self._free_bytes > self.max_bytes and self._free:
            oldest_key, oldest = next(iter(self._free.items()))
            if not oldest:
                # Bucket emptied by acquire; discard and keep evicting.
                self._free.pop(oldest_key)
                continue
            dropped = oldest.pop(0)
            self._free_bytes -= dropped.nbytes
            if not oldest:
                self._free.pop(oldest_key)

    def clear(self) -> None:
        self._free.clear()
        self._pending.clear()
        # Stale release records must not survive: a recycled id() could
        # otherwise satisfy the acquire guard's released-buffer exception.
        self._released.clear()
        self._free_bytes = 0


def acquire_like(ws: "Workspace | None", arr: np.ndarray,
                 dtype=np.float32) -> np.ndarray:
    """Scratch buffer with ``arr``'s shape, preserving a channels-last layout.

    For an NCHW-shaped array whose memory is channels-last, the returned
    buffer is channels-last too, so ``out=`` ufuncs keep the network's
    internal layout intact.
    """
    if arr.ndim == 4 and arr.transpose(0, 2, 3, 1).flags["C_CONTIGUOUS"]:
        n, c, h, w = arr.shape
        buf = (ws.acquire((n, h, w, c), dtype) if ws is not None
               else np.empty((n, h, w, c), dtype=dtype))
        return buf.transpose(0, 3, 1, 2)
    if ws is not None:
        return ws.acquire(arr.shape, dtype)
    return np.empty(arr.shape, dtype=dtype)


_DEFAULT: Workspace | None = None


def default_workspace() -> Workspace:
    """The process-wide arena shared by layers, attacks and trainers.

    A single shared arena maximises reuse across models (shapes repeat), and
    the acquire-time refcount guard keeps interleaved use of several models
    safe: a buffer still referenced by anyone is never recycled.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Workspace()
    return _DEFAULT


def end_step() -> None:
    """Convenience: mark a step boundary on the default arena."""
    if _DEFAULT is not None:
        _DEFAULT.end_step()
