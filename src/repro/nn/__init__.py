"""``repro.nn`` — a small numpy autograd neural-network framework.

This package is the training/inference substrate that replaces PyTorch in
this reproduction (see DESIGN.md, substitution table).  The public surface
mirrors the familiar torch layout: :class:`Tensor`, ``nn.functional``-style
ops in :mod:`repro.nn.functional`, a :class:`Module` system, layers,
optimizers and losses.
"""

from . import functional
from . import init
from . import workspace
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    SwitchableBatchNorm2d,
)
from .loss import CrossEntropyLoss, MSELoss
from .module import Module, ModuleList, Parameter, Sequential
from .optim import (
    Adam,
    CosineAnnealingLR,
    CyclicLR,
    LRScheduler,
    MultiStepLR,
    Optimizer,
    SGD,
    StepLR,
)
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "functional",
    "init",
    "workspace",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "SwitchableBatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Identity",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "CyclicLR",
]
