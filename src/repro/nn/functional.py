"""Neural-network primitives (forward + backward) on top of :class:`Tensor`.

These functions implement the heavier operations needed by convolutional
networks — 2-D convolution, pooling, batch normalisation, softmax /
cross-entropy — each with an explicit, vectorised backward pass registered
through :meth:`repro.nn.tensor.Tensor.make_from_op`.

Two interchangeable compute backends are provided (``REPRO_NN_BACKEND`` or
:func:`use_backend`):

* ``"fast"`` (default) — the channels-last core.  Inputs are viewed as NHWC
  (a zero-copy ``transpose``), sliding windows are taken with
  ``numpy.lib.stride_tricks.as_strided`` over a padded staging buffer, and
  convolution runs as one large 2-D BLAS GEMM ``(N·OH·OW, KH·KW·C) @
  (KH·KW·C, C_OUT)`` instead of ``N`` small per-sample matmuls.  Pooling
  routes through the same window-view helper (the forward of average pooling
  reduces the strided view directly, with no column materialisation at all).
  All large scratch — column buffers, GEMM outputs, normalised activations,
  gradient accumulators — comes from the :mod:`repro.nn.workspace` arena, so
  steady-state training performs no large allocations.  Outputs keep NCHW
  *logical* shape with channels-last *memory* layout; numpy ufuncs preserve
  that layout through ReLU / residual adds / quantizers, so whole networks
  stay channels-last end to end with exactly one implicit layout conversion
  at the stem.

* ``"reference"`` — the original im2col/NCHW implementation, kept as the
  parity oracle (see ``tests/test_nn_parity.py``).  Fast-path outputs match
  it to ~1e-6: convolution GEMMs and batch-norm reductions accumulate in a
  different order (one big GEMM vs. N small ones; NHWC vs. NCHW axis
  order), which perturbs float32 results by a few ULPs.  Pooling forwards
  are bitwise identical (they only move or compare values).

* ``"native"`` — the fast core with convolutions routed through the
  compiled direct kernels of :mod:`repro.nn.native` whenever a layer sits
  in the bandwidth-bound regime (k > 1 and narrow channels, see
  ``_native_applicable``): the output is computed straight from the padded
  NHWC input with a register-blocked C microkernel — no im2col column
  buffer, so the kh*kw-fold gather bandwidth expansion disappears for
  forward, input gradient (direct transposed convolution) and weight
  gradient alike.  Wide layers already run near BLAS peak and keep the
  GEMM path.  Requesting ``native`` without a working C compiler warns
  once and degrades to ``fast``; numerics match ``fast`` to the same
  ULP-level reduction-order noise as ``fast`` vs ``reference``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

import warnings

from .. import config
from . import native
from .tensor import Tensor
from .workspace import Workspace, acquire_like

__all__ = [
    "linear",
    "conv2d",
    "conv2d_infer",
    "channel_affine_infer",
    "conv2d_reference",
    "max_pool2d",
    "max_pool2d_reference",
    "avg_pool2d",
    "avg_pool2d_reference",
    "adaptive_avg_pool2d",
    "batch_norm",
    "batch_norm_reference",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "pad2d",
    "im2col",
    "col2im",
    "pack_gemm_weights",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKENDS = config.NN_BACKENDS          # ("fast", "native", "reference")


_NATIVE_FALLBACK_WARNED = False


def _resolve_backend(name: str) -> str:
    """Degrade a ``native`` request to ``fast`` when the kernels can't load.

    Emits exactly one warning per process (the failed load attempt itself
    is memoised by :mod:`repro.nn.native`), so a no-compiler machine that
    asks for ``REPRO_NN_BACKEND=native`` runs the fast backend with a
    single notice instead of failing — or warning on every switch.
    """
    global _NATIVE_FALLBACK_WARNED
    if name == "native" and not native.available():
        if not _NATIVE_FALLBACK_WARNED:
            _NATIVE_FALLBACK_WARNED = True
            warnings.warn(
                "REPRO_NN_BACKEND=native requested but the native kernels "
                f"are unavailable ({native.load_error()}); falling back to "
                "the 'fast' backend", RuntimeWarning, stacklevel=3)
        return "fast"
    return name


_BACKEND = _resolve_backend(config.nn_backend())


def get_backend() -> str:
    """Name of the active compute backend: ``fast`` | ``native`` |
    ``reference``."""
    return _BACKEND


def set_backend(name: str) -> None:
    global _BACKEND
    if name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {_BACKENDS}")
    _BACKEND = _resolve_backend(name)


@contextmanager
def use_backend(name: str):
    """Temporarily switch the compute backend (used by the parity suite)."""
    previous = _BACKEND
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# ---------------------------------------------------------------------------
# im2col / col2im helpers (reference backend; the window maths is shared)
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel_size: Tuple[int, int], stride: int,
           padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns an array of shape (N, C * kh * kw, out_h * out_w).
    """
    n, c, h, w = x.shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        # 1x1 kernels need no patch extraction; a (strided) view suffices.
        return x[:, :, ::stride, ::stride].reshape(n, c, out_h * out_w)

    # Padding is fused into the slice bounds (the zero border is written
    # directly into `cols`) so the padded copy of `x` is never materialised.
    cols = (np.zeros((n, c, kh, kw, out_h, out_w), dtype=x.dtype) if padding
            else np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype))
    for i in range(kh):
        for j in range(kw):
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            cols[(slice(None), slice(None), i, j) + dst] = \
                x[(slice(None), slice(None)) + src]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def _clipped_window(in_size, out_size, offset, stride):
    """Slices mapping output positions to in-bounds input positions.

    For kernel offset ``o``, output index ``t`` reads input ``o + stride*t``;
    returns ``(src, dst)`` slice tuples restricted to ``0 <= o + stride*t <
    in_size`` per axis, or ``(None, None)`` when no position is in bounds.
    """
    src = []
    dst = []
    for size, out, o in zip(in_size, out_size, offset):
        t_lo = (-o + stride - 1) // stride if o < 0 else 0  # ceil(-o/stride)
        t_hi = min(out - 1, (size - 1 - o) // stride)
        if t_hi < t_lo:
            return None, None
        src.append(slice(o + stride * t_lo, o + stride * t_hi + 1, stride))
        dst.append(slice(t_lo, t_hi + 1))
    return tuple(src), tuple(dst)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kernel_size: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches."""
    n, c, h, w = x_shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        x = np.zeros((n, c, h, w), dtype=cols.dtype)
        x[:, :, ::stride, ::stride] = cols.reshape(n, c, out_h, out_w)
        return x

    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros((n, c, h, w), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            # Contributions that landed in the padding border are dropped, so
            # only in-bounds windows are accumulated (no padded temporary).
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            x[(slice(None), slice(None)) + src] += \
                cols[(slice(None), slice(None), i, j) + dst]
    return x


# ---------------------------------------------------------------------------
# Channels-last core helpers
# ---------------------------------------------------------------------------

def _acquire(ws: Optional[Workspace], shape, dtype=np.float32) -> np.ndarray:
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.acquire(shape, dtype)


def _release(ws: Optional[Workspace], buf: np.ndarray) -> None:
    if ws is not None:
        ws.release(buf)


def _window_view(xp: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy sliding windows over an NHWC array.

    Returns an ``as_strided`` view of shape (N, OH, OW, KH, KW, C): every
    output position indexes its receptive field without materialising
    patches.  The view is read-only (windows overlap).
    """
    n, h, w, c = xp.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sh, sw, sc = xp.strides
    return as_strided(xp, shape=(n, oh, ow, kh, kw, c),
                      strides=(sn, sh * stride, sw * stride, sh, sw, sc),
                      writeable=False)


def _pad_nhwc(x_cl: np.ndarray, padding: int,
              ws: Optional[Workspace]) -> np.ndarray:
    """Stage ``x_cl`` into a reusable zero-bordered NHWC buffer."""
    n, h, w, c = x_cl.shape
    hp, wp = h + 2 * padding, w + 2 * padding
    xp = _acquire(ws, (n, hp, wp, c))
    xp[:, :padding] = 0.0
    xp[:, hp - padding:] = 0.0
    xp[:, padding:hp - padding, :padding] = 0.0
    xp[:, padding:hp - padding, wp - padding:] = 0.0
    np.copyto(xp[:, padding:hp - padding, padding:wp - padding], x_cl)
    return xp


#: Cached all-ones row vectors used to express channel reductions as BLAS
#: matmuls: summing (M, C) activations over rows as ``ones(1, M) @ x`` is
#: several times faster than ``x.sum(axis=0)`` for the small channel counts
#: typical of the bench models.
_ONES_ROWS: dict = {}


def _ones_row(m: int) -> np.ndarray:
    row = _ONES_ROWS.get(m)
    if row is None:
        if len(_ONES_ROWS) > 256:
            _ONES_ROWS.clear()
        row = _ONES_ROWS[m] = np.ones((1, m), dtype=np.float32)
    return row


def _channel_sum(x2d: np.ndarray) -> np.ndarray:
    """Sum a (M, C) array over rows via BLAS; returns shape (C,)."""
    return (_ones_row(x2d.shape[0]) @ x2d).ravel()


def _as_rows(arr_cl: np.ndarray, ws: Optional[Workspace]) -> np.ndarray:
    """View (or stage) an NHWC array as (N*H*W, C) rows for BLAS reductions."""
    n, h, w, c = arr_cl.shape
    if arr_cl.flags["C_CONTIGUOUS"]:
        return arr_cl.reshape(n * h * w, c)
    staged = _acquire(ws, (n * h * w, c))
    np.copyto(staged.reshape(n, h, w, c), arr_cl)
    return staged


def _grad_target_cl(x: Tensor, ws: Optional[Workspace]) -> np.ndarray:
    """``x.grad`` as a zero-initialised NHWC view for in-place accumulation.

    Creates the gradient channels-last when it does not exist yet, so the
    whole backward pass stays in the same memory layout as the forward.
    Accumulating in place composes correctly with ``accumulate_grad`` calls
    from other children of ``x`` (both are ``+=`` into the same array).
    """
    n, c, h, w = x.data.shape
    if x.grad is None:
        buf = _acquire(ws, (n, h, w, c))
        buf.fill(0.0)
        x.grad = buf.transpose(0, 3, 1, 2)
    return x.grad.transpose(0, 2, 3, 1)


# ---------------------------------------------------------------------------
# Linear and convolution
# ---------------------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` with weight shape (out, in)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def pack_gemm_weights(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """GEMM repacks of a (C_out, C_in, kh, kw) conv weight.

    Returns ``(fwd, bwd)``: the (kh*kw*C_in, C_out) forward pack whose row
    order matches the NHWC window gather, and the spatially-flipped
    (kh*kw*C_out, C_in) pack used by the transposed-convolution input
    gradient.  The single source of truth for the fast backend's column
    layout — layers and the quantized-weight cache must use this helper.
    """
    c_out, c_in, kh, kw = weight.shape
    fwd = weight.transpose(2, 3, 1, 0).reshape(kh * kw * c_in, c_out)
    bwd = weight.transpose(2, 3, 0, 1)[::-1, ::-1].reshape(kh * kw * c_out, c_in)
    return fwd, bwd


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0,
           workspace: Optional[Workspace] = None,
           gemm_weight: Optional[np.ndarray] = None,
           gemm_weight_bwd: Optional[np.ndarray] = None) -> Tensor:
    """2-D convolution (cross-correlation).

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.  ``workspace`` supplies reusable scratch;
    ``gemm_weight`` / ``gemm_weight_bwd`` are cached forward / flipped
    backward GEMM repacks of ``weight`` (fast-backend only; layers provide
    them).
    """
    if _BACKEND == "reference":
        return conv2d_reference(x, weight, bias, stride=stride, padding=padding)
    if _BACKEND == "native" and _native_applicable(weight.shape, padding):
        return _conv2d_native(x, weight, bias, stride, padding, workspace,
                              gemm_weight, gemm_weight_bwd)
    return _conv2d_fast(x, weight, bias, stride, padding, workspace,
                        gemm_weight, gemm_weight_bwd)


def conv2d_reference(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """im2col/NCHW convolution — the bit-parity oracle for the fast path."""
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)          # (N, C*kh*kw, L)
    w_mat = weight.data.reshape(c_out, -1)                    # (C_out, C*kh*kw)
    out_data = np.matmul(w_mat, cols)                         # (N, C_out, L)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad_out: np.ndarray) -> None:
        grad_flat = grad_out.reshape(n, c_out, -1)            # (N, C_out, L)
        if weight.requires_grad:
            grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad_out.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.matmul(w_mat.T, grad_flat)
            grad_x = col2im(grad_cols, (n, c_in, h, w), (kh, kw), stride, padding)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, parents, backward)


def conv2d_infer(x: np.ndarray, gemm_weight: np.ndarray, kh: int, kw: int,
                 stride: int, padding: int,
                 workspace: Optional[Workspace] = None,
                 bias: Optional[np.ndarray] = None,
                 quantize=None, relu: bool = False,
                 quant_params: Optional[Tuple[float, int, int]] = None
                 ) -> np.ndarray:
    """Inference-only convolution on raw arrays (no autograd graph).

    The data-plane kernel behind :mod:`repro.inference` compiled plans: the
    channels-last forward of :func:`conv2d` stripped of every backward
    provision, with three inference-specific fusions:

    * ``quantize(src, dst)`` — optional activation fake-quantisation written
      *directly into the padded staging buffer* (or the column buffer for
      1x1 kernels), eliminating the separate quantised-activation array and
      the pad copy of the training path.  The callable must perform the
      exact elementwise quantise-dequantise of the live path so values are
      bit-identical (the zero padding border is unaffected: symmetric
      quantisation maps 0 to 0).
    * ``bias`` — per-output-channel vector added to the GEMM output.  A
      compiled plan folds eval-mode batch-norm into ``gemm_weight`` and this
      vector.
    * ``relu`` — applies ``max(0, .)`` in place on the (cache-warm) GEMM
      output, eliminating the downstream ReLU pass.

    ``quant_params`` is the declarative form of ``quantize``: a ``(scale,
    qmin, qmax)`` triple of the symmetric linear quantizer.  Compiled plans
    pass it instead of a callable so the native backend can fuse the
    quantisation into its single C staging pass; on the fast backend it is
    expanded to the equivalent ``quantize_data_into`` callable, with
    bit-identical results either way.

    ``x`` is (N, C_in, H, W) logical; ``gemm_weight`` is the
    (kh*kw*C_in, C_out) forward pack from :func:`pack_gemm_weights`.
    Returns an (N, C_out, OH, OW)-logical, channels-last array.

    Under the ``native`` backend, convolutions in the direct-kernel regime
    (see ``_native_applicable``) run the whole epilogue — activation
    fake-quantisation during staging, then conv -> (folded-BN) bias -> ReLU
    over each output tile — inside the compiled kernels.
    """
    ws = workspace
    n, c_in, h, w = x.shape
    c_out = gemm_weight.shape[1]
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    nl = n * oh * ow
    k = kh * kw * c_in

    x_cl = x.transpose(0, 2, 3, 1)                            # NHWC view

    if (_BACKEND == "native" and quantize is None
            and _native_applicable((c_out, c_in, kh, kw), padding)):
        return _conv2d_infer_native(x_cl, gemm_weight, kh, kw, stride,
                                    padding, ws, bias, relu, quant_params)
    if quantize is None and quant_params is not None:
        from ..quantization.linear_quantizer import quantize_data_into
        scale, qmin, qmax = quant_params

        def quantize(src, dst, scale=scale, qmin=qmin, qmax=qmax):
            quantize_data_into(src, dst, scale, qmin, qmax)

    release_cols = True
    if kh == 1 and kw == 1 and padding == 0:
        src = x_cl if stride == 1 else x_cl[:, ::stride, ::stride, :]
        if quantize is None and src.flags["C_CONTIGUOUS"]:
            cols2d = src.reshape(nl, k)                       # pure view
            release_cols = False
        else:
            cols2d = _acquire(ws, (nl, k))
            target = cols2d.reshape(n, oh, ow, c_in)
            if quantize is None:
                np.copyto(target, src)
            else:
                quantize(src, target)
    else:
        if padding:
            hp, wp = h + 2 * padding, w + 2 * padding
            xp = _acquire(ws, (n, hp, wp, c_in))
            xp[:, :padding] = 0.0
            xp[:, hp - padding:] = 0.0
            xp[:, padding:hp - padding, :padding] = 0.0
            xp[:, padding:hp - padding, wp - padding:] = 0.0
            interior = xp[:, padding:hp - padding, padding:wp - padding]
            if quantize is None:
                np.copyto(interior, x_cl)
            else:
                quantize(x_cl, interior)
            staged = xp
        elif quantize is not None:
            staged = _acquire(ws, (n, h, w, c_in))
            quantize(x_cl, staged)
        else:
            staged = x_cl
        win = _window_view(staged, kh, kw, stride)
        cols2d = _acquire(ws, (nl, k))
        np.copyto(cols2d.reshape(n, oh, ow, kh, kw, c_in), win)
        if staged is not x_cl:
            _release(ws, staged)
            del staged

    out2d = _acquire(ws, (nl, c_out))
    np.matmul(cols2d, gemm_weight, out=out2d)
    if release_cols:
        _release(ws, cols2d)
    del cols2d
    if bias is not None:
        out2d += bias
    if relu:
        np.maximum(out2d, 0.0, out=out2d)
    return out2d.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)


def _conv2d_infer_native(x_cl: np.ndarray, gemm_weight: np.ndarray, kh: int,
                         kw: int, stride: int, padding: int,
                         ws: Optional[Workspace], bias: Optional[np.ndarray],
                         relu: bool,
                         quant_params: Optional[Tuple[float, int, int]]
                         ) -> np.ndarray:
    """Inference convolution through the native kernels (no autograd).

    Two passes total: one C staging pass that zero-pads and (optionally)
    fake-quantises the input, and one direct-convolution pass whose
    epilogue applies the (possibly BN-folded) bias and the fused ReLU per
    output tile.  No column buffer, no separate quantised-activation array,
    no downstream BN/ReLU passes.
    """
    n, h, w, c_in = x_cl.shape
    c_out = gemm_weight.shape[1]
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)

    if x_cl.flags["C_CONTIGUOUS"] and (padding or quant_params is not None):
        xp = _acquire(ws, (n, h + 2 * padding, w + 2 * padding, c_in))
        native.pad_quantize_stage(x_cl, xp, padding, quant_params)
    else:
        # Rare layouts (non-contiguous input, e.g. a strided stem view) use
        # the numpy staging, quantising the padded interior in place.
        xp = _native_stage_input(x_cl, padding, ws)
        if quant_params is not None:
            from ..quantization.linear_quantizer import quantize_data_into
            scale, qmin, qmax = quant_params
            interior = xp[:, padding:padding + h, padding:padding + w]
            quantize_data_into(interior, interior, scale, qmin, qmax)

    out_cl = _acquire(ws, (n, oh, ow, c_out))
    native.conv2d_forward(xp, native.pad_pack(gemm_weight), bias, out_cl,
                          (kh, kw), stride, relu=relu)
    if xp is not x_cl:
        _release(ws, xp)
    return out_cl.transpose(0, 3, 1, 2)


def channel_affine_infer(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                         workspace: Optional[Workspace] = None,
                         relu: bool = False) -> np.ndarray:
    """Per-channel affine ``x * scale + shift`` on an (N, C, H, W) array.

    The inference kernel for eval-mode batch norm that a compiled plan could
    not fold into a preceding convolution: ``scale`` / ``shift`` are the
    precomputed ``gamma * inv_std`` and ``beta - mean * gamma * inv_std``
    vectors, so the per-forward reduction of the live path disappears and the
    elementwise math is bit-identical to it.  ``relu`` fuses ``max(0, .)``
    into the same pass.
    """
    n, c, h, w = x.shape
    x_cl = x.transpose(0, 2, 3, 1)
    out_cl = _acquire(workspace, (n, h, w, c))
    np.multiply(x_cl, scale, out=out_cl)
    out_cl += shift
    if relu:
        np.maximum(out_cl, 0.0, out=out_cl)
    return out_cl.transpose(0, 3, 1, 2)


def _conv2d_fast(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                 stride: int, padding: int, ws: Optional[Workspace],
                 gemm_weight: Optional[np.ndarray],
                 gemm_weight_bwd: Optional[np.ndarray] = None) -> Tensor:
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    nl = n * oh * ow
    k = kh * kw * c_in

    x_cl = x.data.transpose(0, 2, 3, 1)                       # NHWC view
    if kh == 1 and kw == 1 and padding == 0:
        src = x_cl if stride == 1 else x_cl[:, ::stride, ::stride, :]
        if src.flags["C_CONTIGUOUS"]:
            cols2d = src.reshape(nl, k)                       # pure view
        else:
            cols2d = _acquire(ws, (nl, k))
            np.copyto(cols2d.reshape(n, oh, ow, c_in), src)
    else:
        xp = _pad_nhwc(x_cl, padding, ws) if padding else x_cl
        win = _window_view(xp, kh, kw, stride)
        cols2d = _acquire(ws, (nl, k))
        # One C-level strided gather materialises every receptive field into
        # the (reused) column buffer; there is no per-batch Python loop.
        np.copyto(cols2d.reshape(n, oh, ow, kh, kw, c_in), win)
        if padding:
            _release(ws, xp)
            del xp

    if gemm_weight is None:
        gemm_weight = pack_gemm_weights(weight.data)[0]
    out2d = _acquire(ws, (nl, c_out))
    np.matmul(cols2d, gemm_weight, out=out2d)
    if bias is not None:
        out2d += bias.data
    out_data = out2d.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])
    w_gemm = gemm_weight

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        if g_cl.flags["C_CONTIGUOUS"]:
            g2d = g_cl.reshape(nl, c_out)
        else:
            g2d = _acquire(ws, (nl, c_out))
            np.copyto(g2d.reshape(n, oh, ow, c_out), g_cl)
        if weight.requires_grad:
            grad_w = cols2d.T @ g2d                            # (K, C_out)
            weight.accumulate_grad(
                grad_w.reshape(kh, kw, c_in, c_out).transpose(3, 2, 0, 1))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g2d.sum(axis=0), owned=True)
        if x.requires_grad:
            if kh == 1 and kw == 1 and padding == 0:
                if x.grad is None and stride == 1:
                    # Fresh gradient: GEMM straight into the new buffer (no
                    # zero fill, no accumulate pass).
                    buf = _acquire(ws, (n, h, w, c_in))
                    np.matmul(g2d, w_gemm.T, out=buf.reshape(nl, c_in))
                    x.grad = buf.transpose(0, 3, 1, 2)
                else:
                    xg_cl = _grad_target_cl(x, ws)
                    target = (xg_cl if stride == 1
                              else xg_cl[:, ::stride, ::stride, :])
                    target += (g2d @ w_gemm.T).reshape(n, oh, ow, c_in)
            elif padding <= kh - 1 and padding <= kw - 1:
                _conv2d_input_grad(g2d.reshape(n, oh, ow, c_out), weight.data,
                                   x, stride, padding, ws, gemm_weight_bwd)
            else:
                xg_cl = _grad_target_cl(x, ws)
                # Exotic padding (> kernel-1): fall back to the per-tap fold.
                grad_cols = _acquire(ws, (nl, k))
                np.matmul(g2d, w_gemm.T, out=grad_cols)
                gc6 = grad_cols.reshape(n, oh, ow, kh, kw, c_in)
                for i in range(kh):
                    for j in range(kw):
                        src, dst = _clipped_window((h, w), (oh, ow),
                                                   (i - padding, j - padding),
                                                   stride)
                        if src is None:
                            continue
                        xg_cl[(slice(None),) + src + (slice(None),)] += \
                            gc6[(slice(None),) + dst + (i, j, slice(None))]
                _release(ws, grad_cols)

    return Tensor.make_from_op(out_data, parents, backward)


def _stage_dilated_grad(g_cl: np.ndarray, x_shape: Tuple[int, ...],
                        kh: int, kw: int, stride: int, padding: int,
                        ws: Optional[Workspace]
                        ) -> Tuple[np.ndarray, int, int]:
    """Stage the stride-dilated, flip-padded gradient for a transposed conv.

    Shared by the fast (gather+GEMM) and native (direct kernel) input-
    gradient paths — the geometry is the subtlest code on the backward
    side and must exist exactly once.  Left/top padding of the dilated
    gradient is kh-1-p (position u=0 of x sees output taps starting at
    kernel offset p).  Input rows past ``hu`` (stride remainder) never
    reached an output window and stay zero; conv positions past h are
    padding whose gradient is discarded.  Returns ``(g_dil, hu, wu)`` with
    ``g_dil`` of shape (n, hu+kh-1, wu+kw-1, c_out).
    """
    n, oh, ow, c_out = g_cl.shape
    h, w = x_shape[2], x_shape[3]
    pbh, pbw = kh - 1 - padding, kw - 1 - padding
    hu = min((oh - 1) * stride + kh - padding, h)
    wu = min((ow - 1) * stride + kw - padding, w)

    g_dil = _acquire(ws, (n, hu + kh - 1, wu + kw - 1, c_out))
    if stride == 1:
        # The scatter is a dense block copy; only the border needs zeroing.
        hhi, whi = pbh + oh, pbw + ow
        g_dil[:, :pbh] = 0.0
        g_dil[:, hhi:] = 0.0
        g_dil[:, pbh:hhi, :pbw] = 0.0
        g_dil[:, pbh:hhi, whi:] = 0.0
        g_dil[:, pbh:hhi, pbw:whi] = g_cl
    else:
        g_dil.fill(0.0)
        g_dil[:, pbh:pbh + (oh - 1) * stride + 1:stride,
              pbw:pbw + (ow - 1) * stride + 1:stride] = g_cl
    return g_dil, hu, wu


def _conv2d_input_grad(g_cl: np.ndarray, weight: np.ndarray, x: Tensor,
                       stride: int, padding: int, ws: Optional[Workspace],
                       w_flip: Optional[np.ndarray] = None) -> None:
    """Accumulate the conv input gradient into ``x.grad`` (channels-last).

    Computes the transposed convolution as a *full* convolution over the
    stride-dilated output gradient with the spatially-flipped kernel — one
    zero-scatter, one window gather and one GEMM, instead of a kh*kw-tap
    strided scatter (which dominates backward wall time for small channel
    counts).  When ``x.grad`` does not exist yet the GEMM writes straight
    into the freshly-created buffer.
    """
    n, oh, ow, c_out = g_cl.shape
    _, c_in, h, w = x.data.shape
    kh, kw = weight.shape[2], weight.shape[3]
    g_dil, hu, wu = _stage_dilated_grad(g_cl, x.data.shape, kh, kw, stride,
                                        padding, ws)

    win = _window_view(g_dil, kh, kw, 1)           # (n, hu, wu, kh, kw, c_out)
    cols = _acquire(ws, (n * hu * wu, kh * kw * c_out))
    np.copyto(cols.reshape(n, hu, wu, kh, kw, c_out), win)
    _release(ws, g_dil)
    if w_flip is None:
        w_flip = pack_gemm_weights(weight)[1]
    if x.grad is None and hu == h and wu == w:
        buf = _acquire(ws, (n, h, w, c_in))
        np.matmul(cols, w_flip, out=buf.reshape(n * h * w, c_in))
        x.grad = buf.transpose(0, 3, 1, 2)
    else:
        grad = _acquire(ws, (n * hu * wu, c_in))
        np.matmul(cols, w_flip, out=grad)
        xg_cl = _grad_target_cl(x, ws)
        xg_cl[:, :hu, :wu, :] += grad.reshape(n, hu, wu, c_in)
        _release(ws, grad)
    _release(ws, cols)


# ---------------------------------------------------------------------------
# Native direct-convolution backend
# ---------------------------------------------------------------------------

#: Channel ceiling of the native direct kernels.  Up to this width the
#: gather+GEMM pair is memory-bandwidth-bound (the regime the ROADMAP
#: measured at ~58% of a training pass) and the direct kernel wins by
#: dropping the kh*kw-fold column expansion; beyond it the GEMM runs near
#: BLAS peak and the fast path stays optimal, so the native backend
#: deliberately falls through.
_NATIVE_MAX_CH = 16


def _native_applicable(weight_shape: Tuple[int, ...], padding: int) -> bool:
    """Whether the native direct kernels should serve this convolution."""
    c_out, c_in, kh, kw = weight_shape
    if kh == 1 and kw == 1:
        return False    # no column expansion to shed; the GEMM view is free
    if padding > kh - 1 or padding > kw - 1:
        return False    # exotic padding keeps the per-tap fallback path
    return c_out <= _NATIVE_MAX_CH and c_in <= _NATIVE_MAX_CH


def _native_stage_input(x_cl: np.ndarray, padding: int,
                        ws: Optional[Workspace]) -> np.ndarray:
    """Contiguous (optionally zero-padded) NHWC staging for the C kernels.

    Steady-state activations are already channels-last, so the unpadded
    no-copy case is the common one; the padded copy runs as a single C pass
    (memset borders + memcpy rows) instead of five numpy slice writes.
    """
    n, h, w, c = x_cl.shape
    if padding:
        if not x_cl.flags["C_CONTIGUOUS"]:
            return _pad_nhwc(x_cl, padding, ws)      # numpy slice staging
        xp = _acquire(ws, (n, h + 2 * padding, w + 2 * padding, c))
        native.pad_quantize_stage(x_cl, xp, padding)
        return xp
    if x_cl.flags["C_CONTIGUOUS"]:
        return x_cl
    xp = _acquire(ws, (n, h, w, c))
    np.copyto(xp, x_cl)
    return xp


def _conv2d_native(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                   stride: int, padding: int, ws: Optional[Workspace],
                   gemm_weight: Optional[np.ndarray],
                   gemm_weight_bwd: Optional[np.ndarray] = None) -> Tensor:
    """Direct-convolution forward/backward through the compiled kernels.

    The padded input is staged once (1x bandwidth) and kept for backward;
    forward output, weight gradient and input gradient are all computed
    straight from it — no im2col columns on any path.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)

    xp = _native_stage_input(x.data.transpose(0, 2, 3, 1), padding, ws)
    if gemm_weight is None:
        gemm_weight, gemm_weight_bwd = pack_gemm_weights(weight.data)
    w_pack = native.pad_pack(gemm_weight)
    out_cl = _acquire(ws, (n, oh, ow, c_out))
    native.conv2d_forward(xp, w_pack,
                          bias.data if bias is not None else None,
                          out_cl, (kh, kw), stride)
    out_data = out_cl.transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])
    w_bwd = gemm_weight_bwd

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        if not g_cl.flags["C_CONTIGUOUS"]:
            staged = _acquire(ws, (n, oh, ow, c_out))
            np.copyto(staged, g_cl)
            g_cl = staged
        if weight.requires_grad:
            dw = _acquire(ws, (kh * kw * c_in, c_out))
            native.conv2d_wgrad(xp, g_cl, dw, (kh, kw), stride)
            weight.accumulate_grad(
                dw.reshape(kh, kw, c_in, c_out).transpose(3, 2, 0, 1))
            _release(ws, dw)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g_cl.reshape(n * oh * ow, c_out).sum(axis=0),
                                 owned=True)
        if x.requires_grad:
            _conv2d_input_grad_native(g_cl, weight.data, x, stride, padding,
                                      ws, w_bwd)

    return Tensor.make_from_op(out_data, parents, backward)


def _conv2d_input_grad_native(g_cl: np.ndarray, weight: np.ndarray, x: Tensor,
                              stride: int, padding: int,
                              ws: Optional[Workspace],
                              w_flip: Optional[np.ndarray] = None) -> None:
    """Direct transposed convolution into ``x.grad`` (channels-last).

    Same dilate/flip staging as :func:`_conv2d_input_grad` (shared via
    :func:`_stage_dilated_grad`), but the full convolution over the
    stride-dilated gradient runs through the native kernel — the
    kh*kw*c_out column gather of the fast path never happens.
    """
    n, oh, ow, c_out = g_cl.shape
    _, c_in, h, w = x.data.shape
    kh, kw = weight.shape[2], weight.shape[3]
    g_dil, hu, wu = _stage_dilated_grad(g_cl, x.data.shape, kh, kw, stride,
                                        padding, ws)

    if w_flip is None:
        w_flip = pack_gemm_weights(weight)[1]
    w_pack = native.pad_pack(w_flip)
    if x.grad is None and hu == h and wu == w:
        buf = _acquire(ws, (n, h, w, c_in))
        native.conv2d_forward(g_dil, w_pack, None, buf, (kh, kw), 1)
        x.grad = buf.transpose(0, 3, 1, 2)
    else:
        xg_cl = _grad_target_cl(x, ws)
        if hu == h and wu == w and xg_cl.flags["C_CONTIGUOUS"]:
            native.conv2d_forward(g_dil, w_pack, None, xg_cl, (kh, kw), 1,
                                  accumulate=True)
        else:
            scratch = _acquire(ws, (n, hu, wu, c_in))
            native.conv2d_forward(g_dil, w_pack, None, scratch, (kh, kw), 1)
            xg_cl[:, :hu, :wu, :] += scratch
            _release(ws, scratch)
    _release(ws, g_dil)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               workspace: Optional[Workspace] = None) -> Tensor:
    """Max pooling with square window."""
    if _BACKEND == "reference":
        return max_pool2d_reference(x, kernel_size, stride)
    return _max_pool2d_fast(x, kernel_size, stride or kernel_size, workspace)


def max_pool2d_reference(x: Tensor, kernel_size: int,
                         stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)                                   # (N*C, k*k, L)
    argmax = cols.argmax(axis=1)                               # (N*C, L)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad_out: np.ndarray) -> None:
        grad_cols = np.zeros_like(cols)
        flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def _max_pool2d_fast(x: Tensor, k: int, stride: int,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    oh = _conv_output_size(h, k, stride, 0)
    ow = _conv_output_size(w, k, stride, 0)

    x_cl = x.data.transpose(0, 2, 3, 1)
    win = _window_view(x_cl, k, k, stride)
    cols = _acquire(ws, (n, oh, ow, k * k, c))
    np.copyto(cols.reshape(n, oh, ow, k, k, c), win)
    argmax = _acquire(ws, (n, oh, ow, c), np.intp)
    np.argmax(cols, axis=3, out=argmax)
    out_cl = _acquire(ws, (n, oh, ow, c))
    np.max(cols, axis=3, out=out_cl)
    _release(ws, cols)
    del cols, win
    out_data = out_cl.transpose(0, 3, 1, 2)

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        grad_cols = _acquire(ws, (n, oh, ow, k * k, c))
        grad_cols.fill(0.0)
        np.put_along_axis(grad_cols, argmax[:, :, :, None, :],
                          g_cl[:, :, :, None, :], axis=3)
        xg_cl = _grad_target_cl(x, ws)
        for i in range(k):
            for j in range(k):
                src, dst = _clipped_window((h, w), (oh, ow), (i, j), stride)
                xg_cl[(slice(None),) + src + (slice(None),)] += \
                    grad_cols[(slice(None),) + dst + (i * k + j, slice(None))]
        _release(ws, grad_cols)

    return Tensor.make_from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               workspace: Optional[Workspace] = None) -> Tensor:
    """Average pooling with square window."""
    if _BACKEND == "reference":
        return avg_pool2d_reference(x, kernel_size, stride)
    return _avg_pool2d_fast(x, kernel_size, stride or kernel_size, workspace)


def avg_pool2d_reference(x: Tensor, kernel_size: int,
                         stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad_out: np.ndarray) -> None:
        flat = grad_out.reshape(n * c, 1, -1) / window
        grad_cols = np.broadcast_to(flat, cols.shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def _avg_pool2d_fast(x: Tensor, k: int, stride: int,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    oh = _conv_output_size(h, k, stride, 0)
    ow = _conv_output_size(w, k, stride, 0)

    x_cl = x.data.transpose(0, 2, 3, 1)
    win = _window_view(x_cl, k, k, stride)
    out_cl = _acquire(ws, (n, oh, ow, c))
    # The mean reduces the strided window view directly — the forward never
    # materialises pooling columns.
    np.mean(win, axis=(3, 4), out=out_cl)
    out_data = out_cl.transpose(0, 3, 1, 2)
    window = k * k

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        scaled = _acquire(ws, (n, oh, ow, c))
        np.divide(g_cl, window, out=scaled)
        xg_cl = _grad_target_cl(x, ws)
        for i in range(k):
            for j in range(k):
                src, dst = _clipped_window((h, w), (oh, ow), (i, j), stride)
                xg_cl[(slice(None),) + src + (slice(None),)] += \
                    scaled[(slice(None),) + dst + (slice(None),)]
        _release(ws, scaled)

    return Tensor.make_from_op(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1,
                        workspace: Optional[Workspace] = None) -> Tensor:
    """Adaptive average pooling; only whole-divisor output sizes are supported."""
    _, _, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError("input spatial size must be divisible by output_size")
    kernel = h // output_size
    return avg_pool2d(x, kernel_size=kernel, stride=kernel, workspace=workspace)


# ---------------------------------------------------------------------------
# Normalisation and activations
# ---------------------------------------------------------------------------

def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
    workspace: Optional[Workspace] = None,
) -> Tensor:
    """Batch normalisation over (N, C, H, W) or (N, C) inputs.

    During training the batch statistics are used and ``running_mean`` /
    ``running_var`` are updated in place (exponential moving average).
    """
    if _BACKEND == "reference" or x.ndim != 4:
        return batch_norm_reference(x, gamma, beta, running_mean, running_var,
                                    training, momentum, eps)
    return _batch_norm_fast(x, gamma, beta, running_mean, running_var,
                            training, momentum, eps, workspace)


def batch_norm_reference(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    is_conv = x.ndim == 4
    axes = (0, 2, 3) if is_conv else (0,)
    shape = (1, -1, 1, 1) if is_conv else (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size / x.data.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(grad_out: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta.accumulate_grad(grad_out.sum(axis=axes))
        if x.requires_grad:
            g = gamma.data.reshape(shape)
            if training:
                dxhat = grad_out * g
                term1 = dxhat
                term2 = dxhat.mean(axis=axes, keepdims=True)
                term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
                grad_x = (term1 - term2 - term3) * inv_std.reshape(shape)
            else:
                grad_x = grad_out * g * inv_std.reshape(shape)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, (x, gamma, beta), backward)


def _batch_norm_fast(x: Tensor, gamma: Tensor, beta: Tensor,
                     running_mean: np.ndarray, running_var: np.ndarray,
                     training: bool, momentum: float, eps: float,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    m = n * h * w
    x_cl = x.data.transpose(0, 2, 3, 1)
    out_cl = _acquire(ws, (n, h, w, c))

    if training:
        # Channel statistics as BLAS row-sums (see _channel_sum): a two-pass
        # mean/variance, so numerics match the reference backend up to
        # reduction order (a few ULPs; documented module-level).  ``xc``
        # (the centred input) is kept for backward instead of x_hat; every
        # downstream use folds ``inv_std`` into per-channel scalars.
        rows = _as_rows(x_cl, ws)
        mean = _channel_sum(rows) / np.float32(m)
        xc = _acquire(ws, (n, h, w, c))
        np.subtract(x_cl, mean, out=xc)
        xc_rows = xc.reshape(m, c)
        np.multiply(xc_rows, xc_rows, out=out_cl.reshape(m, c))  # scratch use
        var = _channel_sum(out_cl.reshape(m, c)) / np.float32(m)
        count = x.data.size / c
        unbiased = var * count / max(count - 1, 1)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * unbiased
        inv_std = (1.0 / np.sqrt(var + eps)).astype(np.float32)
        np.multiply(xc, gamma.data * inv_std, out=out_cl)
        out_cl += beta.data
    else:
        mean = running_mean
        var = running_var
        xc = None
        inv_std = (1.0 / np.sqrt(var + eps)).astype(np.float32)
        scale_vec = gamma.data * inv_std
        np.multiply(x_cl, scale_vec, out=out_cl)
        out_cl += beta.data - mean * scale_vec
    out_data = out_cl.transpose(0, 3, 1, 2)

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        g_rows = _as_rows(g_cl, ws)
        sum_g = _channel_sum(g_rows)
        if beta.requires_grad:
            beta.accumulate_grad(sum_g, owned=True)
        if training:
            tmp = _acquire(ws, (n, h, w, c))
            np.multiply(g_rows.reshape(n, h, w, c), xc, out=tmp)
            sum_gxc = _channel_sum(tmp.reshape(m, c))
            if gamma.requires_grad:
                gamma.accumulate_grad(inv_std * sum_gxc, owned=True)
            if x.requires_grad:
                # grad_x = (gamma*inv) * (g - mean(g) - xc*inv^2*mean(g*xc))
                s3 = (inv_std * inv_std) * (sum_gxc / np.float32(m))
                np.multiply(xc, s3, out=tmp)
                dx = _acquire(ws, (n, h, w, c))
                np.subtract(g_cl, sum_g / np.float32(m), out=dx)
                dx -= tmp
                dx *= gamma.data * inv_std
                if x.grad is None:
                    x.grad = dx.transpose(0, 3, 1, 2)
                else:
                    x.grad.transpose(0, 2, 3, 1)[...] += dx
                    _release(ws, dx)
            _release(ws, tmp)
        else:
            if gamma.requires_grad:
                tmp = _acquire(ws, (n, h, w, c))
                np.subtract(x_cl, mean, out=tmp)
                np.multiply(tmp, g_cl, out=tmp)
                gamma.accumulate_grad(
                    inv_std * _channel_sum(tmp.reshape(m, c)), owned=True)
                _release(ws, tmp)
            if x.requires_grad:
                scale_vec = gamma.data * inv_std
                gbuf = _acquire(ws, (n, h, w, c))
                np.multiply(g_cl, scale_vec, out=gbuf)
                if x.grad is None:
                    x.grad = gbuf.transpose(0, 3, 1, 2)
                else:
                    x.grad.transpose(0, 2, 3, 1)[...] += gbuf
                    _release(ws, gbuf)

    return Tensor.make_from_op(out_data, (x, gamma, beta), backward)


def relu(x: Tensor, workspace: Optional[Workspace] = None) -> Tensor:
    """ReLU; with a workspace, forward/backward run through reused buffers."""
    if workspace is None or _BACKEND == "reference":
        return x.relu()
    out_data = acquire_like(workspace, x.data)
    np.maximum(x.data, 0, out=out_data)

    def backward(grad_out: np.ndarray) -> None:
        mask = acquire_like(workspace, x.data, dtype=bool)
        np.greater(out_data, 0, out=mask)
        if x.grad is None:
            g = acquire_like(workspace, x.data)
            np.multiply(grad_out, mask, out=g)
            x.grad = g
        else:
            # grad_out is dead after this backward; mask it in place.
            np.multiply(grad_out, mask, out=grad_out)
            x.grad += grad_out
        workspace.release(mask)

    return Tensor.make_from_op(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad_out: np.ndarray) -> None:
        dot = (grad_out * out_data).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out_data * (grad_out - dot), owned=True)

    return Tensor.make_from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    probs = np.exp(out_data)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out - probs * grad_out.sum(axis=axis, keepdims=True),
                          owned=True)

    return Tensor.make_from_op(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), targets]
    if reduction == "mean":
        out_data = -picked.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad_out: np.ndarray) -> None:
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), targets] = -scale
        log_probs.accumulate_grad(grad * grad_out, owned=True)

    return Tensor.make_from_op(np.asarray(out_data, dtype=np.float32),
                               (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy over integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - (target if isinstance(target, Tensor) else Tensor(target))
    return (diff * diff).mean()


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at inference time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out * mask, owned=True)

    return Tensor.make_from_op(x.data * mask, (x,), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero padding of the two trailing spatial dimensions."""
    if padding == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                               (padding, padding)), mode="constant")

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out[:, :, padding:-padding, padding:-padding])

    return Tensor.make_from_op(out_data, (x,), backward)
