"""Neural-network primitives (forward + backward) on top of :class:`Tensor`.

These functions implement the heavier operations needed by convolutional
networks — 2-D convolution, pooling, batch normalisation, softmax /
cross-entropy — each with an explicit, vectorised backward pass registered
through :meth:`repro.nn.tensor.Tensor.make_from_op`.

Two interchangeable compute backends are provided (``REPRO_NN_BACKEND`` or
:func:`use_backend`):

* ``"fast"`` (default) — the channels-last core.  Inputs are viewed as NHWC
  (a zero-copy ``transpose``), sliding windows are taken with
  ``numpy.lib.stride_tricks.as_strided`` over a padded staging buffer, and
  convolution runs as one large 2-D BLAS GEMM ``(N·OH·OW, KH·KW·C) @
  (KH·KW·C, C_OUT)`` instead of ``N`` small per-sample matmuls.  Pooling
  routes through the same window-view helper (the forward of average pooling
  reduces the strided view directly, with no column materialisation at all).
  All large scratch — column buffers, GEMM outputs, normalised activations,
  gradient accumulators — comes from the :mod:`repro.nn.workspace` arena, so
  steady-state training performs no large allocations.  Outputs keep NCHW
  *logical* shape with channels-last *memory* layout; numpy ufuncs preserve
  that layout through ReLU / residual adds / quantizers, so whole networks
  stay channels-last end to end with exactly one implicit layout conversion
  at the stem.

* ``"reference"`` — the original im2col/NCHW implementation, kept as the
  parity oracle (see ``tests/test_nn_parity.py``).  Fast-path outputs match
  it to ~1e-6: convolution GEMMs and batch-norm reductions accumulate in a
  different order (one big GEMM vs. N small ones; NHWC vs. NCHW axis
  order), which perturbs float32 results by a few ULPs.  Pooling forwards
  are bitwise identical (they only move or compare values).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .. import config
from .tensor import Tensor
from .workspace import Workspace, acquire_like

__all__ = [
    "linear",
    "conv2d",
    "conv2d_infer",
    "channel_affine_infer",
    "conv2d_reference",
    "max_pool2d",
    "max_pool2d_reference",
    "avg_pool2d",
    "avg_pool2d_reference",
    "adaptive_avg_pool2d",
    "batch_norm",
    "batch_norm_reference",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "pad2d",
    "im2col",
    "col2im",
    "pack_gemm_weights",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKENDS = ("fast", "reference")
_BACKEND = config.nn_backend()


def get_backend() -> str:
    """Name of the active compute backend (``"fast"`` or ``"reference"``)."""
    return _BACKEND


def set_backend(name: str) -> None:
    global _BACKEND
    if name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {_BACKENDS}")
    _BACKEND = name


@contextmanager
def use_backend(name: str):
    """Temporarily switch the compute backend (used by the parity suite)."""
    previous = _BACKEND
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# ---------------------------------------------------------------------------
# im2col / col2im helpers (reference backend; the window maths is shared)
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel_size: Tuple[int, int], stride: int,
           padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns an array of shape (N, C * kh * kw, out_h * out_w).
    """
    n, c, h, w = x.shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        # 1x1 kernels need no patch extraction; a (strided) view suffices.
        return x[:, :, ::stride, ::stride].reshape(n, c, out_h * out_w)

    # Padding is fused into the slice bounds (the zero border is written
    # directly into `cols`) so the padded copy of `x` is never materialised.
    cols = (np.zeros((n, c, kh, kw, out_h, out_w), dtype=x.dtype) if padding
            else np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype))
    for i in range(kh):
        for j in range(kw):
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            cols[(slice(None), slice(None), i, j) + dst] = \
                x[(slice(None), slice(None)) + src]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def _clipped_window(in_size, out_size, offset, stride):
    """Slices mapping output positions to in-bounds input positions.

    For kernel offset ``o``, output index ``t`` reads input ``o + stride*t``;
    returns ``(src, dst)`` slice tuples restricted to ``0 <= o + stride*t <
    in_size`` per axis, or ``(None, None)`` when no position is in bounds.
    """
    src = []
    dst = []
    for size, out, o in zip(in_size, out_size, offset):
        t_lo = (-o + stride - 1) // stride if o < 0 else 0  # ceil(-o/stride)
        t_hi = min(out - 1, (size - 1 - o) // stride)
        if t_hi < t_lo:
            return None, None
        src.append(slice(o + stride * t_lo, o + stride * t_hi + 1, stride))
        dst.append(slice(t_lo, t_hi + 1))
    return tuple(src), tuple(dst)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kernel_size: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches."""
    n, c, h, w = x_shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        x = np.zeros((n, c, h, w), dtype=cols.dtype)
        x[:, :, ::stride, ::stride] = cols.reshape(n, c, out_h, out_w)
        return x

    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros((n, c, h, w), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            # Contributions that landed in the padding border are dropped, so
            # only in-bounds windows are accumulated (no padded temporary).
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            x[(slice(None), slice(None)) + src] += \
                cols[(slice(None), slice(None), i, j) + dst]
    return x


# ---------------------------------------------------------------------------
# Channels-last core helpers
# ---------------------------------------------------------------------------

def _acquire(ws: Optional[Workspace], shape, dtype=np.float32) -> np.ndarray:
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.acquire(shape, dtype)


def _release(ws: Optional[Workspace], buf: np.ndarray) -> None:
    if ws is not None:
        ws.release(buf)


def _window_view(xp: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy sliding windows over an NHWC array.

    Returns an ``as_strided`` view of shape (N, OH, OW, KH, KW, C): every
    output position indexes its receptive field without materialising
    patches.  The view is read-only (windows overlap).
    """
    n, h, w, c = xp.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sh, sw, sc = xp.strides
    return as_strided(xp, shape=(n, oh, ow, kh, kw, c),
                      strides=(sn, sh * stride, sw * stride, sh, sw, sc),
                      writeable=False)


def _pad_nhwc(x_cl: np.ndarray, padding: int,
              ws: Optional[Workspace]) -> np.ndarray:
    """Stage ``x_cl`` into a reusable zero-bordered NHWC buffer."""
    n, h, w, c = x_cl.shape
    hp, wp = h + 2 * padding, w + 2 * padding
    xp = _acquire(ws, (n, hp, wp, c))
    xp[:, :padding] = 0.0
    xp[:, hp - padding:] = 0.0
    xp[:, padding:hp - padding, :padding] = 0.0
    xp[:, padding:hp - padding, wp - padding:] = 0.0
    np.copyto(xp[:, padding:hp - padding, padding:wp - padding], x_cl)
    return xp


#: Cached all-ones row vectors used to express channel reductions as BLAS
#: matmuls: summing (M, C) activations over rows as ``ones(1, M) @ x`` is
#: several times faster than ``x.sum(axis=0)`` for the small channel counts
#: typical of the bench models.
_ONES_ROWS: dict = {}


def _ones_row(m: int) -> np.ndarray:
    row = _ONES_ROWS.get(m)
    if row is None:
        if len(_ONES_ROWS) > 256:
            _ONES_ROWS.clear()
        row = _ONES_ROWS[m] = np.ones((1, m), dtype=np.float32)
    return row


def _channel_sum(x2d: np.ndarray) -> np.ndarray:
    """Sum a (M, C) array over rows via BLAS; returns shape (C,)."""
    return (_ones_row(x2d.shape[0]) @ x2d).ravel()


def _as_rows(arr_cl: np.ndarray, ws: Optional[Workspace]) -> np.ndarray:
    """View (or stage) an NHWC array as (N*H*W, C) rows for BLAS reductions."""
    n, h, w, c = arr_cl.shape
    if arr_cl.flags["C_CONTIGUOUS"]:
        return arr_cl.reshape(n * h * w, c)
    staged = _acquire(ws, (n * h * w, c))
    np.copyto(staged.reshape(n, h, w, c), arr_cl)
    return staged


def _grad_target_cl(x: Tensor, ws: Optional[Workspace]) -> np.ndarray:
    """``x.grad`` as a zero-initialised NHWC view for in-place accumulation.

    Creates the gradient channels-last when it does not exist yet, so the
    whole backward pass stays in the same memory layout as the forward.
    Accumulating in place composes correctly with ``accumulate_grad`` calls
    from other children of ``x`` (both are ``+=`` into the same array).
    """
    n, c, h, w = x.data.shape
    if x.grad is None:
        buf = _acquire(ws, (n, h, w, c))
        buf.fill(0.0)
        x.grad = buf.transpose(0, 3, 1, 2)
    return x.grad.transpose(0, 2, 3, 1)


# ---------------------------------------------------------------------------
# Linear and convolution
# ---------------------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` with weight shape (out, in)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def pack_gemm_weights(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """GEMM repacks of a (C_out, C_in, kh, kw) conv weight.

    Returns ``(fwd, bwd)``: the (kh*kw*C_in, C_out) forward pack whose row
    order matches the NHWC window gather, and the spatially-flipped
    (kh*kw*C_out, C_in) pack used by the transposed-convolution input
    gradient.  The single source of truth for the fast backend's column
    layout — layers and the quantized-weight cache must use this helper.
    """
    c_out, c_in, kh, kw = weight.shape
    fwd = weight.transpose(2, 3, 1, 0).reshape(kh * kw * c_in, c_out)
    bwd = weight.transpose(2, 3, 0, 1)[::-1, ::-1].reshape(kh * kw * c_out, c_in)
    return fwd, bwd


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0,
           workspace: Optional[Workspace] = None,
           gemm_weight: Optional[np.ndarray] = None,
           gemm_weight_bwd: Optional[np.ndarray] = None) -> Tensor:
    """2-D convolution (cross-correlation).

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.  ``workspace`` supplies reusable scratch;
    ``gemm_weight`` / ``gemm_weight_bwd`` are cached forward / flipped
    backward GEMM repacks of ``weight`` (fast-backend only; layers provide
    them).
    """
    if _BACKEND == "reference":
        return conv2d_reference(x, weight, bias, stride=stride, padding=padding)
    return _conv2d_fast(x, weight, bias, stride, padding, workspace,
                        gemm_weight, gemm_weight_bwd)


def conv2d_reference(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """im2col/NCHW convolution — the bit-parity oracle for the fast path."""
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)          # (N, C*kh*kw, L)
    w_mat = weight.data.reshape(c_out, -1)                    # (C_out, C*kh*kw)
    out_data = np.matmul(w_mat, cols)                         # (N, C_out, L)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad_out: np.ndarray) -> None:
        grad_flat = grad_out.reshape(n, c_out, -1)            # (N, C_out, L)
        if weight.requires_grad:
            grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad_out.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.matmul(w_mat.T, grad_flat)
            grad_x = col2im(grad_cols, (n, c_in, h, w), (kh, kw), stride, padding)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, parents, backward)


def conv2d_infer(x: np.ndarray, gemm_weight: np.ndarray, kh: int, kw: int,
                 stride: int, padding: int,
                 workspace: Optional[Workspace] = None,
                 bias: Optional[np.ndarray] = None,
                 quantize=None, relu: bool = False) -> np.ndarray:
    """Inference-only convolution on raw arrays (no autograd graph).

    The data-plane kernel behind :mod:`repro.inference` compiled plans: the
    channels-last forward of :func:`conv2d` stripped of every backward
    provision, with three inference-specific fusions:

    * ``quantize(src, dst)`` — optional activation fake-quantisation written
      *directly into the padded staging buffer* (or the column buffer for
      1x1 kernels), eliminating the separate quantised-activation array and
      the pad copy of the training path.  The callable must perform the
      exact elementwise quantise-dequantise of the live path so values are
      bit-identical (the zero padding border is unaffected: symmetric
      quantisation maps 0 to 0).
    * ``bias`` — per-output-channel vector added to the GEMM output.  A
      compiled plan folds eval-mode batch-norm into ``gemm_weight`` and this
      vector.
    * ``relu`` — applies ``max(0, .)`` in place on the (cache-warm) GEMM
      output, eliminating the downstream ReLU pass.

    ``x`` is (N, C_in, H, W) logical; ``gemm_weight`` is the
    (kh*kw*C_in, C_out) forward pack from :func:`pack_gemm_weights`.
    Returns an (N, C_out, OH, OW)-logical, channels-last array.
    """
    ws = workspace
    n, c_in, h, w = x.shape
    c_out = gemm_weight.shape[1]
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    nl = n * oh * ow
    k = kh * kw * c_in

    x_cl = x.transpose(0, 2, 3, 1)                            # NHWC view
    release_cols = True
    if kh == 1 and kw == 1 and padding == 0:
        src = x_cl if stride == 1 else x_cl[:, ::stride, ::stride, :]
        if quantize is None and src.flags["C_CONTIGUOUS"]:
            cols2d = src.reshape(nl, k)                       # pure view
            release_cols = False
        else:
            cols2d = _acquire(ws, (nl, k))
            target = cols2d.reshape(n, oh, ow, c_in)
            if quantize is None:
                np.copyto(target, src)
            else:
                quantize(src, target)
    else:
        if padding:
            hp, wp = h + 2 * padding, w + 2 * padding
            xp = _acquire(ws, (n, hp, wp, c_in))
            xp[:, :padding] = 0.0
            xp[:, hp - padding:] = 0.0
            xp[:, padding:hp - padding, :padding] = 0.0
            xp[:, padding:hp - padding, wp - padding:] = 0.0
            interior = xp[:, padding:hp - padding, padding:wp - padding]
            if quantize is None:
                np.copyto(interior, x_cl)
            else:
                quantize(x_cl, interior)
            staged = xp
        elif quantize is not None:
            staged = _acquire(ws, (n, h, w, c_in))
            quantize(x_cl, staged)
        else:
            staged = x_cl
        win = _window_view(staged, kh, kw, stride)
        cols2d = _acquire(ws, (nl, k))
        np.copyto(cols2d.reshape(n, oh, ow, kh, kw, c_in), win)
        if staged is not x_cl:
            _release(ws, staged)
            del staged

    out2d = _acquire(ws, (nl, c_out))
    np.matmul(cols2d, gemm_weight, out=out2d)
    if release_cols:
        _release(ws, cols2d)
    del cols2d
    if bias is not None:
        out2d += bias
    if relu:
        np.maximum(out2d, 0.0, out=out2d)
    return out2d.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)


def channel_affine_infer(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                         workspace: Optional[Workspace] = None,
                         relu: bool = False) -> np.ndarray:
    """Per-channel affine ``x * scale + shift`` on an (N, C, H, W) array.

    The inference kernel for eval-mode batch norm that a compiled plan could
    not fold into a preceding convolution: ``scale`` / ``shift`` are the
    precomputed ``gamma * inv_std`` and ``beta - mean * gamma * inv_std``
    vectors, so the per-forward reduction of the live path disappears and the
    elementwise math is bit-identical to it.  ``relu`` fuses ``max(0, .)``
    into the same pass.
    """
    n, c, h, w = x.shape
    x_cl = x.transpose(0, 2, 3, 1)
    out_cl = _acquire(workspace, (n, h, w, c))
    np.multiply(x_cl, scale, out=out_cl)
    out_cl += shift
    if relu:
        np.maximum(out_cl, 0.0, out=out_cl)
    return out_cl.transpose(0, 3, 1, 2)


def _conv2d_fast(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                 stride: int, padding: int, ws: Optional[Workspace],
                 gemm_weight: Optional[np.ndarray],
                 gemm_weight_bwd: Optional[np.ndarray] = None) -> Tensor:
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    nl = n * oh * ow
    k = kh * kw * c_in

    x_cl = x.data.transpose(0, 2, 3, 1)                       # NHWC view
    if kh == 1 and kw == 1 and padding == 0:
        src = x_cl if stride == 1 else x_cl[:, ::stride, ::stride, :]
        if src.flags["C_CONTIGUOUS"]:
            cols2d = src.reshape(nl, k)                       # pure view
        else:
            cols2d = _acquire(ws, (nl, k))
            np.copyto(cols2d.reshape(n, oh, ow, c_in), src)
    else:
        xp = _pad_nhwc(x_cl, padding, ws) if padding else x_cl
        win = _window_view(xp, kh, kw, stride)
        cols2d = _acquire(ws, (nl, k))
        # One C-level strided gather materialises every receptive field into
        # the (reused) column buffer; there is no per-batch Python loop.
        np.copyto(cols2d.reshape(n, oh, ow, kh, kw, c_in), win)
        if padding:
            _release(ws, xp)
            del xp

    if gemm_weight is None:
        gemm_weight = pack_gemm_weights(weight.data)[0]
    out2d = _acquire(ws, (nl, c_out))
    np.matmul(cols2d, gemm_weight, out=out2d)
    if bias is not None:
        out2d += bias.data
    out_data = out2d.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])
    w_gemm = gemm_weight

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        if g_cl.flags["C_CONTIGUOUS"]:
            g2d = g_cl.reshape(nl, c_out)
        else:
            g2d = _acquire(ws, (nl, c_out))
            np.copyto(g2d.reshape(n, oh, ow, c_out), g_cl)
        if weight.requires_grad:
            grad_w = cols2d.T @ g2d                            # (K, C_out)
            weight.accumulate_grad(
                grad_w.reshape(kh, kw, c_in, c_out).transpose(3, 2, 0, 1))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g2d.sum(axis=0), owned=True)
        if x.requires_grad:
            if kh == 1 and kw == 1 and padding == 0:
                if x.grad is None and stride == 1:
                    # Fresh gradient: GEMM straight into the new buffer (no
                    # zero fill, no accumulate pass).
                    buf = _acquire(ws, (n, h, w, c_in))
                    np.matmul(g2d, w_gemm.T, out=buf.reshape(nl, c_in))
                    x.grad = buf.transpose(0, 3, 1, 2)
                else:
                    xg_cl = _grad_target_cl(x, ws)
                    target = (xg_cl if stride == 1
                              else xg_cl[:, ::stride, ::stride, :])
                    target += (g2d @ w_gemm.T).reshape(n, oh, ow, c_in)
            elif padding <= kh - 1 and padding <= kw - 1:
                _conv2d_input_grad(g2d.reshape(n, oh, ow, c_out), weight.data,
                                   x, stride, padding, ws, gemm_weight_bwd)
            else:
                xg_cl = _grad_target_cl(x, ws)
                # Exotic padding (> kernel-1): fall back to the per-tap fold.
                grad_cols = _acquire(ws, (nl, k))
                np.matmul(g2d, w_gemm.T, out=grad_cols)
                gc6 = grad_cols.reshape(n, oh, ow, kh, kw, c_in)
                for i in range(kh):
                    for j in range(kw):
                        src, dst = _clipped_window((h, w), (oh, ow),
                                                   (i - padding, j - padding),
                                                   stride)
                        if src is None:
                            continue
                        xg_cl[(slice(None),) + src + (slice(None),)] += \
                            gc6[(slice(None),) + dst + (i, j, slice(None))]
                _release(ws, grad_cols)

    return Tensor.make_from_op(out_data, parents, backward)


def _conv2d_input_grad(g_cl: np.ndarray, weight: np.ndarray, x: Tensor,
                       stride: int, padding: int, ws: Optional[Workspace],
                       w_flip: Optional[np.ndarray] = None) -> None:
    """Accumulate the conv input gradient into ``x.grad`` (channels-last).

    Computes the transposed convolution as a *full* convolution over the
    stride-dilated output gradient with the spatially-flipped kernel — one
    zero-scatter, one window gather and one GEMM, instead of a kh*kw-tap
    strided scatter (which dominates backward wall time for small channel
    counts).  When ``x.grad`` does not exist yet the GEMM writes straight
    into the freshly-created buffer.
    """
    n, oh, ow, c_out = g_cl.shape
    _, c_in, h, w = x.data.shape
    kh, kw = weight.shape[2], weight.shape[3]
    # Left/top padding of the dilated gradient is kh-1-p (position u=0 of x
    # sees output taps starting at kernel offset p).  Input rows past hu
    # (stride remainder) never reached an output window and stay zero; conv
    # positions past h are padding whose gradient is discarded.
    pbh, pbw = kh - 1 - padding, kw - 1 - padding
    hu = min((oh - 1) * stride + kh - padding, h)
    wu = min((ow - 1) * stride + kw - padding, w)
    hd = hu + kh - 1
    wd = wu + kw - 1

    g_dil = _acquire(ws, (n, hd, wd, c_out))
    if stride == 1:
        # The scatter is a dense block copy; only the border needs zeroing.
        hhi, whi = pbh + oh, pbw + ow
        g_dil[:, :pbh] = 0.0
        g_dil[:, hhi:] = 0.0
        g_dil[:, pbh:hhi, :pbw] = 0.0
        g_dil[:, pbh:hhi, whi:] = 0.0
        g_dil[:, pbh:hhi, pbw:whi] = g_cl
    else:
        g_dil.fill(0.0)
        g_dil[:, pbh:pbh + (oh - 1) * stride + 1:stride,
              pbw:pbw + (ow - 1) * stride + 1:stride] = g_cl

    win = _window_view(g_dil, kh, kw, 1)           # (n, hu, wu, kh, kw, c_out)
    cols = _acquire(ws, (n * hu * wu, kh * kw * c_out))
    np.copyto(cols.reshape(n, hu, wu, kh, kw, c_out), win)
    _release(ws, g_dil)
    if w_flip is None:
        w_flip = pack_gemm_weights(weight)[1]
    if x.grad is None and hu == h and wu == w:
        buf = _acquire(ws, (n, h, w, c_in))
        np.matmul(cols, w_flip, out=buf.reshape(n * h * w, c_in))
        x.grad = buf.transpose(0, 3, 1, 2)
    else:
        grad = _acquire(ws, (n * hu * wu, c_in))
        np.matmul(cols, w_flip, out=grad)
        xg_cl = _grad_target_cl(x, ws)
        xg_cl[:, :hu, :wu, :] += grad.reshape(n, hu, wu, c_in)
        _release(ws, grad)
    _release(ws, cols)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               workspace: Optional[Workspace] = None) -> Tensor:
    """Max pooling with square window."""
    if _BACKEND == "reference":
        return max_pool2d_reference(x, kernel_size, stride)
    return _max_pool2d_fast(x, kernel_size, stride or kernel_size, workspace)


def max_pool2d_reference(x: Tensor, kernel_size: int,
                         stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)                                   # (N*C, k*k, L)
    argmax = cols.argmax(axis=1)                               # (N*C, L)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad_out: np.ndarray) -> None:
        grad_cols = np.zeros_like(cols)
        flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def _max_pool2d_fast(x: Tensor, k: int, stride: int,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    oh = _conv_output_size(h, k, stride, 0)
    ow = _conv_output_size(w, k, stride, 0)

    x_cl = x.data.transpose(0, 2, 3, 1)
    win = _window_view(x_cl, k, k, stride)
    cols = _acquire(ws, (n, oh, ow, k * k, c))
    np.copyto(cols.reshape(n, oh, ow, k, k, c), win)
    argmax = _acquire(ws, (n, oh, ow, c), np.intp)
    np.argmax(cols, axis=3, out=argmax)
    out_cl = _acquire(ws, (n, oh, ow, c))
    np.max(cols, axis=3, out=out_cl)
    _release(ws, cols)
    del cols, win
    out_data = out_cl.transpose(0, 3, 1, 2)

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        grad_cols = _acquire(ws, (n, oh, ow, k * k, c))
        grad_cols.fill(0.0)
        np.put_along_axis(grad_cols, argmax[:, :, :, None, :],
                          g_cl[:, :, :, None, :], axis=3)
        xg_cl = _grad_target_cl(x, ws)
        for i in range(k):
            for j in range(k):
                src, dst = _clipped_window((h, w), (oh, ow), (i, j), stride)
                xg_cl[(slice(None),) + src + (slice(None),)] += \
                    grad_cols[(slice(None),) + dst + (i * k + j, slice(None))]
        _release(ws, grad_cols)

    return Tensor.make_from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               workspace: Optional[Workspace] = None) -> Tensor:
    """Average pooling with square window."""
    if _BACKEND == "reference":
        return avg_pool2d_reference(x, kernel_size, stride)
    return _avg_pool2d_fast(x, kernel_size, stride or kernel_size, workspace)


def avg_pool2d_reference(x: Tensor, kernel_size: int,
                         stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad_out: np.ndarray) -> None:
        flat = grad_out.reshape(n * c, 1, -1) / window
        grad_cols = np.broadcast_to(flat, cols.shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def _avg_pool2d_fast(x: Tensor, k: int, stride: int,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    oh = _conv_output_size(h, k, stride, 0)
    ow = _conv_output_size(w, k, stride, 0)

    x_cl = x.data.transpose(0, 2, 3, 1)
    win = _window_view(x_cl, k, k, stride)
    out_cl = _acquire(ws, (n, oh, ow, c))
    # The mean reduces the strided window view directly — the forward never
    # materialises pooling columns.
    np.mean(win, axis=(3, 4), out=out_cl)
    out_data = out_cl.transpose(0, 3, 1, 2)
    window = k * k

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        scaled = _acquire(ws, (n, oh, ow, c))
        np.divide(g_cl, window, out=scaled)
        xg_cl = _grad_target_cl(x, ws)
        for i in range(k):
            for j in range(k):
                src, dst = _clipped_window((h, w), (oh, ow), (i, j), stride)
                xg_cl[(slice(None),) + src + (slice(None),)] += \
                    scaled[(slice(None),) + dst + (slice(None),)]
        _release(ws, scaled)

    return Tensor.make_from_op(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1,
                        workspace: Optional[Workspace] = None) -> Tensor:
    """Adaptive average pooling; only whole-divisor output sizes are supported."""
    _, _, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError("input spatial size must be divisible by output_size")
    kernel = h // output_size
    return avg_pool2d(x, kernel_size=kernel, stride=kernel, workspace=workspace)


# ---------------------------------------------------------------------------
# Normalisation and activations
# ---------------------------------------------------------------------------

def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
    workspace: Optional[Workspace] = None,
) -> Tensor:
    """Batch normalisation over (N, C, H, W) or (N, C) inputs.

    During training the batch statistics are used and ``running_mean`` /
    ``running_var`` are updated in place (exponential moving average).
    """
    if _BACKEND == "reference" or x.ndim != 4:
        return batch_norm_reference(x, gamma, beta, running_mean, running_var,
                                    training, momentum, eps)
    return _batch_norm_fast(x, gamma, beta, running_mean, running_var,
                            training, momentum, eps, workspace)


def batch_norm_reference(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    is_conv = x.ndim == 4
    axes = (0, 2, 3) if is_conv else (0,)
    shape = (1, -1, 1, 1) if is_conv else (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size / x.data.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(grad_out: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta.accumulate_grad(grad_out.sum(axis=axes))
        if x.requires_grad:
            g = gamma.data.reshape(shape)
            if training:
                dxhat = grad_out * g
                term1 = dxhat
                term2 = dxhat.mean(axis=axes, keepdims=True)
                term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
                grad_x = (term1 - term2 - term3) * inv_std.reshape(shape)
            else:
                grad_x = grad_out * g * inv_std.reshape(shape)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, (x, gamma, beta), backward)


def _batch_norm_fast(x: Tensor, gamma: Tensor, beta: Tensor,
                     running_mean: np.ndarray, running_var: np.ndarray,
                     training: bool, momentum: float, eps: float,
                     ws: Optional[Workspace]) -> Tensor:
    n, c, h, w = x.shape
    m = n * h * w
    x_cl = x.data.transpose(0, 2, 3, 1)
    out_cl = _acquire(ws, (n, h, w, c))

    if training:
        # Channel statistics as BLAS row-sums (see _channel_sum): a two-pass
        # mean/variance, so numerics match the reference backend up to
        # reduction order (a few ULPs; documented module-level).  ``xc``
        # (the centred input) is kept for backward instead of x_hat; every
        # downstream use folds ``inv_std`` into per-channel scalars.
        rows = _as_rows(x_cl, ws)
        mean = _channel_sum(rows) / np.float32(m)
        xc = _acquire(ws, (n, h, w, c))
        np.subtract(x_cl, mean, out=xc)
        xc_rows = xc.reshape(m, c)
        np.multiply(xc_rows, xc_rows, out=out_cl.reshape(m, c))  # scratch use
        var = _channel_sum(out_cl.reshape(m, c)) / np.float32(m)
        count = x.data.size / c
        unbiased = var * count / max(count - 1, 1)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * unbiased
        inv_std = (1.0 / np.sqrt(var + eps)).astype(np.float32)
        np.multiply(xc, gamma.data * inv_std, out=out_cl)
        out_cl += beta.data
    else:
        mean = running_mean
        var = running_var
        xc = None
        inv_std = (1.0 / np.sqrt(var + eps)).astype(np.float32)
        scale_vec = gamma.data * inv_std
        np.multiply(x_cl, scale_vec, out=out_cl)
        out_cl += beta.data - mean * scale_vec
    out_data = out_cl.transpose(0, 3, 1, 2)

    def backward(grad_out: np.ndarray) -> None:
        g_cl = grad_out.transpose(0, 2, 3, 1)
        g_rows = _as_rows(g_cl, ws)
        sum_g = _channel_sum(g_rows)
        if beta.requires_grad:
            beta.accumulate_grad(sum_g, owned=True)
        if training:
            tmp = _acquire(ws, (n, h, w, c))
            np.multiply(g_rows.reshape(n, h, w, c), xc, out=tmp)
            sum_gxc = _channel_sum(tmp.reshape(m, c))
            if gamma.requires_grad:
                gamma.accumulate_grad(inv_std * sum_gxc, owned=True)
            if x.requires_grad:
                # grad_x = (gamma*inv) * (g - mean(g) - xc*inv^2*mean(g*xc))
                s3 = (inv_std * inv_std) * (sum_gxc / np.float32(m))
                np.multiply(xc, s3, out=tmp)
                dx = _acquire(ws, (n, h, w, c))
                np.subtract(g_cl, sum_g / np.float32(m), out=dx)
                dx -= tmp
                dx *= gamma.data * inv_std
                if x.grad is None:
                    x.grad = dx.transpose(0, 3, 1, 2)
                else:
                    x.grad.transpose(0, 2, 3, 1)[...] += dx
                    _release(ws, dx)
            _release(ws, tmp)
        else:
            if gamma.requires_grad:
                tmp = _acquire(ws, (n, h, w, c))
                np.subtract(x_cl, mean, out=tmp)
                np.multiply(tmp, g_cl, out=tmp)
                gamma.accumulate_grad(
                    inv_std * _channel_sum(tmp.reshape(m, c)), owned=True)
                _release(ws, tmp)
            if x.requires_grad:
                scale_vec = gamma.data * inv_std
                gbuf = _acquire(ws, (n, h, w, c))
                np.multiply(g_cl, scale_vec, out=gbuf)
                if x.grad is None:
                    x.grad = gbuf.transpose(0, 3, 1, 2)
                else:
                    x.grad.transpose(0, 2, 3, 1)[...] += gbuf
                    _release(ws, gbuf)

    return Tensor.make_from_op(out_data, (x, gamma, beta), backward)


def relu(x: Tensor, workspace: Optional[Workspace] = None) -> Tensor:
    """ReLU; with a workspace, forward/backward run through reused buffers."""
    if workspace is None or _BACKEND == "reference":
        return x.relu()
    out_data = acquire_like(workspace, x.data)
    np.maximum(x.data, 0, out=out_data)

    def backward(grad_out: np.ndarray) -> None:
        mask = acquire_like(workspace, x.data, dtype=bool)
        np.greater(out_data, 0, out=mask)
        if x.grad is None:
            g = acquire_like(workspace, x.data)
            np.multiply(grad_out, mask, out=g)
            x.grad = g
        else:
            # grad_out is dead after this backward; mask it in place.
            np.multiply(grad_out, mask, out=grad_out)
            x.grad += grad_out

    return Tensor.make_from_op(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad_out: np.ndarray) -> None:
        dot = (grad_out * out_data).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out_data * (grad_out - dot), owned=True)

    return Tensor.make_from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    probs = np.exp(out_data)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out - probs * grad_out.sum(axis=axis, keepdims=True),
                          owned=True)

    return Tensor.make_from_op(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), targets]
    if reduction == "mean":
        out_data = -picked.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad_out: np.ndarray) -> None:
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), targets] = -scale
        log_probs.accumulate_grad(grad * grad_out, owned=True)

    return Tensor.make_from_op(np.asarray(out_data, dtype=np.float32),
                               (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy over integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - (target if isinstance(target, Tensor) else Tensor(target))
    return (diff * diff).mean()


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at inference time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out * mask, owned=True)

    return Tensor.make_from_op(x.data * mask, (x,), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero padding of the two trailing spatial dimensions."""
    if padding == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                               (padding, padding)), mode="constant")

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out[:, :, padding:-padding, padding:-padding])

    return Tensor.make_from_op(out_data, (x,), backward)
