"""Neural-network primitives (forward + backward) on top of :class:`Tensor`.

These functions implement the heavier operations needed by convolutional
networks — im2col-based 2-D convolution, pooling, batch normalisation,
softmax / cross-entropy — each with an explicit, vectorised backward pass
registered through :meth:`repro.nn.tensor.Tensor.make_from_op`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "pad2d",
    "im2col",
    "col2im",
]


# ---------------------------------------------------------------------------
# im2col / col2im helpers
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel_size: Tuple[int, int], stride: int,
           padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns an array of shape (N, C * kh * kw, out_h * out_w).
    """
    n, c, h, w = x.shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        # 1x1 kernels need no patch extraction; a (strided) view suffices.
        return x[:, :, ::stride, ::stride].reshape(n, c, out_h * out_w)

    # Padding is fused into the slice bounds (the zero border is written
    # directly into `cols`) so the padded copy of `x` is never materialised.
    cols = (np.zeros((n, c, kh, kw, out_h, out_w), dtype=x.dtype) if padding
            else np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype))
    for i in range(kh):
        for j in range(kw):
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            cols[(slice(None), slice(None), i, j) + dst] = \
                x[(slice(None), slice(None)) + src]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def _clipped_window(in_size, out_size, offset, stride):
    """Slices mapping output positions to in-bounds input positions.

    For kernel offset ``o``, output index ``t`` reads input ``o + stride*t``;
    returns ``(src, dst)`` slice tuples restricted to ``0 <= o + stride*t <
    in_size`` per axis, or ``(None, None)`` when no position is in bounds.
    """
    src = []
    dst = []
    for size, out, o in zip(in_size, out_size, offset):
        t_lo = (-o + stride - 1) // stride if o < 0 else 0  # ceil(-o/stride)
        t_hi = min(out - 1, (size - 1 - o) // stride)
        if t_hi < t_lo:
            return None, None
        src.append(slice(o + stride * t_lo, o + stride * t_hi + 1, stride))
        dst.append(slice(t_lo, t_hi + 1))
    return tuple(src), tuple(dst)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kernel_size: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches."""
    n, c, h, w = x_shape
    kh, kw = kernel_size
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    if kh == 1 and kw == 1 and padding == 0:
        x = np.zeros((n, c, h, w), dtype=cols.dtype)
        x[:, :, ::stride, ::stride] = cols.reshape(n, c, out_h, out_w)
        return x

    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros((n, c, h, w), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            # Contributions that landed in the padding border are dropped, so
            # only in-bounds windows are accumulated (no padded temporary).
            src, dst = _clipped_window((h, w), (out_h, out_w),
                                       (i - padding, j - padding), stride)
            if src is None:
                continue
            x[(slice(None), slice(None)) + src] += \
                cols[(slice(None), slice(None), i, j) + dst]
    return x


# ---------------------------------------------------------------------------
# Linear and convolution
# ---------------------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` with weight shape (out, in)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) via im2col.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)          # (N, C*kh*kw, L)
    w_mat = weight.data.reshape(c_out, -1)                    # (C_out, C*kh*kw)
    out_data = np.matmul(w_mat, cols)                         # (N, C_out, L)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad_out: np.ndarray) -> None:
        grad_flat = grad_out.reshape(n, c_out, -1)            # (N, C_out, L)
        if weight.requires_grad:
            grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad_out.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.matmul(w_mat.T, grad_flat)
            grad_x = col2im(grad_cols, (n, c_in, h, w), (kh, kw), stride, padding)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, parents, backward)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square window."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)                                   # (N*C, k*k, L)
    argmax = cols.argmax(axis=1)                               # (N*C, L)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad_out: np.ndarray) -> None:
        grad_cols = np.zeros_like(cols)
        flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square window."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel_size, stride, 0)
    out_w = _conv_output_size(w, kernel_size, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size),
                  stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad_out: np.ndarray) -> None:
        flat = grad_out.reshape(n * c, 1, -1) / window
        grad_cols = np.broadcast_to(flat, cols.shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w),
                        (kernel_size, kernel_size), stride, 0)
        x.accumulate_grad(grad_x.reshape(n, c, h, w))

    return Tensor.make_from_op(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only whole-divisor output sizes are supported."""
    _, _, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError("input spatial size must be divisible by output_size")
    kernel = h // output_size
    return avg_pool2d(x, kernel_size=kernel, stride=kernel)


# ---------------------------------------------------------------------------
# Normalisation and activations
# ---------------------------------------------------------------------------

def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, C, H, W) or (N, C) inputs.

    During training the batch statistics are used and ``running_mean`` /
    ``running_var`` are updated in place (exponential moving average).
    """
    is_conv = x.ndim == 4
    axes = (0, 2, 3) if is_conv else (0,)
    shape = (1, -1, 1, 1) if is_conv else (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size / x.data.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(grad_out: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta.accumulate_grad(grad_out.sum(axis=axes))
        if x.requires_grad:
            g = gamma.data.reshape(shape)
            if training:
                m = x.data.size / x.data.shape[1]
                dxhat = grad_out * g
                term1 = dxhat
                term2 = dxhat.mean(axis=axes, keepdims=True)
                term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
                grad_x = (term1 - term2 - term3) * inv_std.reshape(shape)
                del m
            else:
                grad_x = grad_out * g * inv_std.reshape(shape)
            x.accumulate_grad(grad_x)

    return Tensor.make_from_op(out_data, (x, gamma, beta), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad_out: np.ndarray) -> None:
        dot = (grad_out * out_data).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out_data * (grad_out - dot))

    return Tensor.make_from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    probs = np.exp(out_data)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out - probs * grad_out.sum(axis=axis, keepdims=True))

    return Tensor.make_from_op(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), targets]
    if reduction == "mean":
        out_data = -picked.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad_out: np.ndarray) -> None:
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), targets] = -scale
        log_probs.accumulate_grad(grad * grad_out)

    return Tensor.make_from_op(np.asarray(out_data, dtype=np.float32),
                               (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy over integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - (target if isinstance(target, Tensor) else Tensor(target))
    return (diff * diff).mean()


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at inference time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out * mask)

    return Tensor.make_from_op(x.data * mask, (x,), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero padding of the two trailing spatial dimensions."""
    if padding == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                               (padding, padding)), mode="constant")

    def backward(grad_out: np.ndarray) -> None:
        x.accumulate_grad(grad_out[:, :, padding:-padding, padding:-padding])

    return Tensor.make_from_op(out_data, (x,), backward)
