"""Lazy compiler + loader for the native direct-convolution kernels.

The kernels live in ``conv.c`` next to this module and are compiled into a
shared library the first time the ``native`` backend is requested — there is
no build step at install time and no dependency beyond a working C compiler
(``cc``/``gcc``/``clang``, or ``$CC``).  Compiled libraries are cached under
``~/.cache/repro/native`` (``REPRO_NN_NATIVE_CACHE_DIR``) keyed by a digest
of the source, the compile flags and the interpreter ABI, so a source edit
or flag change recompiles and an unchanged tree reuses the cached ``.so``
across processes.  Writes are atomic (temp file + ``os.replace``), so
concurrent first builds cannot observe a torn library.

When no compiler is present (or the build fails) :func:`load` raises
:class:`NativeBuildError`; the backend dispatch in
:mod:`repro.nn.functional` catches it and degrades to the ``fast`` backend
with a single warning.  ``python -m repro.nn.native.build`` pre-builds the
library explicitly (used by CI and deployment images).

``REPRO_NN_NATIVE_SANITIZE=address,undefined`` compiles the kernels under
ASan/UBSan (cache-keyed separately, UBSan findings fatal); the CI
``sanitize`` leg runs the native parity suites that way.  Address-sanitized
libraries additionally need the ASan runtime preloaded into the
interpreter — :func:`load` checks and degrades cleanly instead of letting
the runtime abort the process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import List, Optional

from ... import config

__all__ = ["NativeBuildError", "compiler_command", "library_path", "build",
           "load"]

#: Bumped together with REPRO_NATIVE_ABI in conv.c whenever an exported
#: signature changes; part of the cache key and verified after load.
ABI_VERSION = 2

#: Digest of the canonical exported-prototype signatures in conv.c
#: (including const-ness, which the ctypes layer cannot express), as
#: computed by :func:`repro.analysis.abi.signature_digest`.  The ABI
#: cross-checker fails when conv.c's prototypes drift away from this
#: value: changing an exported signature requires bumping
#: :data:`ABI_VERSION` and refreshing this digest
#: (``python -m repro.analysis --abi-digest`` prints the current one).
ABI_SIGNATURE_DIGEST = "fbaeba012c787823"

_SOURCE = Path(__file__).with_name("conv.c")

#: Flag sets tried in order: -march=native gives the vectoriser the real
#: ISA; some toolchains (cross compilers, old clang on arm) reject it, so a
#: portable fallback follows.
_FLAG_SETS = (
    ["-O3", "-march=native", "-funroll-loops"],
    ["-O3", "-funroll-loops"],
)
_COMMON_FLAGS = ["-std=c99", "-fPIC", "-shared", "-pthread"]

#: Extra flags per sanitizer (REPRO_NN_NATIVE_SANITIZE).  UBSan findings
#: are made fatal — a CI leg that merely *prints* "runtime error:" while
#: every test passes gates nothing.
_SANITIZER_FLAGS = {
    "address": ["-fsanitize=address"],
    "undefined": ["-fsanitize=undefined", "-fno-sanitize-recover=undefined"],
}
_SANITIZER_COMMON = ["-g", "-fno-omit-frame-pointer"]


def sanitize_flags() -> List[str]:
    """Compile flags implied by ``REPRO_NN_NATIVE_SANITIZE`` (may be empty)."""
    sanitizers = config.nn_native_sanitize()
    if not sanitizers:
        return []
    flags: List[str] = []
    for name in sanitizers:
        flags.extend(_SANITIZER_FLAGS[name])
    return flags + _SANITIZER_COMMON


def flag_sets() -> List[List[str]]:
    """The candidate flag sets for this process, sanitizers included.

    Sanitizer flags participate in :func:`_cache_tag` exactly like any
    other flag, so instrumented and production builds occupy disjoint
    cache slots and flipping the knob can never serve a stale library.
    """
    extra = sanitize_flags()
    return [list(flags) + extra for flags in _FLAG_SETS]


class NativeBuildError(RuntimeError):
    """Raised when the native kernels cannot be compiled or loaded."""


def compiler_command() -> Optional[List[str]]:
    """The C compiler invocation prefix, or ``None`` when there is none.

    ``$CC`` (split on whitespace) wins when set — and is trusted as-is, so
    pointing it at a non-existent binary is the supported way to mask the
    compiler (the no-compiler CI leg does exactly that).  Otherwise the
    first of ``cc``/``gcc``/``clang`` on ``PATH`` is used.
    """
    cc = config.cc_override()
    if cc:
        return cc.split()
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return [found]
    return None


def _cpu_identity() -> str:
    """A token identifying this CPU's ISA feature set (best effort).

    Part of the cache key for ``-march=native`` builds: a library compiled
    on an AVX-512 host and later found in a *shared* cache (NFS home,
    container image) by an AVX2-only machine would otherwise load fine and
    then die with SIGILL inside the first kernel call.
    """
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if line.startswith(("flags", "Features")):       # x86 / arm
                return hashlib.sha256(line.encode()).hexdigest()[:12]
    except OSError:
        pass
    return platform.processor() or "generic"


def _cache_tag(flags: List[str]) -> str:
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(" ".join(flags).encode())
    digest.update(f"abi{ABI_VERSION}".encode())
    digest.update(platform.machine().encode())
    digest.update((sysconfig.get_config_var("SOABI") or "").encode())
    if "-march=native" in flags:
        # Host-tuned builds are only valid on CPUs with the same features;
        # portable builds stay shareable across machines.
        digest.update(_cpu_identity().encode())
    return digest.hexdigest()[:16]


def library_path(flags: Optional[List[str]] = None) -> Path:
    """Cache location of the compiled library for ``flags`` (default set)."""
    flags = flag_sets()[0] if flags is None else flags
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    return config.nn_native_cache_dir() / f"reproconv-{_cache_tag(flags)}{suffix}"


def build(verbose: bool = False) -> Path:
    """Compile ``conv.c`` (if not already cached) and return the library path.

    Raises :class:`NativeBuildError` when no compiler is available or every
    flag set fails.
    """
    candidates = flag_sets()
    # Probe every flag set's cache slot first: a toolchain that rejects
    # -march=native would otherwise re-run that doomed compile in every new
    # process before reaching its cached portable build.
    for flags in candidates:
        target = library_path(flags)
        if target.exists():
            return target

    command = compiler_command()
    if command is None:
        raise NativeBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang); the native "
            "backend needs one to build repro/nn/native/conv.c")

    errors = []
    for flags in candidates:
        target = library_path(flags)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=target.suffix)
        os.close(fd)
        argv = (command + _COMMON_FLAGS + list(flags)
                + [str(_SOURCE), "-o", tmp, "-lm"])
        if verbose:
            print("+", " ".join(argv))
        try:
            result = subprocess.run(argv, capture_output=True, text=True,
                                    timeout=120)
        except (OSError, subprocess.SubprocessError) as error:
            os.unlink(tmp)
            errors.append(f"{' '.join(command)}: {error}")
            continue
        if result.returncode != 0:
            os.unlink(tmp)
            errors.append(result.stderr.strip() or
                          f"exit status {result.returncode}")
            continue
        os.replace(tmp, target)         # atomic: concurrent builders are safe
        return target
    raise NativeBuildError(
        "compiling repro/nn/native/conv.c failed:\n" + "\n".join(errors))


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    f32p = ctypes.POINTER(ctypes.c_float)
    c_int, c_long, c_float = ctypes.c_int, ctypes.c_long, ctypes.c_float

    lib.repro_native_abi.restype = c_int
    lib.repro_native_abi.argtypes = []

    lib.repro_conv2d_nhwc_f32.restype = None
    lib.repro_conv2d_nhwc_f32.argtypes = [
        f32p, f32p, f32p, f32p, c_long,
        c_int, c_int, c_int,            # hp, wp, c_in
        c_int, c_int, c_int,            # kh, kw, stride
        c_int, c_int, c_int, c_int,     # oh, ow, c_out, c_out_pad
        c_int, c_int, c_int,            # relu, accumulate, threads
    ]

    lib.repro_conv2d_wgrad_nhwc_f32.restype = None
    lib.repro_conv2d_wgrad_nhwc_f32.argtypes = [
        f32p, f32p, f32p, c_long,
        c_int, c_int, c_int,            # hp, wp, c_in
        c_int, c_int, c_int,            # kh, kw, stride
        c_int, c_int, c_int,            # oh, ow, c_out
    ]

    lib.repro_pad_quantize_nhwc_f32.restype = None
    lib.repro_pad_quantize_nhwc_f32.argtypes = [
        f32p, f32p, c_long,
        c_int, c_int, c_int, c_int,     # h, w, c, padding
        c_int, c_float, c_float, c_float,  # quantize, scale, qmin, qmax
        c_int,                          # threads
    ]
    return lib


def load() -> ctypes.CDLL:
    """Build (when needed) and load the kernel library, with bound argtypes."""
    if "address" in config.nn_native_sanitize() \
            and "asan" not in config.ld_preload():
        # dlopen-ing an ASan-instrumented library into an uninstrumented
        # interpreter makes the runtime abort() the whole process ("runtime
        # does not come first in initial library list").  Turn that state
        # into an ordinary build error so the backend degrades to `fast`
        # with the usual single warning instead of killing the caller.
        raise NativeBuildError(
            "REPRO_NN_NATIVE_SANITIZE includes 'address' but LD_PRELOAD "
            "does not name an ASan runtime; run under LD_PRELOAD=\"$(cc "
            "-print-file-name=libasan.so)\" ASAN_OPTIONS=detect_leaks=0")
    path = build()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as error:
        raise NativeBuildError(f"loading {path} failed: {error}") from error
    lib = _bind(lib)
    abi = lib.repro_native_abi()
    if abi != ABI_VERSION:
        raise NativeBuildError(
            f"{path} reports ABI {abi}, expected {ABI_VERSION}; remove the "
            f"cache directory {path.parent} and rebuild")
    return lib


if __name__ == "__main__":
    path = build(verbose=True)
    print(f"native kernels ready: {path}")
