"""``repro.nn.native`` — compiled NHWC direct-convolution backend.

Python-facing wrappers over the C kernels in ``conv.c`` (see
:mod:`repro.nn.native.build` for the lazy compile-and-cache machinery).
The wrappers validate dtype/contiguity, resolve the ``REPRO_NN_THREADS``
knob and hand raw pointers to the library; all layout/shape policy stays in
:mod:`repro.nn.functional`, which is the only intended caller.

State model: :func:`ensure_loaded` attempts the build once per process and
memoises the outcome.  On failure it records the error, and the functional
dispatch layer degrades the ``native`` backend request to ``fast`` with a
single warning — importing this package never raises and never compiles.
"""

from __future__ import annotations

import ctypes
import weakref
from typing import Optional, Tuple

import numpy as np

from ... import config
from .build import NativeBuildError, load

__all__ = ["LANES", "available", "ensure_loaded", "load_error", "reset",
           "pad_pack", "conv2d_forward", "conv2d_wgrad",
           "pad_quantize_stage"]

#: c_out vector-lane width of the microkernel (NR in conv.c); weight packs
#: handed to :func:`conv2d_forward` must have a row stride that is a
#: multiple of this (see :func:`pad_pack`).
LANES = 8

_LIB: Optional[ctypes.CDLL] = None
_LOAD_ERROR: Optional[str] = None
_ATTEMPTED = False

_F32P = ctypes.POINTER(ctypes.c_float)


def ensure_loaded() -> bool:
    """Build/load the kernels once; returns True when they are callable."""
    global _LIB, _LOAD_ERROR, _ATTEMPTED
    if not _ATTEMPTED:
        _ATTEMPTED = True
        try:
            _LIB = load()
        except NativeBuildError as error:
            _LOAD_ERROR = str(error)
    return _LIB is not None


def available() -> bool:
    """Whether the native kernels are loaded (building them if needed)."""
    return ensure_loaded()


def load_error() -> Optional[str]:
    """The recorded build/load failure, or None."""
    return _LOAD_ERROR


def reset() -> None:
    """Forget the memoised load attempt (tests re-drive the failure path)."""
    global _LIB, _LOAD_ERROR, _ATTEMPTED
    _LIB = None
    _LOAD_ERROR = None
    _ATTEMPTED = False


def _lib() -> ctypes.CDLL:
    if not ensure_loaded():
        raise NativeBuildError(_LOAD_ERROR or "native kernels unavailable")
    return _LIB


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(_F32P)


def _check(arr: np.ndarray, name: str) -> np.ndarray:
    if arr.dtype != np.float32:
        raise TypeError(f"{name} must be float32, got {arr.dtype}")
    if not arr.flags["C_CONTIGUOUS"]:
        raise ValueError(f"{name} must be C-contiguous")
    return arr


#: Padded-pack memo for non-lane-aligned widths: id(source) -> (weakref to
#: the source array, padded pack).  The weakref check makes id reuse safe
#: (a dead referent can never be mistaken for the new array at the same
#: address), and packs are invalidated naturally because the callers'
#: per-(weight version) caches hand pad_pack a *new* source array whenever
#: weights change.
_PAD_PACK_CACHE: dict = {}


def pad_pack(gemm_weight: np.ndarray) -> np.ndarray:
    """Zero-pad a (K, C_out) GEMM pack's rows to a multiple of LANES.

    Returns the input untouched when it is already lane-aligned and
    C-contiguous (the common case: every production width is a multiple of
    8), so the callers' per-(weight version) pack caches are shared with the
    BLAS path at zero cost.  Odd widths are padded once per source array
    (memoised), not once per conv call — this sits on every native forward
    and backward.
    """
    k, c_out = gemm_weight.shape
    if c_out % LANES == 0 and gemm_weight.flags["C_CONTIGUOUS"] \
            and gemm_weight.dtype == np.float32:
        return gemm_weight
    key = id(gemm_weight)
    cached = _PAD_PACK_CACHE.get(key)
    if cached is not None and cached[0]() is gemm_weight:
        return cached[1]
    from ..workspace import aligned_empty
    c_pad = -(-c_out // LANES) * LANES
    padded = aligned_empty((k, c_pad))
    padded[:, c_out:] = 0.0
    padded[:, :c_out] = gemm_weight
    if len(_PAD_PACK_CACHE) > 256:
        _PAD_PACK_CACHE.clear()
    try:
        _PAD_PACK_CACHE[key] = (weakref.ref(gemm_weight), padded)
    except TypeError:
        pass        # non-weakref-able source (e.g. a view): skip the memo
    return padded


def conv2d_forward(xp: np.ndarray, packed_weight: np.ndarray,
                   bias: Optional[np.ndarray], out: np.ndarray,
                   kernel: Tuple[int, int], stride: int,
                   relu: bool = False, accumulate: bool = False,
                   threads: Optional[int] = None) -> np.ndarray:
    """Direct convolution of a padded NHWC input into ``out``.

    ``xp``: (N, HP, WP, C_in) already-padded input; ``packed_weight``: the
    (kh*kw*C_in, C_out) forward pack of :func:`repro.nn.functional.
    pack_gemm_weights` run through :func:`pad_pack`; ``out``: (N, OH, OW,
    C_out).  The same entry point serves the transposed-convolution input
    gradient (flipped pack, stride 1, ``accumulate=True`` to add into an
    existing gradient).
    """
    kh, kw = kernel
    n, hp, wp, c_in = xp.shape
    n_o, oh, ow, c_out = out.shape
    c_out_pad = packed_weight.shape[1]
    if n_o != n:
        raise ValueError(f"batch mismatch: input {n}, output {n_o}")
    if (packed_weight.shape[0] != kh * kw * c_in or c_out_pad < c_out
            or c_out_pad % LANES):
        raise ValueError(
            f"weight pack shape {packed_weight.shape} incompatible with "
            f"K={kh * kw * c_in}, C_out={c_out} (pad_pack required)")
    _check(xp, "xp"); _check(packed_weight, "packed_weight")
    _check(out, "out")
    bias_ptr = None
    if bias is not None:
        bias_ptr = _ptr(_check(np.ascontiguousarray(bias, dtype=np.float32),
                               "bias"))
    _lib().repro_conv2d_nhwc_f32(
        _ptr(xp), _ptr(packed_weight), bias_ptr, _ptr(out), n,
        hp, wp, c_in, kh, kw, stride, oh, ow, c_out, c_out_pad,
        int(bool(relu)), int(bool(accumulate)),
        config.nn_threads() if threads is None else int(threads))
    return out


def conv2d_wgrad(xp: np.ndarray, grad_out: np.ndarray, dw: np.ndarray,
                 kernel: Tuple[int, int], stride: int) -> np.ndarray:
    """Weight gradient in forward-pack layout (kh*kw*C_in, C_out).

    ``grad_out``: (N, OH, OW, C_out) contiguous output gradient.  The caller
    reshapes ``dw`` back to (C_out, C_in, kh, kw).
    """
    kh, kw = kernel
    n, hp, wp, c_in = xp.shape
    n_g, oh, ow, c_out = grad_out.shape
    if n_g != n:
        raise ValueError(f"batch mismatch: input {n}, grad {n_g}")
    if dw.shape != (kh * kw * c_in, c_out):
        raise ValueError(f"dw shape {dw.shape} != {(kh * kw * c_in, c_out)}")
    _check(xp, "xp"); _check(grad_out, "grad_out"); _check(dw, "dw")
    _lib().repro_conv2d_wgrad_nhwc_f32(
        _ptr(xp), _ptr(grad_out), _ptr(dw), n,
        hp, wp, c_in, kh, kw, stride, oh, ow, c_out)
    return dw


def pad_quantize_stage(src: np.ndarray, dst: np.ndarray, padding: int,
                       quant: Optional[Tuple[float, int, int]] = None,
                       threads: Optional[int] = None) -> np.ndarray:
    """Zero-pad ``src`` into ``dst``, optionally fake-quantising in the same
    pass (the compiled-plan epilogue's input-side leg).

    ``src``: (N, H, W, C) contiguous; ``dst``: (N, H+2p, W+2p, C).
    ``quant`` is ``(scale, qmin, qmax)`` of the symmetric linear quantizer;
    the elementwise sequence is bit-identical to ``quantize_data_into``.
    """
    n, h, w, c = src.shape
    if dst.shape != (n, h + 2 * padding, w + 2 * padding, c):
        raise ValueError(f"dst shape {dst.shape} != "
                         f"{(n, h + 2 * padding, w + 2 * padding, c)}")
    _check(src, "src"); _check(dst, "dst")
    if quant is None:
        scale, qmin, qmax = 1.0, 0.0, 0.0
    else:
        scale, qmin, qmax = quant
    _lib().repro_pad_quantize_nhwc_f32(
        _ptr(src), _ptr(dst), n, h, w, c, padding,
        int(quant is not None), float(scale), float(qmin), float(qmax),
        config.nn_threads() if threads is None else int(threads))
    return dst
