/* Native NHWC direct-convolution kernels for the repro.nn compute core.
 *
 * The fast (NumPy) backend computes every convolution as an as_strided
 * window gather followed by one BLAS GEMM.  The gather materialises im2col
 * columns — a kh*kw-fold bandwidth expansion (9x for 3x3 kernels) that is
 * measured memory-bandwidth-bound at bench widths.  These kernels compute
 * the output straight from the padded NHWC input, cache tile by cache tile,
 * with a register-blocked microkernel over (output-pixel tile x c_out tile):
 * the input is read once per kernel tap out of cache-resident rows and no
 * column buffer ever exists.
 *
 * Weight layout: the (kh*kw*c_in, c_out) forward pack produced by
 * repro.nn.functional.pack_gemm_weights, with rows zero-padded to a
 * multiple of NR lanes (`c_out_pad` is the row stride) — so the microkernel
 * always runs full constant-width vector lanes and the compiler keeps the
 * whole MR x NR accumulator tile in registers.  Row (i*kw + j)*c_in + ci
 * holds the filter values of input channel ci at kernel tap (i, j).  The
 * transposed-convolution input gradient routes the spatially-flipped
 * (kh*kw*c_out, c_in) pack through the same kernel.
 *
 * Every output pixel is accumulated in the same (i, j, ci) order as the
 * GEMM's reduction axis, by exactly one thread, so results are independent
 * of the thread count and differ from the BLAS path only by ULP-level
 * reduction-order effects inside a dot product.
 *
 * Threading: forward and input-gradient calls split output rows over
 * `threads` pthreads (REPRO_NN_THREADS).  The weight gradient accumulates
 * into one shared (small, cache-resident) buffer and runs single-threaded
 * to keep its reduction order fixed.
 */

#include <math.h>
#include <pthread.h>
#include <stddef.h>
#include <string.h>

/* Bumped whenever an exported signature changes; checked by the loader so a
 * stale cached .so can never be called with mismatched arguments. */
#define REPRO_NATIVE_ABI 2

int repro_native_abi(void) { return REPRO_NATIVE_ABI; }

/* Output-pixel tile (MR) x c_out lane tile (NR) of the microkernel: the
 * MR * NR = 32-float accumulator block lives in 4 YMM (or 2 ZMM)
 * registers, with one weight vector and four broadcasts in flight. */
#define MR 4
#define NR 8

typedef struct {
    const float *xp;      /* (N, HP, WP, C_in) padded input, C-contiguous  */
    const float *w;       /* (KH*KW*C_in, c_out_pad) padded forward pack   */
    const float *bias;    /* (C_out,) or NULL                              */
    float *out;           /* (N, OH, OW, C_out)                            */
    int hp, wp, c_in, kh, kw, stride, oh, ow, c_out, c_out_pad;
    int relu, accumulate;
    long row0, row1;      /* [row0, row1) over flattened (n, oh) rows      */
} conv_job;

/* Store one accumulator row into the (exact, unpadded) output. */
static inline void store_lanes(const conv_job *job, float *o, const float *a,
                               const float *bias, int nb)
{
    for (int r = 0; r < nb; ++r) {
        float v = a[r];
        if (bias != NULL)
            v += bias[r];
        if (job->relu && v < 0.0f)
            v = 0.0f;
        if (job->accumulate)
            o[r] += v;
        else
            o[r] = v;
    }
}

/* GCC/Clang vector extensions give the microkernel guaranteed NR-lane FMA
 * code (auto-vectorisation of the same loops is unreliable: gcc 12 emits
 * mostly scalar fmadd231ss for the multi-accumulator pattern).  The
 * aligned(4) typedef makes every load/store an unaligned instruction, so
 * the packed weight rows need no alignment guarantee. */
#if defined(__GNUC__) || defined(__clang__)
typedef float vnr __attribute__((vector_size(NR * 4), aligned(4),
                                 may_alias));
#define HAVE_VNR 1

static inline vnr splat(float x)
{
    return (vnr){x, x, x, x, x, x, x, x};
}

/* Double-width (16-lane) tile for wider c_out: on AVX-512 hardware each
 * accumulator row is a single zmm FMA, doubling the MAC rate per
 * instruction; on AVX2 it lowers to two ymm ops, costing nothing.  Used
 * whenever the padded width is a multiple of 2*NR. */
typedef float vnr2 __attribute__((vector_size(2 * NR * 4), aligned(4),
                                  may_alias));

static inline vnr2 splat2(float x)
{
    return (vnr2){x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}
#endif

/* Full MR-pixel tile: fixed trip counts end to end so the NR-lane FMA loop
 * vectorises and the accumulators stay in registers. */
static void conv_tile_full(const conv_job *job, const float *xrow,
                           float *orow, int ow0, int co0)
{
    const int c_in = job->c_in, cop = job->c_out_pad;
    const int kw = job->kw;
    const size_t xs = (size_t)job->stride * c_in;
#ifdef HAVE_VNR
    vnr acc0 = splat(0.0f), acc1 = acc0, acc2 = acc0, acc3 = acc0;
#else
    float acc0[NR], acc1[NR], acc2[NR], acc3[NR];
    for (int r = 0; r < NR; ++r)
        acc0[r] = acc1[r] = acc2[r] = acc3[r] = 0.0f;
#endif

    for (int i = 0; i < job->kh; ++i) {
        const float *xr = xrow + (size_t)i * job->wp * c_in;
        const float *wr = job->w + (size_t)i * kw * c_in * cop + co0;
        for (int j = 0; j < kw; ++j) {
            const float *x0 = xr + (size_t)ow0 * xs + (size_t)j * c_in;
            const float *wt = wr + (size_t)j * c_in * cop;
            for (int ci = 0; ci < c_in; ++ci) {
#ifdef HAVE_VNR
                const vnr wv = *(const vnr *)(wt + (size_t)ci * cop);
                acc0 += splat(x0[ci]) * wv;
                acc1 += splat(x0[xs + ci]) * wv;
                acc2 += splat(x0[2 * xs + ci]) * wv;
                acc3 += splat(x0[3 * xs + ci]) * wv;
#else
                const float *wv = wt + (size_t)ci * cop;
                const float a0 = x0[ci];
                const float a1 = x0[xs + ci];
                const float a2 = x0[2 * xs + ci];
                const float a3 = x0[3 * xs + ci];
                for (int r = 0; r < NR; ++r) {
                    acc0[r] += a0 * wv[r];
                    acc1[r] += a1 * wv[r];
                    acc2[r] += a2 * wv[r];
                    acc3[r] += a3 * wv[r];
                }
#endif
            }
        }
    }

    const int nb = job->c_out - co0 < NR ? job->c_out - co0 : NR;
    const float *bias = job->bias == NULL ? NULL : job->bias + co0;
    float *o = orow + (size_t)ow0 * job->c_out + co0;
    store_lanes(job, o, (const float *)&acc0, bias, nb);
    store_lanes(job, o + job->c_out, (const float *)&acc1, bias, nb);
    store_lanes(job, o + 2 * (size_t)job->c_out, (const float *)&acc2, bias, nb);
    store_lanes(job, o + 3 * (size_t)job->c_out, (const float *)&acc3, bias, nb);
}

/* Row-edge tile: mb < MR output pixels (runtime bound on the pixel loop,
 * still fixed NR lanes inside). */
static void conv_tile_edge(const conv_job *job, const float *xrow,
                           float *orow, int ow0, int mb, int co0)
{
    const int c_in = job->c_in, cop = job->c_out_pad;
    const int kw = job->kw;
    const size_t xs = (size_t)job->stride * c_in;
#ifdef HAVE_VNR
    vnr acc[MR];
    for (int m = 0; m < mb; ++m)
        acc[m] = splat(0.0f);
#else
    float acc[MR][NR];
    for (int m = 0; m < mb; ++m)
        for (int r = 0; r < NR; ++r)
            acc[m][r] = 0.0f;
#endif

    for (int i = 0; i < job->kh; ++i) {
        const float *xr = xrow + (size_t)i * job->wp * c_in;
        const float *wr = job->w + (size_t)i * kw * c_in * cop + co0;
        for (int j = 0; j < kw; ++j) {
            const float *x0 = xr + (size_t)ow0 * xs + (size_t)j * c_in;
            const float *wt = wr + (size_t)j * c_in * cop;
            for (int ci = 0; ci < c_in; ++ci) {
#ifdef HAVE_VNR
                const vnr wv = *(const vnr *)(wt + (size_t)ci * cop);
                for (int m = 0; m < mb; ++m)
                    acc[m] += splat(x0[(size_t)m * xs + ci]) * wv;
#else
                const float *wv = wt + (size_t)ci * cop;
                for (int m = 0; m < mb; ++m) {
                    const float x = x0[(size_t)m * xs + ci];
                    float *a = acc[m];
                    for (int r = 0; r < NR; ++r)
                        a[r] += x * wv[r];
                }
#endif
            }
        }
    }

    const int nb = job->c_out - co0 < NR ? job->c_out - co0 : NR;
    const float *bias = job->bias == NULL ? NULL : job->bias + co0;
    for (int m = 0; m < mb; ++m)
        store_lanes(job, orow + (size_t)(ow0 + m) * job->c_out + co0,
                    (const float *)&acc[m], bias, nb);
}

#ifdef HAVE_VNR
/* 16-lane variant of the full tile (see conv_tile_full). */
static void conv_tile_full2(const conv_job *job, const float *xrow,
                            float *orow, int ow0, int co0)
{
    const int c_in = job->c_in, cop = job->c_out_pad;
    const int kw = job->kw;
    const size_t xs = (size_t)job->stride * c_in;
    vnr2 acc0 = splat2(0.0f), acc1 = acc0, acc2 = acc0, acc3 = acc0;

    for (int i = 0; i < job->kh; ++i) {
        const float *xr = xrow + (size_t)i * job->wp * c_in;
        const float *wr = job->w + (size_t)i * kw * c_in * cop + co0;
        for (int j = 0; j < kw; ++j) {
            const float *x0 = xr + (size_t)ow0 * xs + (size_t)j * c_in;
            const float *wt = wr + (size_t)j * c_in * cop;
            for (int ci = 0; ci < c_in; ++ci) {
                const vnr2 wv = *(const vnr2 *)(wt + (size_t)ci * cop);
                acc0 += splat2(x0[ci]) * wv;
                acc1 += splat2(x0[xs + ci]) * wv;
                acc2 += splat2(x0[2 * xs + ci]) * wv;
                acc3 += splat2(x0[3 * xs + ci]) * wv;
            }
        }
    }

    const int nb = job->c_out - co0 < 2 * NR ? job->c_out - co0 : 2 * NR;
    const float *bias = job->bias == NULL ? NULL : job->bias + co0;
    float *o = orow + (size_t)ow0 * job->c_out + co0;
    store_lanes(job, o, (const float *)&acc0, bias, nb);
    store_lanes(job, o + job->c_out, (const float *)&acc1, bias, nb);
    store_lanes(job, o + 2 * (size_t)job->c_out, (const float *)&acc2, bias, nb);
    store_lanes(job, o + 3 * (size_t)job->c_out, (const float *)&acc3, bias, nb);
}
#endif

static void *conv_worker(void *arg)
{
    const conv_job *job = (const conv_job *)arg;
    const int oh = job->oh, ow = job->ow, c_out = job->c_out;
    const int full = ow - ow % MR;
#ifdef HAVE_VNR
    const int wide = job->c_out_pad % (2 * NR) == 0;
#else
    const int wide = 0;
#endif

    for (long row = job->row0; row < job->row1; ++row) {
        const long n = row / oh;
        const long r = row % oh;
        const float *xrow = job->xp
            + ((size_t)n * job->hp + (size_t)r * job->stride)
              * job->wp * job->c_in;
        float *orow = job->out + ((size_t)n * oh + r) * ow * c_out;
#ifdef HAVE_VNR
        if (wide) {
            for (int co0 = 0; co0 < c_out; co0 += 2 * NR) {
                for (int ow0 = 0; ow0 < full; ow0 += MR)
                    conv_tile_full2(job, xrow, orow, ow0, co0);
                for (int ow0 = full; ow0 < ow; ow0 += MR) {
                    /* Edge pixels reuse the 8-lane tile twice. */
                    conv_tile_edge(job, xrow, orow, ow0, ow - ow0, co0);
                    conv_tile_edge(job, xrow, orow, ow0, ow - ow0, co0 + NR);
                }
            }
            continue;
        }
#endif
        for (int co0 = 0; co0 < c_out; co0 += NR) {
            for (int ow0 = 0; ow0 < full; ow0 += MR)
                conv_tile_full(job, xrow, orow, ow0, co0);
            if (full < ow)
                conv_tile_edge(job, xrow, orow, full, ow - full, co0);
        }
    }
    return NULL;
}

/* xp is the already-padded input; hp/wp are its padded spatial extents.
 * w rows are padded to c_out_pad lanes (a multiple of NR, zero-filled).
 * out must be distinct from xp.  accumulate=1 adds into out instead of
 * overwriting it (used by the input-gradient path). */
void repro_conv2d_nhwc_f32(const float *xp, const float *w, const float *bias,
                           float *out, long n, int hp, int wp, int c_in,
                           int kh, int kw, int stride, int oh, int ow,
                           int c_out, int c_out_pad, int relu, int accumulate,
                           int threads)
{
    const long rows = n * oh;
    if (rows <= 0)
        return;
    if (threads > rows)
        threads = (int)rows;
    if (threads < 1)
        threads = 1;

    conv_job jobs[64];
    pthread_t tids[64];
    if (threads > 64)
        threads = 64;

    const long chunk = (rows + threads - 1) / threads;
    int spawned = 0;
    for (int t = 0; t < threads; ++t) {
        conv_job *job = &jobs[t];
        job->xp = xp; job->w = w; job->bias = bias; job->out = out;
        job->hp = hp; job->wp = wp; job->c_in = c_in;
        job->kh = kh; job->kw = kw; job->stride = stride;
        job->oh = oh; job->ow = ow;
        job->c_out = c_out; job->c_out_pad = c_out_pad;
        job->relu = relu; job->accumulate = accumulate;
        job->row0 = t * chunk;
        job->row1 = (t + 1) * chunk < rows ? (t + 1) * chunk : rows;
        if (job->row0 >= job->row1)
            continue;
        if (t == threads - 1) {
            conv_worker(job);           /* last chunk on the calling thread */
        } else if (pthread_create(&tids[spawned], NULL, conv_worker, job)) {
            conv_worker(job);           /* spawn failed: run inline */
        } else {
            ++spawned;
        }
    }
    for (int t = 0; t < spawned; ++t)
        pthread_join(tids[t], NULL);
}

/* --------------------------------------------------------------------- */
/* Weight gradient                                                       */
/* --------------------------------------------------------------------- */

/* dw has the same (kh*kw*c_in, c_out) layout as the (unpadded) forward
 * pack; the caller transposes it back to (c_out, c_in, kh, kw).  Single-
 * threaded so the accumulation order over output pixels is fixed (dw is
 * kh*kw*c_in*c_out floats — cache-resident at any realistic width). */
void repro_conv2d_wgrad_nhwc_f32(const float *xp, const float *g, float *dw,
                                 long n, int hp, int wp, int c_in,
                                 int kh, int kw, int stride, int oh, int ow,
                                 int c_out)
{
    memset(dw, 0, sizeof(float) * (size_t)kh * kw * c_in * c_out);
#ifdef HAVE_VNR
    /* Lane-exact widths stream the (L1-resident) dw rows through vector
     * FMAs — one rank-1 update of dw per output pixel.  Reading the
     * gradient vector NR lanes at a time is only safe when c_out is a lane
     * multiple (no spill into the next pixel / past the buffer). */
    if (c_out % NR == 0) {
        const int ng = c_out / NR;
        const size_t xs = (size_t)stride * c_in;
        for (long b = 0; b < n; ++b) {
            const float *xb = xp + (size_t)b * hp * wp * c_in;
            const float *gb = g + (size_t)b * oh * ow * c_out;
            for (int r = 0; r < oh; ++r) {
                const float *xrow = xb + (size_t)r * stride * wp * c_in;
                const float *grow = gb + (size_t)r * ow * c_out;
                /* MR output pixels per dw sweep: each dw row load/store
                 * amortises MR FMAs, keeping the update compute-bound even
                 * when dw outgrows L1. */
                const int full = ow - ow % MR;
                for (int q = 0; q < full; q += MR) {
                    const float *xpix = xrow + (size_t)q * xs;
                    const float *gv = grow + (size_t)q * c_out;
                    for (int gbk = 0; gbk < ng; ++gbk) {
                        const vnr vg0 = *(const vnr *)(gv + gbk * NR);
                        const vnr vg1 = *(const vnr *)(gv + c_out + gbk * NR);
                        const vnr vg2 = *(const vnr *)(gv + 2 * c_out + gbk * NR);
                        const vnr vg3 = *(const vnr *)(gv + 3 * c_out + gbk * NR);
                        float *dwg = dw + (size_t)gbk * NR;
                        for (int i = 0; i < kh; ++i) {
                            const float *xr = xpix + (size_t)i * wp * c_in;
                            float *dwr = dwg + (size_t)i * kw * c_in * c_out;
                            for (int j = 0; j < kw; ++j) {
                                const float *xv = xr + (size_t)j * c_in;
                                float *dwt = dwr + (size_t)j * c_in * c_out;
                                for (int ci = 0; ci < c_in; ++ci) {
                                    vnr *d = (vnr *)(dwt + (size_t)ci * c_out);
                                    *d += splat(xv[ci]) * vg0
                                        + splat(xv[xs + ci]) * vg1
                                        + splat(xv[2 * xs + ci]) * vg2
                                        + splat(xv[3 * xs + ci]) * vg3;
                                }
                            }
                        }
                    }
                }
                for (int q = full; q < ow; ++q) {
                    const float *xpix = xrow + (size_t)q * xs;
                    const float *gv = grow + (size_t)q * c_out;
                    for (int gbk = 0; gbk < ng; ++gbk) {
                        const vnr vg = *(const vnr *)(gv + gbk * NR);
                        float *dwg = dw + (size_t)gbk * NR;
                        for (int i = 0; i < kh; ++i) {
                            const float *xr = xpix + (size_t)i * wp * c_in;
                            float *dwr = dwg + (size_t)i * kw * c_in * c_out;
                            for (int j = 0; j < kw; ++j) {
                                const float *xv = xr + (size_t)j * c_in;
                                float *dwt = dwr + (size_t)j * c_in * c_out;
                                for (int ci = 0; ci < c_in; ++ci) {
                                    vnr *d = (vnr *)(dwt + (size_t)ci * c_out);
                                    *d += splat(xv[ci]) * vg;
                                }
                            }
                        }
                    }
                }
            }
        }
        return;
    }
#endif
    for (long b = 0; b < n; ++b) {
        const float *xb = xp + (size_t)b * hp * wp * c_in;
        const float *gb = g + (size_t)b * oh * ow * c_out;
        for (int r = 0; r < oh; ++r) {
            const float *xrow = xb + (size_t)r * stride * wp * c_in;
            const float *grow = gb + (size_t)r * ow * c_out;
            for (int q = 0; q < ow; ++q) {
                const float *xpix = xrow + (size_t)q * stride * c_in;
                const float *gv = grow + (size_t)q * c_out;
                for (int i = 0; i < kh; ++i) {
                    const float *xr = xpix + (size_t)i * wp * c_in;
                    float *dwr = dw + (size_t)i * kw * c_in * c_out;
                    for (int j = 0; j < kw; ++j) {
                        const float *xv = xr + (size_t)j * c_in;
                        float *dwt = dwr + (size_t)j * c_in * c_out;
                        for (int ci = 0; ci < c_in; ++ci) {
                            const float x = xv[ci];
                            float *d = dwt + (size_t)ci * c_out;
                            for (int co = 0; co < c_out; ++co)
                                d[co] += x * gv[co];
                        }
                    }
                }
            }
        }
    }
}

/* --------------------------------------------------------------------- */
/* Fused pad + activation-fake-quantise staging                          */
/* --------------------------------------------------------------------- */

typedef struct {
    const float *src;     /* (N, H, W, C) C-contiguous                     */
    float *dst;           /* (N, H+2p, W+2p, C)                            */
    long n;
    int h, w, c, padding;
    int quantize;
    float scale, qmin, qmax;
    long b0, b1;
} stage_job;

static void *stage_worker(void *arg)
{
    const stage_job *job = (const stage_job *)arg;
    const int h = job->h, w = job->w, c = job->c, p = job->padding;
    const int hp = h + 2 * p, wp = w + 2 * p;
    const size_t row = (size_t)w * c, prow = (size_t)wp * c;
    const float scale = job->scale;
    const float qmin = job->qmin, qmax = job->qmax;

    for (long b = job->b0; b < job->b1; ++b) {
        const float *s = job->src + (size_t)b * h * row;
        float *d = job->dst + (size_t)b * hp * prow;
        if (p) {
            memset(d, 0, sizeof(float) * (size_t)p * prow);
            memset(d + (size_t)(hp - p) * prow, 0,
                   sizeof(float) * (size_t)p * prow);
        }
        for (int r = 0; r < h; ++r) {
            float *dr = d + (size_t)(r + p) * prow;
            const float *sr = s + (size_t)r * row;
            if (p) {
                memset(dr, 0, sizeof(float) * (size_t)p * c);
                memset(dr + prow - (size_t)p * c, 0,
                       sizeof(float) * (size_t)p * c);
            }
            float *di = dr + (size_t)p * c;
            if (!job->quantize) {
                memcpy(di, sr, sizeof(float) * row);
            } else {
                /* Identical op sequence to quantize_data_into (divide,
                 * rint, clip, multiply — a true divide, not a reciprocal
                 * multiply, so the rounding input is bit-identical);
                 * rintf matches np.rint's round-half-to-even under the
                 * default rounding mode. */
                for (size_t k = 0; k < row; ++k) {
                    float v = rintf(sr[k] / scale);
                    v = v < qmin ? qmin : (v > qmax ? qmax : v);
                    di[k] = v * scale;
                }
            }
        }
    }
    return NULL;
}

void repro_pad_quantize_nhwc_f32(const float *src, float *dst, long n,
                                 int h, int w, int c, int padding,
                                 int quantize, float scale, float qmin,
                                 float qmax, int threads)
{
    if (n <= 0)
        return;
    if (threads > n)
        threads = (int)n;
    if (threads < 1)
        threads = 1;
    stage_job jobs[64];
    pthread_t tids[64];
    if (threads > 64)
        threads = 64;

    const long chunk = (n + threads - 1) / threads;
    int spawned = 0;
    for (int t = 0; t < threads; ++t) {
        stage_job *job = &jobs[t];
        job->src = src; job->dst = dst; job->n = n;
        job->h = h; job->w = w; job->c = c; job->padding = padding;
        job->quantize = quantize; job->scale = scale;
        job->qmin = qmin; job->qmax = qmax;
        job->b0 = t * chunk;
        job->b1 = (t + 1) * chunk < n ? (t + 1) * chunk : n;
        if (job->b0 >= job->b1)
            continue;
        if (t == threads - 1) {
            stage_worker(job);
        } else if (pthread_create(&tids[spawned], NULL, stage_worker, job)) {
            stage_worker(job);
        } else {
            ++spawned;
        }
    }
    for (int t = 0; t < spawned; ++t)
        pthread_join(tids[t], NULL);
}
