"""Fig. 1 harness: transferability of adversarial attacks between precisions.

The paper's Fig. 1 shows four robust-accuracy heatmaps indexed by (attack
precision, inference precision): panels (a)-(c) for adversarially trained
models under different training/attack combinations, panel (d) for the same
model trained with RPS.  The key qualitative findings this harness checks:

* off-diagonal (transferred) attacks leave higher robust accuracy than
  diagonal (matched-precision) attacks, and
* RPS training enlarges that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks import CWInf, PGD
from ..core import TransferabilityResult, transferability_matrix
from ..quantization import PrecisionSet
from .common import DEFAULT_EPSILON, ExperimentBudget, load_experiment_dataset
from .robustness_tables import DEFAULT_PRECISION_SET, train_baseline, train_rps

__all__ = ["TransferabilityPanel", "run_transferability_study"]


@dataclass
class TransferabilityPanel:
    """One panel of Fig. 1."""

    label: str
    training: str
    attack: str
    rps_trained: bool
    result: TransferabilityResult

    def as_dict(self) -> Dict[str, object]:
        return {
            "panel": self.label,
            "training": self.training,
            "attack": self.attack,
            "rps_trained": self.rps_trained,
            "diagonal_mean (%)": 100.0 * self.result.diagonal_mean(),
            "off_diagonal_mean (%)": 100.0 * self.result.off_diagonal_mean(),
            "transfer_gap (pp)": 100.0 * self.result.transfer_gap(),
        }


def _make_attack(name: str, steps: int):
    if name == "pgd":
        return PGD(DEFAULT_EPSILON, steps=steps)
    if name == "cw":
        return CWInf(DEFAULT_EPSILON, steps=steps)
    raise ValueError(f"unknown attack {name!r}")


def run_transferability_study(dataset_name: str = "cifar10",
                              network: str = "preact_resnet18",
                              budget: Optional[ExperimentBudget] = None,
                              precisions: Optional[PrecisionSet] = None,
                              panels: Sequence[Dict[str, object]] = (
                                  {"label": "(a)", "training": "fgsm_rs",
                                   "attack": "pgd", "rps": False},
                                  {"label": "(c)", "training": "pgd",
                                   "attack": "pgd", "rps": False},
                                  {"label": "(d)", "training": "pgd",
                                   "attack": "pgd", "rps": True},
                              )) -> List[TransferabilityPanel]:
    """Regenerate the requested Fig. 1 panels.

    The default panel list covers the FGSM-RS panel, the PGD-7 panel and the
    PGD-7+RPS panel (panel (b) swaps the attack for CW-Inf and can be added
    by passing ``{"training": "pgd", "attack": "cw", "rps": False}``).
    """
    budget = budget or ExperimentBudget.quick()
    precisions = precisions or PrecisionSet(DEFAULT_PRECISION_SET.bit_widths[:3])
    dataset = load_experiment_dataset(dataset_name, budget)
    x_eval = dataset.x_test[:budget.eval_size]
    y_eval = dataset.y_test[:budget.eval_size]

    results: List[TransferabilityPanel] = []
    trained_cache: Dict[tuple, object] = {}
    for spec in panels:
        training = str(spec["training"])
        rps = bool(spec.get("rps", False))
        key = (training, rps)
        if key not in trained_cache:
            if rps:
                trained_cache[key] = train_rps(network, dataset, training,
                                               budget, DEFAULT_PRECISION_SET)
            else:
                trained_cache[key] = train_baseline(network, dataset, training,
                                                    budget)
        model = trained_cache[key]
        attack = _make_attack(str(spec["attack"]), budget.eval_attack_steps)
        matrix = transferability_matrix(model, attack, x_eval, y_eval, precisions)
        results.append(TransferabilityPanel(
            label=str(spec["label"]), training=training,
            attack=str(spec["attack"]), rps_trained=rps, result=matrix))
    return results
