"""Fig. 11 harness: instant robustness-efficiency trade-offs at run time."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..accelerator import TwoInOneAccelerator, network_layers
from ..accelerator.optimizer import OptimizerConfig
from ..attacks import PGD
from ..core import TradeoffController, TradeoffCurve
from ..quantization import PrecisionSet
from .common import DEFAULT_EPSILON, ExperimentBudget, load_experiment_dataset
from .robustness_tables import DEFAULT_PRECISION_SET, train_rps

__all__ = ["run_tradeoff_experiment", "tradeoff_rows"]


def run_tradeoff_experiment(dataset_name: str = "cifar10",
                            network: str = "wide_resnet32",
                            budget: Optional[ExperimentBudget] = None,
                            precision_set: PrecisionSet = DEFAULT_PRECISION_SET,
                            caps: Sequence[Optional[int]] = (None, 6, 5),
                            workload: str = "wide_resnet32",
                            workload_dataset: str = "cifar10") -> TradeoffCurve:
    """Train one RPS model and sweep its run-time operating points.

    The paper's Fig. 11 sweeps RPS 4~16 / 4~12 / 4~8-bit and static 4-bit on
    WideResNet-32 + CIFAR-10; with the laptop-scale candidate set (4~8-bit)
    the equivalent sweep caps the set at 8/6/5 bits before collapsing to the
    static lowest precision.
    """
    budget = budget or ExperimentBudget.quick()
    dataset = load_experiment_dataset(dataset_name, budget)
    model = train_rps(network, dataset, "pgd", budget, precision_set)

    attack = PGD(DEFAULT_EPSILON, steps=budget.eval_attack_steps)
    controller = TradeoffController(model, precision_set, attack=attack,
                                    seed=budget.seed)
    accelerator = TwoInOneAccelerator(
        optimizer_config=OptimizerConfig(population_size=10, total_cycles=2))
    layers = network_layers(workload, workload_dataset)
    x_eval = dataset.x_test[:budget.eval_size]
    y_eval = dataset.y_test[:budget.eval_size]
    return controller.build_curve(x_eval, y_eval, accelerator=accelerator,
                                  layers=layers, caps=caps)


def tradeoff_rows(curve: TradeoffCurve) -> List[Dict[str, object]]:
    """Format a trade-off curve as printable rows (robustness %, relative energy)."""
    rows = curve.as_rows()
    energies = [row["average_energy"] for row in rows
                if row["average_energy"] is not None]
    max_energy = max(energies) if energies else None
    formatted: List[Dict[str, object]] = []
    for row in rows:
        entry = {
            "configuration": row["configuration"],
            "natural_accuracy (%)": (100.0 * row["natural_accuracy"]
                                     if row["natural_accuracy"] is not None else None),
            "robust_accuracy (%)": (100.0 * row["robust_accuracy"]
                                    if row["robust_accuracy"] is not None else None),
        }
        if max_energy:
            entry["normalized_energy_efficiency"] = (
                max_energy / row["average_energy"]
                if row["average_energy"] else None)
        formatted.append(entry)
    return formatted
