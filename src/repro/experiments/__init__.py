"""Experiment harnesses regenerating every table and figure of the paper."""

from .accelerator_figures import (
    FIG7_WORKLOADS,
    dataflow_optimizer_ablation,
    dnnguard_comparison,
    energy_breakdown_comparison,
    mac_area_breakdown,
    mac_cycle_counts,
    mac_unit_comparison,
    normalized_energy_table,
    normalized_throughput_table,
    throughput_vs_precision,
)
from .common import (
    DEFAULT_EPSILON,
    ExperimentBudget,
    build_experiment_model,
    format_table,
    load_experiment_dataset,
)
from .robustness_tables import (
    DEFAULT_PRECISION_SET,
    RobustnessRow,
    evaluate_adaptive_attack,
    evaluate_robustness_table,
    evaluate_strong_attacks,
    train_baseline,
    train_rps,
)
from .tradeoff import run_tradeoff_experiment, tradeoff_rows
from .transferability import TransferabilityPanel, run_transferability_study

__all__ = [
    "ExperimentBudget",
    "DEFAULT_EPSILON",
    "DEFAULT_PRECISION_SET",
    "build_experiment_model",
    "load_experiment_dataset",
    "format_table",
    "RobustnessRow",
    "train_baseline",
    "train_rps",
    "evaluate_robustness_table",
    "evaluate_strong_attacks",
    "evaluate_adaptive_attack",
    "TransferabilityPanel",
    "run_transferability_study",
    "FIG7_WORKLOADS",
    "mac_cycle_counts",
    "mac_area_breakdown",
    "mac_unit_comparison",
    "throughput_vs_precision",
    "normalized_throughput_table",
    "normalized_energy_table",
    "energy_breakdown_comparison",
    "dnnguard_comparison",
    "dataflow_optimizer_ablation",
    "run_tradeoff_experiment",
    "tradeoff_rows",
]
