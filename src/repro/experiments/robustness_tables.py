"""Harnesses for the robustness tables (Tabs. 1-6 of the paper).

Each function trains the requested (network, adversarial-training method)
pairs on a synthetic dataset substitute, with and without RPS, and evaluates
natural accuracy plus robust accuracy under the table's attacks.  Rows follow
the paper's table layout so the benchmark output can be compared side by side
with the published numbers (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks import (
    AutoAttack,
    BanditsAttack,
    CWInf,
    EnsemblePGD,
    PGD,
    eps_from_255,
)
from ..core import (
    RPSConfig,
    RPSInference,
    RPSTrainer,
    robust_accuracy,
    rps_robust_accuracy,
)
from ..defense import AdversarialConfig, AdversarialTrainer, evaluate_accuracy
from ..inference import InferenceSession
from ..quantization import PrecisionSet
from .common import (
    DEFAULT_EPSILON,
    ExperimentBudget,
    build_experiment_model,
    load_experiment_dataset,
)

__all__ = ["RobustnessRow", "train_baseline", "train_rps",
           "evaluate_robustness_table", "evaluate_strong_attacks",
           "evaluate_adaptive_attack", "DEFAULT_PRECISION_SET"]

#: Laptop-scale stand-in for the paper's default 4~16-bit RPS set.  The
#: synthetic images are small (16x16) and smooth, so the quantisation noise of
#: 4-16-bit execution is weak relative to the class margins; bit-widths of
#: 3-6 give the same noise-to-margin ratio (and hence the same poor attack
#: transferability) that the paper observes at 4-16-bit on CIFAR.  Three
#: spread-out widths also keep every switchable-BN branch well trained at the
#: small experiment budgets.
DEFAULT_PRECISION_SET = PrecisionSet([3, 4, 6])


@dataclass
class RobustnessRow:
    """One row of a robustness table."""

    network: str
    method: str
    natural: float
    attacks: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"network": self.network, "method": self.method,
                                  "natural": 100.0 * self.natural}
        for name, value in self.attacks.items():
            row[name] = 100.0 * value
        return row


# ---------------------------------------------------------------------------
# Training helpers
# ---------------------------------------------------------------------------

def train_baseline(network: str, dataset, method: str,
                   budget: ExperimentBudget,
                   epsilon: float = DEFAULT_EPSILON):
    """Adversarially train a full-precision baseline model."""
    model = build_experiment_model(network, dataset, budget, precisions=None)
    config = AdversarialConfig(
        epochs=budget.epochs, batch_size=budget.batch_size, lr=0.05,
        method=method, epsilon=epsilon, attack_steps=budget.attack_steps,
        seed=budget.seed)
    trainer = AdversarialTrainer(model, config)
    trainer.fit(dataset.x_train, dataset.y_train)
    return model


def train_rps(network: str, dataset, method: str, budget: ExperimentBudget,
              precision_set: PrecisionSet = DEFAULT_PRECISION_SET,
              epsilon: float = DEFAULT_EPSILON):
    """Train the same configuration with RPS (random precision + SBN)."""
    model = build_experiment_model(network, dataset, budget,
                                   precisions=precision_set)
    config = RPSConfig(
        epochs=budget.epochs, batch_size=budget.batch_size, lr=0.05,
        method=method, epsilon=epsilon, attack_steps=budget.attack_steps,
        precision_set=precision_set, seed=budget.seed)
    trainer = RPSTrainer(model, config)
    trainer.fit(dataset.x_train, dataset.y_train)
    return model


# ---------------------------------------------------------------------------
# Tables 1-4: PGD attacks on CIFAR-10 / CIFAR-100 / SVHN / ImageNet
# ---------------------------------------------------------------------------

def evaluate_robustness_table(dataset_name: str,
                              networks: Sequence[str] = ("preact_resnet18",),
                              methods: Sequence[str] = ("pgd",),
                              budget: Optional[ExperimentBudget] = None,
                              precision_set: PrecisionSet = DEFAULT_PRECISION_SET,
                              attack_steps: Sequence[int] = (20, 100),
                              epsilon: float = DEFAULT_EPSILON
                              ) -> List[RobustnessRow]:
    """Regenerate one of Tabs. 1-4: baseline vs baseline+RPS rows.

    ``attack_steps`` lists the PGD step counts of the table's columns
    (20/100 for CIFAR/SVHN, 10/50 for ImageNet).
    """
    budget = budget or ExperimentBudget.quick()
    dataset = load_experiment_dataset(dataset_name, budget)
    x_eval = dataset.x_test[:budget.eval_size]
    y_eval = dataset.y_test[:budget.eval_size]

    rows: List[RobustnessRow] = []
    for network in networks:
        for method in methods:
            # --- full-precision adversarial-training baseline -------------
            baseline = train_baseline(network, dataset, method, budget, epsilon)
            baseline_session = InferenceSession(baseline)
            attacks = {}
            for steps in attack_steps:
                attack = PGD(epsilon, steps=steps)
                attacks[f"PGD-{steps}"] = robust_accuracy(
                    baseline, attack, x_eval, y_eval,
                    session=baseline_session)
            rows.append(RobustnessRow(
                network=network, method=method.upper().replace("_", "-"),
                natural=evaluate_accuracy(baseline, dataset.x_test,
                                          dataset.y_test,
                                          session=baseline_session),
                attacks=attacks))

            # --- same method + RPS ----------------------------------------
            rps_model = train_rps(network, dataset, method, budget,
                                  precision_set, epsilon)
            inference = RPSInference(rps_model, precision_set, seed=budget.seed)
            attacks_rps = {}
            for steps in attack_steps:
                attack = PGD(epsilon, steps=steps)
                attacks_rps[f"PGD-{steps}"] = rps_robust_accuracy(
                    rps_model, attack, x_eval, y_eval, precision_set,
                    seed=budget.seed, session=inference.session)
            rows.append(RobustnessRow(
                network=network,
                method=f"{method.upper().replace('_', '-')}+RPS",
                natural=inference.accuracy(dataset.x_test, dataset.y_test),
                attacks=attacks_rps))
    return rows


# ---------------------------------------------------------------------------
# Table 5: stronger attacks (AutoAttack, CW-Inf, Bandits) at ε = 8 and 12
# ---------------------------------------------------------------------------

def evaluate_strong_attacks(dataset_name: str = "cifar10",
                            network: str = "preact_resnet18",
                            method: str = "pgd",
                            budget: Optional[ExperimentBudget] = None,
                            precision_set: PrecisionSet = DEFAULT_PRECISION_SET,
                            epsilons: Sequence[float] = (8.0, 12.0)
                            ) -> List[Dict[str, object]]:
    """Regenerate Tab. 5: baseline vs +RPS under AutoAttack / CW-Inf / Bandits."""
    budget = budget or ExperimentBudget.quick()
    dataset = load_experiment_dataset(dataset_name, budget)
    x_eval = dataset.x_test[:budget.eval_size]
    y_eval = dataset.y_test[:budget.eval_size]

    baseline = train_baseline(network, dataset, method, budget)
    rps_model = train_rps(network, dataset, method, budget, precision_set)
    baseline_session = InferenceSession(baseline)
    rps_session = InferenceSession(rps_model)

    def make_attacks(eps_255: float) -> Dict[str, object]:
        eps = eps_from_255(eps_255)
        return {
            f"AutoAttack (eps={int(eps_255)})": AutoAttack(eps, steps=budget.eval_attack_steps),
            f"CW-Inf (eps={int(eps_255)})": CWInf(eps, steps=budget.eval_attack_steps),
            f"Bandits (eps={int(eps_255)})": BanditsAttack(
                eps, steps=max(20, budget.eval_attack_steps)),
        }

    rows: List[Dict[str, object]] = []
    for eps_255 in epsilons:
        for label, attack in make_attacks(eps_255).items():
            base_acc = robust_accuracy(baseline, attack, x_eval, y_eval,
                                       session=baseline_session)
            rps_acc = rps_robust_accuracy(rps_model, attack, x_eval, y_eval,
                                          precision_set, seed=budget.seed,
                                          session=rps_session)
            rows.append({
                "attack": label,
                f"{method.upper()}-baseline (%)": 100.0 * base_acc,
                f"{method.upper()}+RPS (%)": 100.0 * rps_acc,
                "improvement (pp)": 100.0 * (rps_acc - base_acc),
            })
    return rows


# ---------------------------------------------------------------------------
# Table 6: adaptive attack (E-PGD)
# ---------------------------------------------------------------------------

def evaluate_adaptive_attack(dataset_name: str = "cifar10",
                             network: str = "preact_resnet18",
                             budget: Optional[ExperimentBudget] = None,
                             precision_set: PrecisionSet = DEFAULT_PRECISION_SET,
                             attack_steps: Sequence[int] = (20,),
                             epsilon: float = DEFAULT_EPSILON
                             ) -> List[Dict[str, object]]:
    """Regenerate Tab. 6: PGD-7 baseline vs PGD-7+RPS under E-PGD.

    The adaptive adversary attacks the *ensemble over all candidate
    precisions*, so it is aware of the full RPS configuration.
    """
    budget = budget or ExperimentBudget.quick()
    dataset = load_experiment_dataset(dataset_name, budget)
    x_eval = dataset.x_test[:budget.eval_size]
    y_eval = dataset.y_test[:budget.eval_size]

    baseline = train_baseline(network, dataset, "pgd", budget, epsilon)
    rps_model = train_rps(network, dataset, "pgd", budget, precision_set, epsilon)
    inference = RPSInference(rps_model, precision_set, seed=budget.seed)
    baseline_session = InferenceSession(baseline)

    rows: List[Dict[str, object]] = []
    for steps in attack_steps:
        # Against the static baseline, E-PGD degenerates to standard PGD.
        plain = PGD(epsilon, steps=steps)
        base_acc = robust_accuracy(baseline, plain, x_eval, y_eval,
                                   session=baseline_session)

        epgd = EnsemblePGD(epsilon, precision_set, steps=steps)
        result = epgd.run(rps_model, x_eval, y_eval)
        rps_acc = float((inference.predict(result.x_adv) == y_eval).mean())

        rows.append({
            "attack": f"E-PGD-{steps}",
            "PGD-7 baseline (%)": 100.0 * base_acc,
            "PGD-7+RPS (%)": 100.0 * rps_acc,
            "improvement (pp)": 100.0 * (rps_acc - base_acc),
        })
    return rows
