"""Harnesses for the accelerator evaluation figures (Figs. 2, 3, 7-10 and the
MAC-unit / DNNGuard comparisons of Sec. 4.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accelerator import (
    BitFusionAccelerator,
    DNNGuardAccelerator,
    SpatialBitFusionMAC,
    SpatialTemporalMAC,
    StripesAccelerator,
    TemporalBitSerialMAC,
    TwoInOneAccelerator,
    network_layers,
)
from ..accelerator.optimizer import EvolutionaryDataflowOptimizer, OptimizerConfig
from ..accelerator.dataflow import default_dataflow
from ..accelerator.performance_model import PerformanceModel

__all__ = [
    "FIG7_WORKLOADS",
    "mac_unit_comparison",
    "mac_area_breakdown",
    "mac_cycle_counts",
    "throughput_vs_precision",
    "normalized_throughput_table",
    "normalized_energy_table",
    "energy_breakdown_comparison",
    "dnnguard_comparison",
    "dataflow_optimizer_ablation",
]

#: The six (network, dataset) workloads of Figs. 7-9, in the paper's order.
FIG7_WORKLOADS: Sequence[Tuple[str, str]] = (
    ("resnet18", "cifar10"),
    ("wide_resnet32", "cifar10"),
    ("resnet18", "imagenet"),
    ("resnet50", "imagenet"),
    ("vgg16", "imagenet"),
    ("alexnet", "imagenet"),
)


def _build_accelerators(optimizer_config: Optional[OptimizerConfig] = None):
    config = optimizer_config or OptimizerConfig(population_size=12, total_cycles=3)
    return {
        "BitFusion": BitFusionAccelerator(),
        "Stripes": StripesAccelerator(optimizer_config=config),
        "2-in-1": TwoInOneAccelerator(optimizer_config=config),
    }


# ---------------------------------------------------------------------------
# MAC-unit level comparisons (Fig. 3, Fig. 4 / Sec. 3.2.3 synthesis ratios)
# ---------------------------------------------------------------------------

def mac_cycle_counts(bits: int = 8) -> Dict[str, float]:
    """Fig. 4: cycles to complete one MAC at ``bits``-bit x ``bits``-bit."""
    return {
        "temporal": TemporalBitSerialMAC().cycles_per_mac(bits),
        "spatial": SpatialBitFusionMAC().cycles_per_mac(bits),
        "spatial_temporal": SpatialTemporalMAC().cycles_per_mac(bits),
    }


def mac_area_breakdown() -> List[Dict[str, object]]:
    """Fig. 3: multiplier / shift-add / register area fractions per design."""
    rows = []
    for label, unit in (("temporal", TemporalBitSerialMAC()),
                        ("spatial", SpatialBitFusionMAC()),
                        ("ours", SpatialTemporalMAC())):
        fractions = unit.area_breakdown.fractions()
        rows.append({"design": label,
                     "multiplier (%)": 100.0 * fractions["multiplier"],
                     "shift_add (%)": 100.0 * fractions["shift_add"],
                     "register (%)": 100.0 * fractions["register"],
                     "total_area": unit.area})
    return rows


def mac_unit_comparison(bits: int = 8) -> Dict[str, float]:
    """Sec. 3.2.3 synthesis claim: throughput/area and energy-eff/op vs Bit Fusion."""
    ours = SpatialTemporalMAC()
    bitfusion = SpatialBitFusionMAC()
    return {
        "throughput_per_area_ratio": (ours.throughput_per_area(bits)
                                      / bitfusion.throughput_per_area(bits)),
        "energy_efficiency_ratio": (bitfusion.energy_per_mac(bits)
                                    / ours.energy_per_mac(bits)),
    }


# ---------------------------------------------------------------------------
# Figs. 2 and 10: throughput vs precision curves
# ---------------------------------------------------------------------------

def throughput_vs_precision(network: str = "resnet50", dataset: str = "imagenet",
                            precisions: Sequence[int] = tuple(range(1, 17)),
                            designs: Sequence[str] = ("BitFusion", "Stripes",
                                                      "2-in-1"),
                            optimizer_config: Optional[OptimizerConfig] = None,
                            workers: Optional[int] = None,
                            persist: Optional[bool] = None
                            ) -> List[Dict[str, object]]:
    """Throughput (FPS) of each design across execution precisions.

    Fig. 2 uses only Bit Fusion and Stripes on ResNet-50/ImageNet; Fig. 10
    adds the 2-in-1 design and the WideResNet-32/CIFAR-10 workload.
    ``workers`` / ``persist`` shard and disk-back the grid evaluation (both
    bit-identical to the defaults; see ``EvaluationEngine.evaluate_grid``).
    """
    layers = network_layers(network, dataset)
    accelerators = _build_accelerators(optimizer_config)
    # One batched grid pass per design covers the whole precision sweep.
    fps = {name: accelerators[name].evaluate_grid(layers, precisions,
                                                  workers=workers,
                                                  persist=persist)
           .throughput_fps() for name in designs}
    rows: List[Dict[str, object]] = []
    for index, precision in enumerate(precisions):
        row: Dict[str, object] = {"precision": precision}
        for name in designs:
            row[name] = float(fps[name][index])
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figs. 7 and 8: normalized throughput / energy efficiency tables
# ---------------------------------------------------------------------------

def normalized_throughput_table(precisions: Sequence[int] = (2, 4, 8, 16),
                                workloads: Sequence[Tuple[str, str]] = FIG7_WORKLOADS,
                                optimizer_config: Optional[OptimizerConfig] = None,
                                workers: Optional[int] = None,
                                persist: Optional[bool] = None
                                ) -> List[Dict[str, object]]:
    """Fig. 7: throughput of Stripes and 2-in-1 normalized to Bit Fusion."""
    accelerators = _build_accelerators(optimizer_config)
    rows: List[Dict[str, object]] = []
    for network, dataset in workloads:
        layers = network_layers(network, dataset)
        fps = {name: acc.evaluate_grid(layers, precisions, workers=workers,
                                       persist=persist).throughput_fps()
               for name, acc in accelerators.items()}
        for index, precision in enumerate(precisions):
            base = fps["BitFusion"][index]
            rows.append({
                "precision": precision,
                "workload": f"{network}/{dataset}",
                "BitFusion": 1.0,
                "Stripes": float(fps["Stripes"][index] / base),
                "2-in-1": float(fps["2-in-1"][index] / base),
            })
    rows.sort(key=lambda row: precisions.index(row["precision"]))
    return rows


def normalized_energy_table(precisions: Sequence[int] = (2, 4, 8, 16),
                            workloads: Sequence[Tuple[str, str]] = FIG7_WORKLOADS,
                            optimizer_config: Optional[OptimizerConfig] = None,
                            workers: Optional[int] = None,
                            persist: Optional[bool] = None
                            ) -> List[Dict[str, object]]:
    """Fig. 8: energy efficiency normalized to Bit Fusion."""
    accelerators = _build_accelerators(optimizer_config)
    rows: List[Dict[str, object]] = []
    for network, dataset in workloads:
        layers = network_layers(network, dataset)
        energy = {name: acc.evaluate_grid(layers, precisions, workers=workers,
                                          persist=persist).network_energy()
                  for name, acc in accelerators.items()}
        for index, precision in enumerate(precisions):
            base = energy["BitFusion"][index]
            rows.append({
                "precision": precision,
                "workload": f"{network}/{dataset}",
                "BitFusion": 1.0,
                "Stripes": float(base / energy["Stripes"][index]),
                "2-in-1": float(base / energy["2-in-1"][index]),
            })
    rows.sort(key=lambda row: precisions.index(row["precision"]))
    return rows


# ---------------------------------------------------------------------------
# Fig. 9: energy breakdown (DRAM / SRAM / MAC) of ours vs Bit Fusion at 4-bit
# ---------------------------------------------------------------------------

def energy_breakdown_comparison(precision: int = 4,
                                workloads: Sequence[Tuple[str, str]] = FIG7_WORKLOADS,
                                optimizer_config: Optional[OptimizerConfig] = None
                                ) -> List[Dict[str, object]]:
    """Fig. 9: per-component energy of the 2-in-1 design and Bit Fusion."""
    accelerators = _build_accelerators(optimizer_config)
    rows: List[Dict[str, object]] = []
    for network, dataset in workloads:
        layers = network_layers(network, dataset)
        for name in ("BitFusion", "2-in-1"):
            perf = accelerators[name].evaluate_network(layers, precision)
            breakdown = perf.energy_breakdown()
            total = sum(breakdown.values())
            rows.append({
                "workload": f"{network}/{dataset}",
                "design": name,
                "total_energy": total,
                "DRAM (%)": 100.0 * breakdown.get("DRAM", 0.0) / total,
                "SRAM (%)": 100.0 * breakdown.get("GlobalBuffer", 0.0) / total,
                "MAC (%)": 100.0 * breakdown.get("MAC", 0.0) / total,
                "RF (%)": 100.0 * breakdown.get("RegisterFile", 0.0) / total,
            })
    return rows


# ---------------------------------------------------------------------------
# Sec. 4.3.2: throughput/area comparison with DNNGuard
# ---------------------------------------------------------------------------

def dnnguard_comparison(networks: Sequence[Tuple[str, str]] = (
                            ("alexnet", "imagenet"),
                            ("vgg16", "imagenet"),
                            ("resnet50", "imagenet")),
                        precision_ranges: Dict[str, Sequence[int]] = None,
                        optimizer_config: Optional[OptimizerConfig] = None
                        ) -> List[Dict[str, object]]:
    """Throughput/area of the 2-in-1 Accelerator relative to DNNGuard."""
    precision_ranges = precision_ranges or {"4~8-bit": (4, 5, 6, 7, 8),
                                            "4~16-bit": tuple(range(4, 17))}
    ours = TwoInOneAccelerator(optimizer_config=optimizer_config
                               or OptimizerConfig(population_size=12, total_cycles=3))
    guard = DNNGuardAccelerator()
    rows: List[Dict[str, object]] = []
    for network, dataset in networks:
        layers = network_layers(network, dataset)
        # DNNGuard executes everything at its fixed 16-bit precision.
        guard_fps = guard.throughput_fps(layers, 16)
        guard_tpa = guard_fps / guard.compute_area
        row: Dict[str, object] = {"workload": f"{network}/{dataset}"}
        for label, precisions in precision_ranges.items():
            ours_fps = ours.average_throughput_fps(layers, precisions)
            ours_tpa = ours_fps / ours.compute_area
            row[f"speedup {label}"] = ours_tpa / guard_tpa
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Dataflow optimizer ablation (Sec. 4.3.1's 1.28x example)
# ---------------------------------------------------------------------------

def dataflow_optimizer_ablation(network: str = "resnet50", dataset: str = "imagenet",
                                precision: int = 4,
                                max_layers: Optional[int] = None,
                                optimizer_config: Optional[OptimizerConfig] = None
                                ) -> Dict[str, float]:
    """Quantify the gain of the evolutionary dataflow search over the default
    mapping on the proposed micro-architecture."""
    layers = network_layers(network, dataset)
    if max_layers is not None:
        layers = layers[:max_layers]
    accelerator = TwoInOneAccelerator(optimize_dataflow=False)
    model = accelerator.model
    optimizer = EvolutionaryDataflowOptimizer(
        model, optimizer_config or OptimizerConfig(population_size=16,
                                                   total_cycles=4))
    default_cycles = 0.0
    optimized_cycles = 0.0
    for layer in layers:
        baseline_flow = default_dataflow(layer, accelerator.num_units)
        if model.is_valid(layer, baseline_flow, precision):
            default_perf = model.evaluate(layer, baseline_flow, precision)
        else:
            _, default_perf = optimizer.optimize_layer(layer, precision)
        _, best_perf = optimizer.optimize_layer(layer, precision)
        default_cycles += default_perf.total_cycles
        optimized_cycles += best_perf.total_cycles
    return {
        "default_cycles": default_cycles,
        "optimized_cycles": optimized_cycles,
        "speedup": default_cycles / optimized_cycles if optimized_cycles else 0.0,
    }
