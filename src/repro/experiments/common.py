"""Shared infrastructure for the experiment harnesses.

Every harness accepts an :class:`ExperimentBudget` controlling how much work
it does.  ``ExperimentBudget.quick()`` is sized so that an individual table or
figure regenerates in seconds on a laptop (used by the benchmark suite);
``ExperimentBudget.full()`` uses larger models, more data and longer training
for higher-fidelity numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks import eps_from_255
from ..data import SyntheticImageDataset, make_dataset
from ..models import build_model
from ..nn.module import Module
from ..quantization import PrecisionSet

__all__ = ["ExperimentBudget", "build_experiment_model", "load_experiment_dataset",
           "format_table", "DEFAULT_EPSILON"]

#: Perturbation budget used by the experiment harnesses.  The paper uses
#: ε = 8/255 on natural-image datasets; the synthetic substrate has larger
#: class margins relative to its pixel scale, so the equivalent operating
#: point (adversarially trained models retaining roughly half their natural
#: accuracy under PGD) sits at ε = 16/255 — see DESIGN.md's substitution notes.
DEFAULT_EPSILON = eps_from_255(16)


@dataclass(frozen=True)
class ExperimentBudget:
    """Knobs that trade experiment fidelity for runtime."""

    train_size: int
    test_size: int
    eval_size: int            # examples used for (slow) adversarial evaluation
    epochs: int
    batch_size: int
    model_scale: int          # base channel width of the evaluated models
    attack_steps: int         # inner steps of training-time PGD
    eval_attack_steps: int    # steps of evaluation attacks (PGD-20 etc.)
    seed: int = 0

    @classmethod
    def quick(cls, seed: int = 0) -> "ExperimentBudget":
        """Seconds-scale budget used by tests and benchmarks."""
        return cls(train_size=768, test_size=160, eval_size=64, epochs=3,
                   batch_size=64, model_scale=8, attack_steps=3,
                   eval_attack_steps=10, seed=seed)

    @classmethod
    def standard(cls, seed: int = 0) -> "ExperimentBudget":
        """Minutes-scale budget: the default for the example scripts."""
        return cls(train_size=1500, test_size=384, eval_size=192, epochs=5,
                   batch_size=64, model_scale=12, attack_steps=5,
                   eval_attack_steps=20, seed=seed)

    @classmethod
    def full(cls, seed: int = 0) -> "ExperimentBudget":
        """The highest-fidelity configuration (tens of minutes per table)."""
        return cls(train_size=2000, test_size=512, eval_size=384, epochs=10,
                   batch_size=64, model_scale=16, attack_steps=7,
                   eval_attack_steps=20, seed=seed)


def load_experiment_dataset(name: str, budget: ExperimentBudget) -> SyntheticImageDataset:
    """Dataset preset resized to the budget."""
    return make_dataset(name, train_size=budget.train_size,
                        test_size=budget.test_size, seed=budget.seed)


def build_experiment_model(name: str, dataset: SyntheticImageDataset,
                           budget: ExperimentBudget,
                           precisions: Optional[PrecisionSet] = None) -> Module:
    """Model builder shared by all robustness harnesses."""
    return build_model(name, num_classes=dataset.num_classes,
                       precisions=precisions, scale=budget.model_scale,
                       seed=budget.seed)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.2f}") -> str:
    """Render result rows as a fixed-width text table (for bench output)."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in rendered)
    return f"{header}\n{separator}\n{body}"
