"""The proposed 2-in-1 Accelerator (Sec. 3.2): spatial-temporal MAC array plus
the systematically optimized dataflow found by the evolutionary optimizer."""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ...quantization.precision import Precision, PrecisionSet
from ..mac.spatial_temporal import SpatialTemporalMAC
from ..memory import MemoryHierarchy
from ..optimizer.evolutionary import OptimizerConfig
from ..workload import LayerShape
from .base import COMPUTE_AREA_BUDGET, Accelerator

__all__ = ["TwoInOneAccelerator"]


class TwoInOneAccelerator(Accelerator):
    """Spatial-temporal MAC array + evolutionary dataflow optimization."""

    name = "2-in-1"

    def __init__(self, memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET,
                 optimize_dataflow: bool = True,
                 optimizer_config: Optional[OptimizerConfig] = None) -> None:
        super().__init__(SpatialTemporalMAC(), memory=memory,
                         area_budget=area_budget,
                         optimize_dataflow=optimize_dataflow,
                         optimizer_config=optimizer_config)

    # ------------------------------------------------------------------
    def rps_average_metrics(self, layers: Sequence[LayerShape],
                            precision_set: PrecisionSet) -> dict:
        """Average throughput / energy over an RPS inference precision set.

        This is the quantity the instant robustness-efficiency trade-off of
        Sec. 2.5 / Fig. 11 reports: under uniform random precision switching,
        the expected per-inference cost is the mean over the candidate set.
        """
        fps = []
        energy = []
        for precision in precision_set:
            perf = self.evaluate_network(layers, precision)
            fps.append(perf.throughput_fps)
            energy.append(perf.total_energy)
        count = len(fps)
        return {
            "average_fps": sum(fps) / count,
            "average_energy": sum(energy) / count,
            "average_energy_efficiency": count / sum(energy),
            "precisions": [p.key for p in precision_set],
        }
