"""The proposed 2-in-1 Accelerator (Sec. 3.2): spatial-temporal MAC array plus
the systematically optimized dataflow found by the evolutionary optimizer.

The RPS serving metric of Sec. 2.5 / Fig. 11 — average throughput/energy over
an inference precision set — is inherited from
:meth:`repro.accelerator.accelerators.base.Accelerator.rps_average_metrics`,
which scores the whole set in one batched engine pass.
"""

from __future__ import annotations

from typing import Optional

from ..mac.spatial_temporal import SpatialTemporalMAC
from ..memory import MemoryHierarchy
from ..optimizer.evolutionary import OptimizerConfig
from .base import COMPUTE_AREA_BUDGET, Accelerator

__all__ = ["TwoInOneAccelerator"]


class TwoInOneAccelerator(Accelerator):
    """Spatial-temporal MAC array + evolutionary dataflow optimization."""

    name = "2-in-1"

    def __init__(self, memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET,
                 optimize_dataflow: bool = True,
                 optimizer_config: Optional[OptimizerConfig] = None) -> None:
        super().__init__(SpatialTemporalMAC(), memory=memory,
                         area_budget=area_budget,
                         optimize_dataflow=optimize_dataflow,
                         optimizer_config=optimizer_config)
