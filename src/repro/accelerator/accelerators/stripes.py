"""Stripes baseline: temporal bit-serial accelerator (Judd et al., MICRO 2016)."""

from __future__ import annotations

from typing import Optional

from ..mac.temporal import TemporalBitSerialMAC
from ..memory import MemoryHierarchy
from ..optimizer.evolutionary import OptimizerConfig
from .base import COMPUTE_AREA_BUDGET, Accelerator

__all__ = ["StripesAccelerator"]


class StripesAccelerator(Accelerator):
    """Bit-serial temporal design.

    The paper optimizes Stripes' dataflow with the same automated optimizer
    used for the proposed design ("we built a cycle-accurate simulator for it
    ... and optimize its dataflow with our automated optimizer", Sec. 4.1.2),
    so ``optimize_dataflow`` defaults to True here as well.
    """

    name = "Stripes"

    def __init__(self, memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET,
                 optimize_dataflow: bool = True,
                 optimizer_config: Optional[OptimizerConfig] = None) -> None:
        super().__init__(TemporalBitSerialMAC(), memory=memory,
                         area_budget=area_budget,
                         optimize_dataflow=optimize_dataflow,
                         optimizer_config=optimizer_config)
