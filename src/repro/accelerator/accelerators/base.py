"""Accelerator front-ends: MAC array + memory hierarchy + dataflow policy.

All compared designs share the same compute-area and memory budget
(Sec. 4.1.2: "we adopt the same memory area and MAC array area with Bit
Fusion"), so a design's MAC-unit area determines how many units its array
holds.  Each accelerator evaluates a network either with an untuned default
dataflow or with the evolutionary optimizer (the 2-in-1 Accelerator always
uses the optimizer — it is part of the proposed co-design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...quantization.precision import Precision
from ..dataflow import Dataflow, default_dataflow
from ..engine import EvaluationEngine, layer_shape_key
from ..mac.base import MACUnitModel, resolve_precision
from ..memory import MemoryHierarchy, default_hierarchy
from ..optimizer.evolutionary import EvolutionaryDataflowOptimizer, OptimizerConfig
from ..performance_model import (
    ArrayConfig,
    InvalidMappingError,
    LayerPerformance,
    NetworkPerformance,
    PerformanceModel,
)
from ..workload import LayerShape

__all__ = ["COMPUTE_AREA_BUDGET", "Accelerator"]

#: Shared MAC-array silicon budget (arbitrary area units).  Chosen so the
#: Bit Fusion baseline instantiates a 256-unit fusion array, matching the
#: scale of its published configuration; every other design fits as many of
#: its own units as the same budget allows.
COMPUTE_AREA_BUDGET = 256 * 920.0


class Accelerator:
    """A complete accelerator: MAC array, memory hierarchy, dataflow policy."""

    name = "accelerator"

    def __init__(self, mac_unit: MACUnitModel,
                 memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET,
                 frequency_hz: float = 500e6,
                 optimize_dataflow: bool = False,
                 optimizer_config: Optional[OptimizerConfig] = None,
                 compute_derating: float = 1.0,
                 usable_area_fraction: float = 1.0) -> None:
        self.mac_unit = mac_unit
        self.memory = memory or default_hierarchy()
        self.area_budget = area_budget
        usable_area = area_budget * usable_area_fraction
        self.num_units = max(1, int(usable_area // mac_unit.area))
        self.array = ArrayConfig(mac_unit=mac_unit, num_units=self.num_units,
                                 frequency_hz=frequency_hz)
        self.model = PerformanceModel(self.array, self.memory)
        self.optimize_dataflow = optimize_dataflow
        self.optimizer_config = optimizer_config or OptimizerConfig(
            population_size=16, total_cycles=4)
        #: Multiplier (> 1 slows the design) capturing orchestration overheads
        #: of designs that co-schedule extra engines (e.g. DNNGuard).
        self.compute_derating = compute_derating
        self._dataflow_cache: Dict[Tuple, Dataflow] = {}
        #: Vectorized, memoised evaluation front-end; every public metric
        #: below routes through it.  The scalar path survives as
        #: :meth:`evaluate_layer_reference` for parity testing.
        self.engine = EvaluationEngine(self)

    # ------------------------------------------------------------------
    @property
    def compute_area(self) -> float:
        return self.area_budget

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mac_unit": self.mac_unit.name,
            "num_units": self.num_units,
            "compute_area": self.compute_area,
            "optimize_dataflow": self.optimize_dataflow,
        }

    # ------------------------------------------------------------------
    # Dataflow selection
    # ------------------------------------------------------------------
    def _layer_key(self, layer: LayerShape, precision: Precision) -> Tuple:
        # Keyed on shape (not name): same-shaped layers — which deep networks
        # repeat many times — share one optimized dataflow.
        return (layer_shape_key(layer), precision.key)

    def dataflow_for(self, layer: LayerShape,
                     precision: Union[int, Precision]) -> Dataflow:
        """Pick (and cache) the dataflow used for a layer at a precision."""
        precision = resolve_precision(precision)
        key = self._layer_key(layer, precision)
        if key in self._dataflow_cache:
            return self._dataflow_cache[key]
        if self.optimize_dataflow:
            optimizer = EvolutionaryDataflowOptimizer(self.model,
                                                      self.optimizer_config)
            dataflow, _ = optimizer.optimize_layer(layer, precision)
        else:
            dataflow = default_dataflow(layer, self.num_units)
            if not self.model.is_valid(layer, dataflow, precision):
                # Fall back to a conservative mapping searched with a tiny budget.
                optimizer = EvolutionaryDataflowOptimizer(
                    self.model, OptimizerConfig(population_size=8, total_cycles=2))
                dataflow, _ = optimizer.optimize_layer(layer, precision)
        self._dataflow_cache[key] = dataflow
        return dataflow

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def extra_layers(self, layers: Sequence[LayerShape]) -> List[LayerShape]:
        """Additional work the design must execute (e.g. a detection network)."""
        return []

    def evaluate_layer_reference(self, layer: LayerShape,
                                 precision: Union[int, Precision]
                                 ) -> LayerPerformance:
        """Scalar reference evaluation (no engine batching or caching).

        Kept as the ground truth the vectorized engine is parity-tested
        against.
        """
        precision = resolve_precision(precision)
        dataflow = self.dataflow_for(layer, precision)
        perf = self.model.evaluate(layer, dataflow, precision)
        if self.compute_derating != 1.0:
            perf.compute_cycles *= self.compute_derating
            perf.memory_cycles = {k: v * self.compute_derating
                                  for k, v in perf.memory_cycles.items()}
        return perf

    def evaluate_layer(self, layer: LayerShape,
                       precision: Union[int, Precision]) -> LayerPerformance:
        return self.engine.evaluate_layer(layer, precision)

    def evaluate_network(self, layers: Sequence[LayerShape],
                         precision: Union[int, Precision]) -> NetworkPerformance:
        all_layers = list(layers) + self.extra_layers(layers)
        return self.engine.evaluate_network(all_layers, precision)

    def evaluate_grid(self, layers: Sequence[LayerShape],
                      precisions: Sequence[Union[int, Precision]],
                      workers: Optional[int] = None,
                      persist: Optional[bool] = None,
                      cache_dir=None):
        """Batched evaluation of every (layer, precision) cell; see
        :meth:`repro.accelerator.engine.EvaluationEngine.evaluate_grid`.

        ``workers`` shards the missing cells across worker processes and
        ``persist`` backs the memo with the on-disk store; both default to
        the ``REPRO_ENGINE_WORKERS`` / ``REPRO_ENGINE_PERSIST`` environment
        knobs and are bit-identical to the synchronous, in-memory path.
        """
        all_layers = list(layers) + self.extra_layers(layers)
        return self.engine.evaluate_grid(all_layers, precisions,
                                         workers=workers, persist=persist,
                                         cache_dir=cache_dir)

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------
    def throughput_fps(self, layers: Sequence[LayerShape],
                       precision: Union[int, Precision]) -> float:
        return self.evaluate_network(layers, precision).throughput_fps

    def energy_per_inference(self, layers: Sequence[LayerShape],
                             precision: Union[int, Precision]) -> float:
        return self.evaluate_network(layers, precision).total_energy

    def energy_efficiency(self, layers: Sequence[LayerShape],
                          precision: Union[int, Precision]) -> float:
        return self.evaluate_network(layers, precision).energy_efficiency

    def throughput_per_area(self, layers: Sequence[LayerShape],
                            precision: Union[int, Precision]) -> float:
        return self.throughput_fps(layers, precision) / self.compute_area

    def average_throughput_fps(self, layers: Sequence[LayerShape],
                               precisions: Sequence[Union[int, Precision]]) -> float:
        """Average FPS across an RPS precision set (used for Fig. 11 and the
        DNNGuard comparison, which quote 4~8-bit / 4~16-bit averages)."""
        if not precisions:
            return 0.0
        return self.evaluate_grid(layers, precisions).average_fps()

    def rps_average_metrics(self, layers: Sequence[LayerShape],
                            precision_set) -> Dict[str, object]:
        """Average throughput / energy over an RPS inference precision set.

        Under uniform random precision switching the expected per-inference
        cost is the mean over the candidate set; one batched engine pass
        covers the whole set (including any :meth:`extra_layers` work the
        design must co-execute).
        """
        grid = self.evaluate_grid(layers, list(precision_set))
        energies = grid.network_energy()
        return {
            "average_fps": grid.average_fps(),
            "average_energy": grid.average_energy(),
            "average_energy_efficiency": float(len(energies) / energies.sum()),
            "precisions": [p.key for p in grid.precisions],
        }
