"""DNNGuard baseline: robustness-aware accelerator with a detection network.

DNNGuard (Wang et al., ASPLOS 2020) defends against adversarial examples by
running a *detection network* concurrently with the target DNN on an elastic
heterogeneous array, orchestrating both through shared on-chip buffers.  The
consequences modelled here, following the paper's Sec. 5 discussion of
robustness-aware accelerators:

* the compute fabric is a conventional fixed-point (16-bit) MAC array that
  gains nothing from low-precision execution;
* a large share of the area budget goes to the detection engine, its buffers
  and the elastic interconnect rather than to target-DNN MACs;
* the detection network itself adds extra work per inference; and
* co-scheduling the two networks stalls the target DNN.

The constants are calibrated so the throughput/area advantage of the 2-in-1
Accelerator lands in the order-of-magnitude range the paper reports
(12.8x-36.5x depending on network and precision range); EXPERIMENTS.md
records the measured ratios next to the paper's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..mac.fixed import FixedPointMAC
from ..memory import MemoryHierarchy
from ..workload import LayerShape
from .base import COMPUTE_AREA_BUDGET, Accelerator

__all__ = ["DNNGuardAccelerator"]

#: Fraction of the shared area budget left for target-DNN MAC units after the
#: detection engine, its buffers and the elastic interconnect take their share.
_USABLE_AREA_FRACTION = 0.25
#: Slowdown of the target DNN due to elastic co-scheduling with the detector.
_ORCHESTRATION_DERATING = 2.5
#: The detection network's extra MACs, as a fraction of the target network.
_DETECTION_WORK_FRACTION = 0.30


class DNNGuardAccelerator(Accelerator):
    """Robustness-aware baseline: fixed-precision array + detection network."""

    name = "DNNGuard"

    def __init__(self, memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET) -> None:
        super().__init__(FixedPointMAC(), memory=memory,
                         area_budget=area_budget,
                         optimize_dataflow=False,
                         compute_derating=_ORCHESTRATION_DERATING,
                         usable_area_fraction=_USABLE_AREA_FRACTION)

    def extra_layers(self, layers: Sequence[LayerShape]) -> List[LayerShape]:
        """Model the detection network as a proportional synthetic conv layer."""
        total_macs = sum(layer.macs for layer in layers)
        detection_macs = _DETECTION_WORK_FRACTION * total_macs
        # Express the detection workload as one square conv layer of matching
        # MAC count (K=C=64, R=S=3): N*K*C*Y*X*R*S = detection_macs.
        spatial = max(1, int((detection_macs / (64 * 64 * 3 * 3)) ** 0.5))
        return [LayerShape(name="detection-network", n=1, k=64, c=64,
                           y=spatial, x=spatial, r=3, s=3)]
