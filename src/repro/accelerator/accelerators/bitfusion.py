"""Bit Fusion baseline: spatial bit-brick accelerator (Sharma et al., ISCA 2018)."""

from __future__ import annotations

from typing import Optional

from ..mac.spatial import SpatialBitFusionMAC
from ..memory import MemoryHierarchy
from .base import COMPUTE_AREA_BUDGET, Accelerator

__all__ = ["BitFusionAccelerator"]


class BitFusionAccelerator(Accelerator):
    """Spatial design composed of fusion units (16 bit-bricks each).

    Bit Fusion's published tooling only optimizes the loop order of the global
    buffer (Sec. 3.1.3), which the paper points out as a limitation; this
    model therefore evaluates it with the fixed default dataflow rather than
    the full evolutionary search.
    """

    name = "BitFusion"

    def __init__(self, memory: Optional[MemoryHierarchy] = None,
                 area_budget: float = COMPUTE_AREA_BUDGET,
                 optimize_dataflow: bool = False) -> None:
        super().__init__(SpatialBitFusionMAC(), memory=memory,
                         area_budget=area_budget,
                         optimize_dataflow=optimize_dataflow)
