"""Accelerator front-ends: the proposed design and the paper's baselines."""

from .base import COMPUTE_AREA_BUDGET, Accelerator
from .bitfusion import BitFusionAccelerator
from .dnnguard import DNNGuardAccelerator
from .stripes import StripesAccelerator
from .two_in_one import TwoInOneAccelerator

__all__ = [
    "Accelerator",
    "COMPUTE_AREA_BUDGET",
    "BitFusionAccelerator",
    "StripesAccelerator",
    "TwoInOneAccelerator",
    "DNNGuardAccelerator",
]
