"""Automated accelerator optimizer (Sec. 3.3): dataflow and micro-architecture search."""

from .evolutionary import (
    EvolutionaryDataflowOptimizer,
    MicroArchCandidate,
    MicroArchitectureSearch,
    OptimizerConfig,
)
from .search_space import (
    crossover_dataflows,
    mutate_dataflow,
    normalize_coverage,
    random_dataflow,
)

__all__ = [
    "OptimizerConfig",
    "EvolutionaryDataflowOptimizer",
    "MicroArchitectureSearch",
    "MicroArchCandidate",
    "random_dataflow",
    "mutate_dataflow",
    "crossover_dataflows",
    "normalize_coverage",
]
