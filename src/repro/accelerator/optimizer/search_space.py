"""Search-space primitives for the dataflow optimizer: random generation,
mutation and crossover of dataflows (the operators of Alg. 2)."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..dataflow import DIMS, Dataflow, TEMPORAL_LEVELS
from ..workload import LayerShape

__all__ = ["random_dataflow", "mutate_dataflow", "crossover_dataflows",
           "normalize_coverage"]

#: Dimensions allowed to be unrolled spatially across the MAC array.  The
#: proposed MAC unit already tiles R/S/C internally (Sec. 3.2.2), so the NoC
#: level typically unrolls output channels, input channels and output rows.
SPATIAL_CANDIDATE_DIMS = ("K", "C", "Y", "X")


def _random_split(value: int, rng: np.random.Generator, cap: int) -> int:
    """Sample a factor in [1, min(value, cap)] biased towards divisors."""
    cap = max(1, min(value, cap))
    if cap == 1:
        return 1
    candidate = int(rng.integers(1, cap + 1))
    # Prefer factors that divide the dimension to avoid padding waste.
    divisors = [d for d in range(1, cap + 1) if value % d == 0]
    if divisors and rng.random() < 0.7:
        return int(divisors[int(rng.integers(0, len(divisors)))])
    return candidate


def normalize_coverage(dataflow: Dataflow, layer: LayerShape) -> Dataflow:
    """Adjust DRAM-level factors so every dimension is fully covered."""
    dims = layer.dims()
    for dim in DIMS:
        inner = 1
        for level in ("GlobalBuffer", "Spatial", "RegisterFile"):
            inner *= dataflow.tiling[level][dim]
        dataflow.tiling["DRAM"][dim] = max(1, math.ceil(dims[dim] / inner))
    return dataflow


def random_dataflow(layer: LayerShape, num_units: int,
                    rng: np.random.Generator,
                    rf_cap: int = 16, gb_cap: int = 64) -> Dataflow:
    """Sample a random dataflow covering ``layer`` on an array of ``num_units``."""
    dims = layer.dims()
    tiling: Dict[str, Dict[str, int]] = {level: {} for level in
                                         ("DRAM", "GlobalBuffer", "Spatial",
                                          "RegisterFile")}

    # Spatial unrolling: greedily assign factors to candidate dims while the
    # product stays within the array size.
    remaining_units = num_units
    for dim in rng.permutation(SPATIAL_CANDIDATE_DIMS):
        if remaining_units <= 1:
            tiling["Spatial"][dim] = 1
            continue
        factor = _random_split(dims[dim], rng, remaining_units)
        tiling["Spatial"][dim] = factor
        remaining_units //= max(factor, 1)

    for dim in DIMS:
        tiling["Spatial"].setdefault(dim, 1)
        spatial = tiling["Spatial"][dim]
        left = math.ceil(dims[dim] / spatial)
        rf = _random_split(left, rng, rf_cap)
        left = math.ceil(left / rf)
        gb = _random_split(left, rng, gb_cap)
        tiling["RegisterFile"][dim] = rf
        tiling["GlobalBuffer"][dim] = gb
        tiling["DRAM"][dim] = 1      # fixed up by normalize_coverage

    loop_order = {level: list(rng.permutation(DIMS)) for level in TEMPORAL_LEVELS}
    dataflow = Dataflow(tiling=tiling, loop_order=loop_order)
    return normalize_coverage(dataflow, layer)


def mutate_dataflow(dataflow: Dataflow, layer: LayerShape, num_units: int,
                    rng: np.random.Generator) -> Dataflow:
    """Alg. 2's mutation: re-draw one dimension's tiling or one loop order."""
    mutant = dataflow.copy()
    if rng.random() < 0.5:
        # Permute the loop order of one temporal level.
        level = TEMPORAL_LEVELS[int(rng.integers(0, len(TEMPORAL_LEVELS)))]
        mutant.loop_order[level] = list(rng.permutation(DIMS))
    else:
        # Re-split the tiling of one dimension.
        dim = DIMS[int(rng.integers(0, len(DIMS)))]
        dims = layer.dims()
        if dim in SPATIAL_CANDIDATE_DIMS:
            other_spatial = 1
            for d in DIMS:
                if d != dim:
                    other_spatial *= mutant.tiling["Spatial"][d]
            cap = max(1, num_units // max(other_spatial, 1))
            mutant.tiling["Spatial"][dim] = _random_split(dims[dim], rng, cap)
        left = math.ceil(dims[dim] / mutant.tiling["Spatial"][dim])
        mutant.tiling["RegisterFile"][dim] = _random_split(left, rng, 16)
        left = math.ceil(left / mutant.tiling["RegisterFile"][dim])
        mutant.tiling["GlobalBuffer"][dim] = _random_split(left, rng, 64)
    return normalize_coverage(mutant, layer)


def crossover_dataflows(parent_a: Dataflow, parent_b: Dataflow,
                        layer: LayerShape,
                        rng: np.random.Generator) -> Dataflow:
    """Alg. 2's crossover: insert one parent's loop order or per-dimension
    tiling factors into the other parent."""
    child = parent_a.copy()
    if rng.random() < 0.5:
        level = TEMPORAL_LEVELS[int(rng.integers(0, len(TEMPORAL_LEVELS)))]
        child.loop_order[level] = list(parent_b.loop_order[level])
    else:
        dim = DIMS[int(rng.integers(0, len(DIMS)))]
        for level in ("GlobalBuffer", "Spatial", "RegisterFile"):
            child.tiling[level][dim] = parent_b.tiling[level][dim]
    return normalize_coverage(child, layer)
