"""Evolutionary dataflow / micro-architecture optimizer (Alg. 2).

Mode 1 (``EvolutionaryDataflowOptimizer``) searches loop orders and tiling
factors for a fixed micro-architecture, exactly as Alg. 2 describes: a random
initial population, per-cycle selection of the top 30 % by predicted
efficiency, then crossover and mutation until the population is refilled.
Two engineering properties matter beyond the algorithm itself:

* **Determinism under sharding** — every ``optimize_layer`` call draws from
  a private RNG seeded by (config seed, layer shape, precision), never from
  a stream shared across layers, so the search result is a pure function of
  its inputs.  Process-sharded grid evaluation
  (:class:`repro.accelerator.engine.ParallelGridEvaluator`) relies on this
  to be bit-identical to the synchronous path regardless of how cells are
  chunked across workers.
* **Batched fitness** — each generation is summarized into
  :class:`~repro.accelerator.performance_model.MappingSummary` structs and
  scored through one vectorized
  :func:`~repro.accelerator.engine.batched_summary_metrics` call instead of
  a per-candidate Python ``model.evaluate`` loop, which was the search
  bottleneck once the engine removed every other repeated cost.

Mode 2 (``MicroArchitectureSearch``) wraps mode 1: it explores a predefined
design space of MAC-array sizes and buffer scalings under an area budget and
scores each candidate by its average (dataflow-optimized) efficiency across
the precisions of interest, mirroring Sec. 3.3's second search mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...quantization.precision import Precision
from ..mac.base import resolve_precision
from ..dataflow import Dataflow, default_dataflow, greedy_spatial_candidates
from ..engine import batched_summary_metrics
from ..memory import MemoryHierarchy, default_hierarchy
from ..performance_model import (
    ArrayConfig,
    InvalidMappingError,
    LayerPerformance,
    MappingSummary,
    PerformanceModel,
)
from ..workload import LayerShape
from .search_space import crossover_dataflows, mutate_dataflow, random_dataflow

__all__ = ["OptimizerConfig", "EvolutionaryDataflowOptimizer",
           "MicroArchitectureSearch", "MicroArchCandidate"]


@dataclass
class OptimizerConfig:
    """Hyper-parameters of the evolutionary search (Alg. 2 inputs)."""

    population_size: int = 24
    total_cycles: int = 8
    survivor_fraction: float = 0.3
    objective: str = "edp"         # "edp", "latency" or "energy"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.objective not in ("edp", "latency", "energy"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if not 0.0 < self.survivor_fraction <= 1.0:
            raise ValueError("survivor_fraction must be in (0, 1]")


def _score(perf: LayerPerformance, objective: str) -> float:
    """Lower is better."""
    if objective == "latency":
        return perf.total_cycles
    if objective == "energy":
        return perf.total_energy
    return perf.total_cycles * perf.total_energy


def _dataflow_key(dataflow: Dataflow) -> Tuple:
    """Hashable fingerprint of a dataflow (for fitness memoisation)."""
    return dataflow.key()


class EvolutionaryDataflowOptimizer:
    """Alg. 2: evolutionary search over dataflows for one layer."""

    def __init__(self, model: PerformanceModel,
                 config: Optional[OptimizerConfig] = None) -> None:
        self.model = model
        self.config = config or OptimizerConfig()
        # Fitness memo: the divisor-biased operators frequently resample the
        # same dataflow; re-simulating it would be pure waste.
        self._fitness_memo: Dict[Tuple, Optional[float]] = {}
        self._memo_layer_key: Optional[Tuple] = None

    # ------------------------------------------------------------------
    def _layer_rng(self, layer: LayerShape,
                   precision: Precision) -> np.random.Generator:
        """Private RNG for one (layer, precision) search.

        Seeding from (config seed, layer shape, precision) — never a stream
        shared across calls — makes ``optimize_layer`` a pure function of
        its arguments: workers of a process-sharded grid reproduce the
        synchronous results exactly, whatever the cell-to-worker chunking.
        """
        dims = layer.dims()
        entropy = [int(self.config.seed)]
        entropy += [int(dims[dim]) for dim in
                    ("N", "K", "C", "Y", "X", "R", "S")]
        entropy += [int(layer.stride), int(precision.weight_bits),
                    int(precision.act_bits)]
        return np.random.default_rng(entropy)

    def _evaluate_batch(self, layer: LayerShape,
                        dataflows: Sequence[Dataflow],
                        precision: Precision) -> List[Optional[float]]:
        """Score a whole batch of candidates in one vectorized engine call.

        Candidates are reduced to precision-independent summaries, scored
        through :func:`batched_summary_metrics` (``strict=False`` maps
        infeasible candidates to ``None`` instead of raising), and memoised
        per dataflow so resampled candidates cost nothing.
        """
        layer_key = (tuple(sorted(layer.dims().items())), precision.key)
        if layer_key != self._memo_layer_key:
            self._memo_layer_key = layer_key
            self._fitness_memo = {}

        # Deduplicate by dataflow key before summarizing: the divisor-biased
        # operators frequently resample the same dataflow, within a batch as
        # much as across batches, and each copy must cost one memo lookup.
        keys = [_dataflow_key(dataflow) for dataflow in dataflows]
        pending: "Dict[Tuple, MappingSummary]" = {}
        for key, dataflow in zip(keys, dataflows):
            if key in self._fitness_memo or key in pending:
                continue
            if not dataflow.covers(layer):
                self._fitness_memo[key] = None
                continue
            pending[key] = self.model.summarize(layer, dataflow)

        if pending:
            count = len(pending)
            summaries = list(pending.values())
            wb = np.full(count, int(precision.weight_bits), dtype=np.int64)
            ab = np.full(count, int(precision.act_bits), dtype=np.int64)
            metrics = batched_summary_metrics(
                self.model.array.mac_unit, self.model.memory,
                self.model.array.num_units, summaries, wb, ab, strict=False)
            if self.config.objective == "latency":
                batch_scores = metrics["total_cycles"]
            elif self.config.objective == "energy":
                batch_scores = metrics["total_energy"]
            else:
                batch_scores = (metrics["total_cycles"]
                                * metrics["total_energy"])
            for slot, key in enumerate(pending):
                self._fitness_memo[key] = (float(batch_scores[slot])
                                           if metrics["valid"][slot]
                                           else None)
        return [self._fitness_memo[key] for key in keys]

    def _seed_population(self, layer: LayerShape, precision: Precision,
                         rng: np.random.Generator
                         ) -> List[Tuple[float, Dataflow]]:
        # Always include the untuned default mapping so the search can only
        # improve, plus the greedy full-array mapping so large arrays never
        # regress to the default's 1024-unit spatial cap when the random
        # search budget is too small to discover a high-unrolling mapping.
        seeds = [default_dataflow(layer, self.model.array.num_units)]
        seeds += greedy_spatial_candidates(layer, self.model.array.num_units)
        scores = self._evaluate_batch(layer, seeds, precision)
        population = [(score, seed) for score, seed in zip(scores, seeds)
                      if score is not None]
        attempts = 0
        while (len(population) < self.config.population_size
               and attempts < 20 * self.config.population_size):
            batch = []
            while (len(batch) + len(population) < self.config.population_size
                   and attempts < 20 * self.config.population_size):
                attempts += 1
                batch.append(random_dataflow(layer,
                                             self.model.array.num_units, rng))
            scores = self._evaluate_batch(layer, batch, precision)
            population += [(score, candidate)
                           for score, candidate in zip(scores, batch)
                           if score is not None]
        if not population:
            raise InvalidMappingError(
                "could not find any valid dataflow for the layer")
        return population

    # ------------------------------------------------------------------
    def optimize_layer(self, layer: LayerShape,
                       precision: Union[int, Precision]
                       ) -> Tuple[Dataflow, LayerPerformance]:
        """Return the best (dataflow, performance) found by the search."""
        cfg = self.config
        precision = resolve_precision(precision)
        rng = self._layer_rng(layer, precision)
        population = self._seed_population(layer, precision, rng)

        for _ in range(cfg.total_cycles):
            population.sort(key=lambda item: item[0])
            survivors = population[:max(1, int(len(population)
                                               * cfg.survivor_fraction))]
            population = list(survivors)
            attempts = 0
            while (len(population) < cfg.population_size
                   and attempts < 20 * cfg.population_size):
                batch = []
                while (len(batch) + len(population) < cfg.population_size
                       and attempts < 20 * cfg.population_size):
                    attempts += 1
                    if len(survivors) >= 2 and rng.random() < 0.5:
                        a, b = rng.choice(len(survivors), size=2,
                                          replace=False)
                        child = crossover_dataflows(survivors[int(a)][1],
                                                    survivors[int(b)][1],
                                                    layer, rng)
                    else:
                        pick = survivors[int(rng.integers(0,
                                                          len(survivors)))][1]
                        child = mutate_dataflow(pick, layer,
                                                self.model.array.num_units,
                                                rng)
                    batch.append(child)
                scores = self._evaluate_batch(layer, batch, precision)
                population += [(score, child)
                               for score, child in zip(scores, batch)
                               if score is not None]

        population.sort(key=lambda item: item[0])
        _, best_dataflow = population[0]
        # One scalar evaluation materialises the winner's full performance
        # record; its score is bit-identical to the batched one.
        best_perf = self.model.evaluate(layer, best_dataflow, precision)
        return best_dataflow, best_perf

    def optimize_network(self, layers: Sequence[LayerShape],
                         precision: Union[int, Precision]
                         ) -> List[Tuple[Dataflow, LayerPerformance]]:
        """Optimize every layer independently (the per-workload mode of Sec. 3.3)."""
        return [self.optimize_layer(layer, precision) for layer in layers]


# ---------------------------------------------------------------------------
# Mode 2: micro-architecture + dataflow search under an area budget
# ---------------------------------------------------------------------------

@dataclass
class MicroArchCandidate:
    """One point of the micro-architecture design space with its score."""

    num_units: int
    buffer_scale: float
    compute_area: float
    average_score: float
    per_precision: Dict[int, float] = field(default_factory=dict)


class MicroArchitectureSearch:
    """Search MAC-array size and buffer scale under a compute-area budget."""

    def __init__(self, mac_unit_factory: Callable[[], object],
                 area_budget: float,
                 unit_counts: Sequence[int] = (64, 128, 256, 512),
                 buffer_scales: Sequence[float] = (0.5, 1.0, 2.0),
                 optimizer_config: Optional[OptimizerConfig] = None,
                 memory: Optional[MemoryHierarchy] = None) -> None:
        self.mac_unit_factory = mac_unit_factory
        self.area_budget = area_budget
        self.unit_counts = list(unit_counts)
        self.buffer_scales = list(buffer_scales)
        self.optimizer_config = optimizer_config or OptimizerConfig(
            population_size=12, total_cycles=3)
        self.memory = memory or default_hierarchy()

    def search(self, layers: Sequence[LayerShape],
               precisions: Sequence[int]) -> List[MicroArchCandidate]:
        """Score every feasible design point; best (lowest score) first."""
        candidates: List[MicroArchCandidate] = []
        for num_units in self.unit_counts:
            mac_unit = self.mac_unit_factory()
            compute_area = mac_unit.area * num_units
            if compute_area > self.area_budget:
                continue
            for buffer_scale in self.buffer_scales:
                memory = self.memory.scaled(buffer_scale=buffer_scale)
                array = ArrayConfig(mac_unit=mac_unit, num_units=num_units)
                model = PerformanceModel(array, memory)
                optimizer = EvolutionaryDataflowOptimizer(model,
                                                          self.optimizer_config)
                per_precision: Dict[int, float] = {}
                for precision in precisions:
                    scores = []
                    for layer in layers:
                        _, perf = optimizer.optimize_layer(layer, precision)
                        scores.append(_score(perf, self.optimizer_config.objective))
                    per_precision[int(precision)] = float(np.sum(scores))
                average = float(np.mean(list(per_precision.values())))
                candidates.append(MicroArchCandidate(
                    num_units=num_units, buffer_scale=buffer_scale,
                    compute_area=compute_area, average_score=average,
                    per_precision=per_precision))
        candidates.sort(key=lambda c: c.average_score)
        return candidates
