"""Precision-scalable accelerator modelling stack (Sec. 3 of the paper).

Layering, from the bottom up:

* :mod:`repro.accelerator.mac` — MAC-unit cost models (temporal, spatial,
  the proposed spatial-temporal unit, and a fixed-point unit),
* :mod:`repro.accelerator.memory` — the shared DRAM / global-buffer /
  register-file hierarchy,
* :mod:`repro.accelerator.workload` — layer shapes of the six evaluated
  networks,
* :mod:`repro.accelerator.dataflow` — tiling + loop-order dataflow
  descriptions,
* :mod:`repro.accelerator.performance_model` — the analytical
  latency/energy predictor,
* :mod:`repro.accelerator.optimizer` — the evolutionary dataflow /
  micro-architecture search (Alg. 2),
* :mod:`repro.accelerator.accelerators` — complete designs: Stripes,
  Bit Fusion, DNNGuard and the 2-in-1 Accelerator.
"""

from .accelerators import (
    Accelerator,
    BitFusionAccelerator,
    COMPUTE_AREA_BUDGET,
    DNNGuardAccelerator,
    StripesAccelerator,
    TwoInOneAccelerator,
)
from .dataflow import (
    DIMS,
    Dataflow,
    default_dataflow,
    greedy_spatial_candidates,
    greedy_spatial_dataflow,
)
from .engine import (
    CacheStats,
    EvaluationEngine,
    GridResult,
    ParallelGridEvaluator,
    batched_summary_metrics,
    layer_shape_key,
)
from .engine_store import CACHE_SCHEMA_VERSION, EngineStore, model_constants_digest
from .mac import (
    AreaBreakdown,
    FixedPointMAC,
    MACUnitModel,
    SpatialBitFusionMAC,
    SpatialTemporalMAC,
    TemporalBitSerialMAC,
)
from .memory import MemoryHierarchy, MemoryLevel, default_hierarchy
from .optimizer import (
    EvolutionaryDataflowOptimizer,
    MicroArchitectureSearch,
    OptimizerConfig,
)
from .performance_model import (
    ArrayConfig,
    InvalidMappingError,
    LayerPerformance,
    MappingSummary,
    NetworkPerformance,
    PerformanceModel,
)
from .workload import LayerShape, available_workloads, network_layers

__all__ = [
    "MACUnitModel",
    "AreaBreakdown",
    "TemporalBitSerialMAC",
    "SpatialBitFusionMAC",
    "SpatialTemporalMAC",
    "FixedPointMAC",
    "MemoryLevel",
    "MemoryHierarchy",
    "default_hierarchy",
    "LayerShape",
    "network_layers",
    "available_workloads",
    "DIMS",
    "Dataflow",
    "default_dataflow",
    "greedy_spatial_dataflow",
    "greedy_spatial_candidates",
    "CacheStats",
    "EvaluationEngine",
    "GridResult",
    "ParallelGridEvaluator",
    "batched_summary_metrics",
    "layer_shape_key",
    "CACHE_SCHEMA_VERSION",
    "EngineStore",
    "model_constants_digest",
    "ArrayConfig",
    "PerformanceModel",
    "LayerPerformance",
    "NetworkPerformance",
    "MappingSummary",
    "InvalidMappingError",
    "OptimizerConfig",
    "EvolutionaryDataflowOptimizer",
    "MicroArchitectureSearch",
    "Accelerator",
    "COMPUTE_AREA_BUDGET",
    "BitFusionAccelerator",
    "StripesAccelerator",
    "TwoInOneAccelerator",
    "DNNGuardAccelerator",
]
