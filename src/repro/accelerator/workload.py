"""Accelerator workloads: layer shapes of the six evaluated networks.

The accelerator evaluation (Figs. 2, 7-10) runs on the *canonical* layer
dimensions of WideResNet-32 / ResNet-18 on CIFAR (32x32 inputs) and
AlexNet / VGG-16 / ResNet-18 / ResNet-50 on ImageNet (224x224 inputs).  Those
dimensions are architecture facts, independent of the scaled-down numpy
models used on the algorithm side, so they are generated here directly from
each network's structural description.

A convolution layer is described in the output-centric Eyeriss notation:
``N`` batch, ``K`` output channels, ``C`` input channels, ``Y x X`` output
feature map, ``R x S`` kernel, plus the stride.  Fully connected layers are
represented as 1x1 convolutions on a 1x1 feature map.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

__all__ = ["LayerShape", "network_layers", "available_workloads",
           "WORKLOAD_BUILDERS"]


@dataclass(frozen=True)
class LayerShape:
    """Dimensions of one convolutional (or FC) layer."""

    name: str
    n: int          # batch
    k: int          # output channels
    c: int          # input channels
    y: int          # output height
    x: int          # output width
    r: int          # kernel height
    s: int          # kernel width
    stride: int = 1

    def __post_init__(self) -> None:
        for field_name in ("n", "k", "c", "y", "x", "r", "s", "stride"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1 in layer {self.name!r}")

    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Total multiply-accumulates of the layer."""
        return self.n * self.k * self.c * self.y * self.x * self.r * self.s

    @property
    def input_height(self) -> int:
        return (self.y - 1) * self.stride + self.r

    @property
    def input_width(self) -> int:
        return (self.x - 1) * self.stride + self.s

    def tensor_sizes(self) -> Dict[str, int]:
        """Element counts of weights, inputs and outputs."""
        return {
            "weights": self.k * self.c * self.r * self.s,
            "inputs": self.n * self.c * self.input_height * self.input_width,
            "outputs": self.n * self.k * self.y * self.x,
        }

    def dims(self) -> Dict[str, int]:
        return {"N": self.n, "K": self.k, "C": self.c, "Y": self.y,
                "X": self.x, "R": self.r, "S": self.s}

    def with_batch(self, n: int) -> "LayerShape":
        return replace(self, n=n)


# ---------------------------------------------------------------------------
# Network builders
# ---------------------------------------------------------------------------

def _conv(name: str, k: int, c: int, out: int, r: int, stride: int = 1,
          n: int = 1) -> LayerShape:
    return LayerShape(name=name, n=n, k=k, c=c, y=out, x=out, r=r, s=r,
                      stride=stride)


def _fc(name: str, k: int, c: int, n: int = 1) -> LayerShape:
    return LayerShape(name=name, n=n, k=k, c=c, y=1, x=1, r=1, s=1)


def _resnet_basic_stage(prefix: str, blocks: int, c_in: int, c_out: int,
                        feature: int, first_stride: int) -> List[LayerShape]:
    layers: List[LayerShape] = []
    current = c_in
    out = feature
    for block in range(blocks):
        stride = first_stride if block == 0 else 1
        layers.append(_conv(f"{prefix}.{block}.conv1", c_out, current, out, 3,
                            stride=stride))
        layers.append(_conv(f"{prefix}.{block}.conv2", c_out, c_out, out, 3))
        if stride != 1 or current != c_out:
            layers.append(_conv(f"{prefix}.{block}.downsample", c_out, current,
                                out, 1, stride=stride))
        current = c_out
    return layers


def _resnet_bottleneck_stage(prefix: str, blocks: int, c_in: int, width: int,
                             feature: int, first_stride: int) -> List[LayerShape]:
    layers: List[LayerShape] = []
    current = c_in
    expansion = 4
    out = feature
    for block in range(blocks):
        stride = first_stride if block == 0 else 1
        layers.append(_conv(f"{prefix}.{block}.conv1", width, current, out, 1))
        layers.append(_conv(f"{prefix}.{block}.conv2", width, width, out, 3,
                            stride=stride))
        layers.append(_conv(f"{prefix}.{block}.conv3", width * expansion, width,
                            out, 1))
        if stride != 1 or current != width * expansion:
            layers.append(_conv(f"{prefix}.{block}.downsample", width * expansion,
                                current, out, 1, stride=stride))
        current = width * expansion
    return layers


def _resnet18_cifar() -> List[LayerShape]:
    layers = [_conv("stem", 64, 3, 32, 3)]
    layers += _resnet_basic_stage("layer1", 2, 64, 64, 32, 1)
    layers += _resnet_basic_stage("layer2", 2, 64, 128, 16, 2)
    layers += _resnet_basic_stage("layer3", 2, 128, 256, 8, 2)
    layers += _resnet_basic_stage("layer4", 2, 256, 512, 4, 2)
    layers.append(_fc("fc", 10, 512))
    return layers


def _wide_resnet32_cifar() -> List[LayerShape]:
    widen = 10
    n = 4                         # (32 - 4) // 6 blocks per group
    layers = [_conv("stem", 16, 3, 32, 3)]
    layers += _resnet_basic_stage("group1", n, 16, 16 * widen, 32, 1)
    layers += _resnet_basic_stage("group2", n, 16 * widen, 32 * widen, 16, 2)
    layers += _resnet_basic_stage("group3", n, 32 * widen, 64 * widen, 8, 2)
    layers.append(_fc("fc", 10, 64 * widen))
    return layers


def _resnet18_imagenet() -> List[LayerShape]:
    layers = [LayerShape("stem", 1, 64, 3, 112, 112, 7, 7, stride=2)]
    layers += _resnet_basic_stage("layer1", 2, 64, 64, 56, 1)
    layers += _resnet_basic_stage("layer2", 2, 64, 128, 28, 2)
    layers += _resnet_basic_stage("layer3", 2, 128, 256, 14, 2)
    layers += _resnet_basic_stage("layer4", 2, 256, 512, 7, 2)
    layers.append(_fc("fc", 1000, 512))
    return layers


def _resnet50_imagenet() -> List[LayerShape]:
    layers = [LayerShape("stem", 1, 64, 3, 112, 112, 7, 7, stride=2)]
    layers += _resnet_bottleneck_stage("layer1", 3, 64, 64, 56, 1)
    layers += _resnet_bottleneck_stage("layer2", 4, 256, 128, 28, 2)
    layers += _resnet_bottleneck_stage("layer3", 6, 512, 256, 14, 2)
    layers += _resnet_bottleneck_stage("layer4", 3, 1024, 512, 7, 2)
    layers.append(_fc("fc", 1000, 2048))
    return layers


def _alexnet_imagenet() -> List[LayerShape]:
    return [
        LayerShape("conv1", 1, 64, 3, 55, 55, 11, 11, stride=4),
        LayerShape("conv2", 1, 192, 64, 27, 27, 5, 5),
        _conv("conv3", 384, 192, 13, 3),
        _conv("conv4", 256, 384, 13, 3),
        _conv("conv5", 256, 256, 13, 3),
        _fc("fc6", 4096, 256 * 6 * 6),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 1000, 4096),
    ]


def _vgg16_imagenet() -> List[LayerShape]:
    plan: List[Tuple[int, int, int]] = [
        (64, 3, 224), (64, 64, 224),
        (128, 64, 112), (128, 128, 112),
        (256, 128, 56), (256, 256, 56), (256, 256, 56),
        (512, 256, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers = [_conv(f"conv{i + 1}", k, c, out, 3)
              for i, (k, c, out) in enumerate(plan)]
    layers += [_fc("fc1", 4096, 512 * 7 * 7), _fc("fc2", 4096, 4096),
               _fc("fc3", 1000, 4096)]
    return layers


WORKLOAD_BUILDERS = {
    ("resnet18", "cifar10"): _resnet18_cifar,
    ("wide_resnet32", "cifar10"): _wide_resnet32_cifar,
    ("resnet18", "imagenet"): _resnet18_imagenet,
    ("resnet50", "imagenet"): _resnet50_imagenet,
    ("alexnet", "imagenet"): _alexnet_imagenet,
    ("vgg16", "imagenet"): _vgg16_imagenet,
}


def available_workloads() -> List[Tuple[str, str]]:
    return sorted(WORKLOAD_BUILDERS)


def network_layers(network: str, dataset: str, batch: int = 1) -> List[LayerShape]:
    """Return the layer list of one of the paper's six accelerator workloads."""
    key = (network, dataset)
    if key not in WORKLOAD_BUILDERS:
        raise KeyError(f"unknown workload {key}; available: {available_workloads()}")
    layers = WORKLOAD_BUILDERS[key]()
    if batch != 1:
        layers = [layer.with_batch(batch) for layer in layers]
    return layers
