"""Analytical latency/energy model for a (layer, dataflow, precision) triple.

This plays the role of the DNN-Chip-Predictor-style performance predictor the
paper plugs into its accelerator optimizer (Sec. 3.3): given a layer shape,
a dataflow (tiling + loop orders) and an execution precision it estimates

* compute cycles — padded MAC count divided by the array's effective
  MACs/cycle at that precision (from the MAC-unit model),
* memory traffic and stall cycles at the DRAM and global-buffer boundaries,
  using a loop-order-aware reuse analysis (a tensor's tile is *not* refetched
  across iterations of irrelevant loops that sit inside all of its relevant
  loops — the classic weight/output/input-stationary distinction), and
* energy — MAC energy plus per-level traffic energy.

The model intentionally assumes perfect double buffering (total cycles are
the max of compute and per-boundary transfer cycles), which is the same
idealisation the paper's cycle-accurate simulator approaches with its
optimized dataflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..quantization.precision import Precision
from .dataflow import DIMS, Dataflow, TENSOR_DIMS
from .mac.base import MACUnitModel, resolve_precision
from .memory import MemoryHierarchy, default_hierarchy
from .workload import LayerShape

__all__ = ["ArrayConfig", "LayerPerformance", "NetworkPerformance",
           "InvalidMappingError", "MappingSummary", "PerformanceModel"]

#: Partial sums are kept at this width in on-chip storage.
PARTIAL_SUM_BITS = 32


class InvalidMappingError(ValueError):
    """Raised when a dataflow cannot be mapped onto the micro-architecture."""


@dataclass(frozen=True)
class ArrayConfig:
    """MAC array micro-architecture: unit model, unit count, clock."""

    mac_unit: MACUnitModel
    num_units: int
    frequency_hz: float = 500e6

    @property
    def compute_area(self) -> float:
        return self.mac_unit.area * self.num_units


@dataclass
class LayerPerformance:
    """Per-layer results produced by :class:`PerformanceModel.evaluate`."""

    layer: LayerShape
    precision: Precision
    compute_cycles: float
    memory_cycles: Dict[str, float]
    traffic_bits: Dict[str, Dict[str, float]]      # boundary -> tensor -> bits
    energy_breakdown: Dict[str, float]             # component -> energy
    spatial_utilization: float
    mapping_efficiency: float                      # 1 - padding waste

    @property
    def total_cycles(self) -> float:
        return max(self.compute_cycles, *self.memory_cycles.values()) \
            if self.memory_cycles else self.compute_cycles

    @property
    def total_energy(self) -> float:
        return float(sum(self.energy_breakdown.values()))

    def latency_seconds(self, frequency_hz: float) -> float:
        return self.total_cycles / frequency_hz

    @property
    def is_memory_bound(self) -> bool:
        return self.total_cycles > self.compute_cycles


@dataclass
class NetworkPerformance:
    """Aggregate over the layers of a network."""

    layers: List[LayerPerformance]
    frequency_hz: float

    @property
    def total_cycles(self) -> float:
        return float(sum(p.total_cycles for p in self.layers))

    @property
    def total_energy(self) -> float:
        return float(sum(p.total_energy for p in self.layers))

    @property
    def latency_seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    @property
    def throughput_fps(self) -> float:
        return 1.0 / self.latency_seconds if self.latency_seconds > 0 else 0.0

    def energy_breakdown(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for perf in self.layers:
            for component, value in perf.energy_breakdown.items():
                totals[component] = totals.get(component, 0.0) + value
        return totals

    @property
    def energy_efficiency(self) -> float:
        """Inferences per unit energy (higher is better)."""
        return 1.0 / self.total_energy if self.total_energy > 0 else 0.0


@dataclass(frozen=True)
class MappingSummary:
    """Precision-independent facts of one (layer, dataflow) mapping.

    Everything the performance model needs that does *not* depend on the
    execution precision is collected here once, so the evaluation engine can
    evaluate the same mapping at every precision of a set with pure NumPy
    arithmetic (bits-per-element scaling, MAC-rate division, energy sums)
    instead of re-running the reuse analysis per precision.
    """

    padded_macs: float
    spatial_units: int
    mapping_efficiency: float
    #: boundary -> tensor -> elements moved (tile x refetch x outer loops).
    moved_elements: Dict[str, Dict[str, float]]
    #: boundary -> whether output traffic is doubled by a split reduction.
    reduction_doubled: Dict[str, bool]
    #: level -> (weight, activation, partial-sum) tile element counts used by
    #: the capacity checks.
    footprint_elements: Dict[str, tuple]


class PerformanceModel:
    """Evaluate dataflows on a fixed micro-architecture."""

    def __init__(self, array: ArrayConfig,
                 memory: Optional[MemoryHierarchy] = None) -> None:
        self.array = array
        self.memory = memory or default_hierarchy()

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def check_mapping(self, layer: LayerShape, dataflow: Dataflow,
                      precision: Union[int, Precision]) -> None:
        """Raise :class:`InvalidMappingError` if the mapping is infeasible."""
        precision = resolve_precision(precision)
        if not dataflow.covers(layer):
            raise InvalidMappingError("tiling factors do not cover the layer")
        if dataflow.spatial_units() > self.array.num_units:
            raise InvalidMappingError(
                f"spatial unrolling needs {dataflow.spatial_units()} units, "
                f"array has {self.array.num_units}")
        weight_bits = int(precision.weight_bits)
        act_bits = int(precision.act_bits)
        gb_footprint = dataflow.footprint_bits("GlobalBuffer", weight_bits,
                                               act_bits, PARTIAL_SUM_BITS)
        if gb_footprint > self.memory.global_buffer.capacity_bits:
            raise InvalidMappingError("global-buffer tile exceeds its capacity")
        rf_footprint = dataflow.footprint_bits("RegisterFile", weight_bits,
                                               act_bits, PARTIAL_SUM_BITS)
        if rf_footprint > self.memory.register_file.capacity_bits:
            raise InvalidMappingError("register-file tile exceeds its capacity")

    def is_valid(self, layer: LayerShape, dataflow: Dataflow,
                 precision: Union[int, Precision]) -> bool:
        try:
            self.check_mapping(layer, dataflow, precision)
        except InvalidMappingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Reuse analysis
    # ------------------------------------------------------------------
    @staticmethod
    def _refetch_factor(dataflow: Dataflow, level: str, tensor: str) -> float:
        """Times a tensor tile is re-read across one full loop nest at ``level``.

        Relevant loops always multiply (each distinct tile is read once).
        An irrelevant loop multiplies only if it is *outer* to at least one
        relevant loop with a factor > 1 — if all relevant loops are outside
        it, the tile stays resident below while the irrelevant loop spins.
        """
        relevant = TENSOR_DIMS[tensor]
        order = dataflow.loop_order[level]
        factors = dataflow.tiling[level]
        refetch = 1.0
        for position, dim in enumerate(order):
            factor = factors[dim]
            if factor <= 1:
                continue
            if dim in relevant:
                refetch *= factor
                continue
            inner_relevant = any(
                factors[inner_dim] > 1 and inner_dim in relevant
                for inner_dim in order[position + 1:])
            if inner_relevant:
                refetch *= factor
        return refetch

    @staticmethod
    def _reduction_refetch(dataflow: Dataflow, level: str) -> float:
        """Extra factor for partial-sum spill/refill of outputs at ``level``."""
        reduction_dims = ("C", "R", "S")
        order = dataflow.loop_order[level]
        factors = dataflow.tiling[level]
        refetch = 1.0
        output_dims = TENSOR_DIMS["outputs"]
        for position, dim in enumerate(order):
            factor = factors[dim]
            if factor <= 1 or dim not in reduction_dims:
                continue
            inner_relevant = any(
                factors[inner_dim] > 1 and inner_dim in output_dims
                for inner_dim in order[position + 1:])
            if inner_relevant:
                refetch *= factor
        return refetch

    def _boundary_traffic(self, dataflow: Dataflow, precision: Precision,
                          boundary: str) -> Dict[str, float]:
        """Bits moved across ``boundary`` ("DRAM" or "GlobalBuffer")."""
        weight_bits = int(precision.weight_bits)
        act_bits = int(precision.act_bits)
        bits_per_element = {"weights": weight_bits, "inputs": act_bits}

        if boundary == "DRAM":
            inner_level = "GlobalBuffer"
            outer_iterations = 1.0
            bits_per_element["outputs"] = act_bits
        else:
            inner_level = "Spatial"
            outer_iterations = 1.0
            for dim in DIMS:
                outer_iterations *= dataflow.tiling["DRAM"][dim]
            bits_per_element["outputs"] = PARTIAL_SUM_BITS

        traffic: Dict[str, float] = {}
        for tensor in ("weights", "inputs", "outputs"):
            tile = dataflow.tile_elements(tensor, inner_level)
            refetch = self._refetch_factor(dataflow, boundary, tensor)
            bits = tile * refetch * outer_iterations * bits_per_element[tensor]
            if tensor == "outputs":
                # Read-modify-write when the reduction is split above the tile.
                reduction = self._reduction_refetch(dataflow, boundary)
                if reduction > 1:
                    bits *= 2.0
            traffic[tensor] = bits
        return traffic

    # ------------------------------------------------------------------
    # Precision-independent mapping summary (consumed by the engine)
    # ------------------------------------------------------------------
    def summarize(self, layer: LayerShape, dataflow: Dataflow) -> MappingSummary:
        """Collect every precision-independent quantity of a mapping.

        The summary plus a (weight_bits, act_bits) pair reproduces exactly
        what :meth:`evaluate` computes; see
        :mod:`repro.accelerator.engine` for the batched arithmetic.
        """
        padded = dataflow.padded_dims(layer)
        padded_macs = 1.0
        for dim in DIMS:
            padded_macs *= padded[dim]

        outer_iterations = 1.0
        for dim in DIMS:
            outer_iterations *= dataflow.tiling["DRAM"][dim]

        moved: Dict[str, Dict[str, float]] = {}
        doubled: Dict[str, bool] = {}
        for boundary, inner_level, outer in (("DRAM", "GlobalBuffer", 1.0),
                                             ("GlobalBuffer", "Spatial",
                                              outer_iterations)):
            moved[boundary] = {
                tensor: (dataflow.tile_elements(tensor, inner_level)
                         * self._refetch_factor(dataflow, boundary, tensor)
                         * outer)
                for tensor in ("weights", "inputs", "outputs")
            }
            doubled[boundary] = self._reduction_refetch(dataflow, boundary) > 1

        footprints = {
            level: (dataflow.tile_elements("weights", level),
                    dataflow.tile_elements("inputs", level),
                    dataflow.tile_elements("outputs", level))
            for level in ("GlobalBuffer", "RegisterFile")
        }

        return MappingSummary(
            padded_macs=padded_macs,
            spatial_units=dataflow.spatial_units(),
            mapping_efficiency=layer.macs / padded_macs,
            moved_elements=moved,
            reduction_doubled=doubled,
            footprint_elements=footprints,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, layer: LayerShape, dataflow: Dataflow,
                 precision: Union[int, Precision]) -> LayerPerformance:
        precision = resolve_precision(precision)
        self.check_mapping(layer, dataflow, precision)

        padded = dataflow.padded_dims(layer)
        padded_macs = 1.0
        for dim in DIMS:
            padded_macs *= padded[dim]
        mapping_efficiency = layer.macs / padded_macs

        spatial_units = dataflow.spatial_units()
        spatial_utilization = spatial_units / self.array.num_units
        macs_per_cycle = self.array.mac_unit.macs_per_cycle(precision)
        compute_cycles = padded_macs / (spatial_units * macs_per_cycle)

        dram_traffic = self._boundary_traffic(dataflow, precision, "DRAM")
        gb_traffic = self._boundary_traffic(dataflow, precision, "GlobalBuffer")

        dram = self.memory.dram
        gb = self.memory.global_buffer
        rf = self.memory.register_file

        memory_cycles = {
            "DRAM": dram.transfer_cycles(sum(dram_traffic.values())),
            "GlobalBuffer": gb.transfer_cycles(sum(gb_traffic.values())),
        }

        weight_bits = int(precision.weight_bits)
        act_bits = int(precision.act_bits)
        rf_bits_per_mac = weight_bits + act_bits + 2 * PARTIAL_SUM_BITS

        energy = {
            "MAC": padded_macs * self.array.mac_unit.energy_per_mac(precision),
            "DRAM": dram.access_energy(sum(dram_traffic.values())),
            "GlobalBuffer": gb.access_energy(sum(gb_traffic.values())
                                             + sum(dram_traffic.values())),
            "RegisterFile": rf.access_energy(padded_macs * rf_bits_per_mac),
        }

        return LayerPerformance(
            layer=layer,
            precision=precision,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            traffic_bits={"DRAM": dram_traffic, "GlobalBuffer": gb_traffic},
            energy_breakdown=energy,
            spatial_utilization=spatial_utilization,
            mapping_efficiency=mapping_efficiency,
        )

    def evaluate_network(self, layers: Sequence[LayerShape],
                         dataflows: Sequence[Dataflow],
                         precision: Union[int, Precision]) -> NetworkPerformance:
        if len(layers) != len(dataflows):
            raise ValueError("need exactly one dataflow per layer")
        results = [self.evaluate(layer, dataflow, precision)
                   for layer, dataflow in zip(layers, dataflows)]
        return NetworkPerformance(layers=results,
                                  frequency_hz=self.array.frequency_hz)
