"""Dataflow representation: per-level loop orders and tiling factors.

Following the Eyeriss taxonomy the paper builds on (Sec. 3.1.3), a dataflow
is described by how each of the seven convolution dimensions

    N (batch), K (output channels), C (input channels),
    Y, X (output feature map), R, S (kernel)

is tiled across the storage hierarchy and in which order the temporal loops
at each level iterate.  Four levels are modelled:

* ``DRAM``          — outer temporal loops (tiles streamed from off-chip),
* ``GlobalBuffer``  — temporal loops over tiles held in the on-chip SRAM,
* ``Spatial``       — dimensions unrolled across the MAC array (the NoC level
  of Eyeriss; these factors consume MAC units, not cycles),
* ``RegisterFile``  — innermost temporal loops over data held next to a unit.

The product of a dimension's factors across all levels must cover the layer
dimension (rounding up models padding / under-utilisation).  Loop order
matters at the two temporal buffer levels (DRAM, GlobalBuffer) where it
determines which tensor stays resident while others stream (see
:mod:`repro.accelerator.performance_model`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .workload import LayerShape

__all__ = ["DIMS", "LEVELS", "TEMPORAL_LEVELS", "Dataflow", "default_dataflow",
           "greedy_spatial_dataflow", "greedy_spatial_candidates"]

DIMS: Sequence[str] = ("N", "K", "C", "Y", "X", "R", "S")
LEVELS: Sequence[str] = ("DRAM", "GlobalBuffer", "Spatial", "RegisterFile")
TEMPORAL_LEVELS: Sequence[str] = ("DRAM", "GlobalBuffer")

#: Which dimensions index each operand tensor (used for reuse analysis).
TENSOR_DIMS: Dict[str, frozenset] = {
    "weights": frozenset({"K", "C", "R", "S"}),
    "inputs": frozenset({"N", "C", "Y", "X", "R", "S"}),
    "outputs": frozenset({"N", "K", "Y", "X"}),
}


@dataclass
class Dataflow:
    """Tiling factors per level plus loop orders for the temporal levels."""

    tiling: Dict[str, Dict[str, int]]
    loop_order: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for level in LEVELS:
            self.tiling.setdefault(level, {})
            for dim in DIMS:
                factor = int(self.tiling[level].get(dim, 1))
                if factor < 1:
                    raise ValueError(f"tiling factor for {dim} at {level} must be >= 1")
                self.tiling[level][dim] = factor
        for level in TEMPORAL_LEVELS:
            order = self.loop_order.get(level) or list(DIMS)
            if sorted(order) != sorted(DIMS):
                raise ValueError(f"loop order at {level} must be a permutation of {DIMS}")
            self.loop_order[level] = list(order)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def factor(self, level: str, dim: str) -> int:
        return self.tiling[level][dim]

    def total_factor(self, dim: str) -> int:
        product = 1
        for level in LEVELS:
            product *= self.tiling[level][dim]
        return product

    def inner_tile(self, dim: str, level: str) -> int:
        """Product of factors at ``level`` and all levels inner to it."""
        index = LEVELS.index(level)
        product = 1
        for inner_level in LEVELS[index:]:
            product *= self.tiling[inner_level][dim]
        return product

    def spatial_units(self) -> int:
        """Number of MAC units consumed by the spatial unrolling."""
        product = 1
        for dim in DIMS:
            product *= self.tiling["Spatial"][dim]
        return product

    # ------------------------------------------------------------------
    # Validation against a layer
    # ------------------------------------------------------------------
    def covers(self, layer: LayerShape) -> bool:
        dims = layer.dims()
        return all(self.total_factor(dim) >= dims[dim] for dim in DIMS)

    def padded_dims(self, layer: LayerShape) -> Dict[str, int]:
        """Layer dimensions rounded up to the mapped iteration space."""
        dims = layer.dims()
        return {dim: max(self.total_factor(dim), dims[dim]) for dim in DIMS}

    def utilization_loss(self, layer: LayerShape) -> float:
        """Fraction of mapped iterations that are padding (wasted work)."""
        dims = layer.dims()
        real = 1
        padded = 1
        for dim in DIMS:
            real *= dims[dim]
            padded *= max(self.total_factor(dim), dims[dim])
        return 1.0 - real / padded

    # ------------------------------------------------------------------
    # Tile footprints (bits) for capacity checks and traffic accounting
    # ------------------------------------------------------------------
    def tile_elements(self, tensor: str, level: str) -> int:
        """Elements of ``tensor`` covered by one tile at ``level`` (inclusive)."""
        relevant = TENSOR_DIMS[tensor]
        product = 1
        for dim in DIMS:
            if dim in relevant:
                product *= self.inner_tile(dim, level)
        return product

    def footprint_bits(self, level: str, weight_bits: int, act_bits: int,
                       partial_sum_bits: int = 32) -> float:
        """Storage needed at ``level`` for one tile of every operand."""
        return (self.tile_elements("weights", level) * weight_bits
                + self.tile_elements("inputs", level) * act_bits
                + self.tile_elements("outputs", level) * partial_sum_bits)

    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Canonical hashable fingerprint of this dataflow.

        Two dataflows with equal keys describe the same mapping (identical
        tiling at every level and identical temporal loop orders), so the
        key is safe to memoise fitness scores and cached summaries on.
        """
        return (tuple(tuple(sorted(self.tiling[level].items()))
                      for level in LEVELS),
                tuple(tuple(self.loop_order[level])
                      for level in TEMPORAL_LEVELS))

    # ------------------------------------------------------------------
    def copy(self) -> "Dataflow":
        return Dataflow(tiling={lvl: dict(factors) for lvl, factors in self.tiling.items()},
                        loop_order={lvl: list(order) for lvl, order in self.loop_order.items()})

    def describe(self) -> str:
        """Human-readable one-line summary (used by the optimizer logs)."""
        parts = []
        for level in LEVELS:
            factors = {d: f for d, f in self.tiling[level].items() if f > 1}
            parts.append(f"{level}:{factors if factors else '{}'}")
        return " | ".join(parts)


# ---------------------------------------------------------------------------
# Default (untuned) dataflow
# ---------------------------------------------------------------------------

def _split_factor(total: int, inner_budget: int) -> int:
    """Largest factor <= inner_budget used at the inner level for ``total``."""
    return max(1, min(total, inner_budget))


def default_dataflow(layer: LayerShape, num_units: int,
                     rf_tile: int = 4, spatial_cap: int = 1024) -> Dataflow:
    """A reasonable output-stationary default mapping.

    Spatially unrolls output channels (K) and input channels (C) across the
    MAC array (up to ``spatial_cap`` units — a fixed NoC mapping of the kind
    the paper attributes to prior precision-scalable accelerators), keeps
    kernel loops plus a small output-row tile in the register file, and
    streams the remaining iterations from the global buffer / DRAM with an
    output-stationary loop order.  This is the baseline that the evolutionary
    optimizer improves on.
    """
    dims = layer.dims()

    budget = min(num_units, spatial_cap)
    spatial_k = _split_factor(dims["K"], min(32, budget))
    spatial_c = _split_factor(dims["C"], max(1, budget // spatial_k))

    rf = {"R": dims["R"], "S": dims["S"], "X": _split_factor(dims["X"], rf_tile)}

    def remaining(dim: str, *used: int) -> int:
        product = 1
        for factor in used:
            product *= factor
        return math.ceil(dims[dim] / product)

    gb = {
        "K": remaining("K", spatial_k),
        "C": remaining("C", spatial_c),
        "Y": _split_factor(dims["Y"], 8),
        "X": remaining("X", rf["X"]),
        "N": dims["N"],
    }
    dram = {
        "Y": remaining("Y", gb["Y"]),
    }

    tiling = {
        "DRAM": dram,
        "GlobalBuffer": gb,
        "Spatial": {"K": spatial_k, "C": spatial_c},
        "RegisterFile": rf,
    }
    loop_order = {
        # Output-stationary-ish: channels stream while outputs stay resident.
        "DRAM": ["N", "K", "Y", "X", "C", "R", "S"],
        "GlobalBuffer": ["N", "Y", "X", "K", "C", "R", "S"],
    }
    return Dataflow(tiling=tiling, loop_order=loop_order)


def _divisors(value: int, cap: int) -> List[int]:
    """Divisors of ``value`` that are <= ``cap``, ascending."""
    cap = min(value, cap)
    return [d for d in range(1, cap + 1) if value % d == 0]


def _split_candidates(value: int, cap: int) -> List[int]:
    """Low-padding spatial factors for a dimension of size ``value``.

    Divisors cover the dimension exactly; the ``ceil(value / m)`` factors
    cover it in ``m`` chunks with minimal padding, which matters on arrays
    whose unit count is not a clean multiple of the layer dimensions (e.g. a
    1962-unit array cannot be filled by power-of-two splits alone).
    """
    factors = set(_divisors(value, cap))
    for chunks in range(1, min(value, 64) + 1):
        factor = math.ceil(value / chunks)
        if factor <= cap:
            factors.add(factor)
    return sorted(factors)


#: Global-buffer loop orders for the classic stationarity patterns: the
#: output-stationary order streams weights per output tile, the
#: weight-stationary order keeps weight tiles resident while outputs spin,
#: and the input-stationary order iterates output channels innermost so the
#: input tile stays resident — the winning reuse pattern for the
#: memory-bound low-precision cells whose input traffic dominates.
_GB_LOOP_ORDERS: Dict[str, List[str]] = {
    "output": ["N", "Y", "X", "K", "C", "R", "S"],
    "weight": ["N", "K", "C", "R", "S", "Y", "X"],
    "input": ["N", "C", "Y", "X", "R", "S", "K"],
}


def greedy_spatial_dataflow(layer: LayerShape, num_units: int,
                            rf_tile: int = 4,
                            stationarity: str = "output") -> Dataflow:
    """A throughput-oriented mapping that fills the whole MAC array.

    ``default_dataflow`` models the fixed NoC of prior precision-scalable
    accelerators and caps its spatial unrolling at 1024 units, which leaves
    large arrays (the 2-in-1 array holds over 2000 spatial-temporal units
    under the shared area budget) half idle on layers whose K x C product
    does not decompose along the default split.  This mapping instead
    enumerates divisor pairs of (K, C) — optionally extended along Y — and
    picks the combination using the most MAC units, so the evolutionary
    optimizer can seed its population with a mapping that is compute-optimal
    even before any search.  ``stationarity`` selects the global-buffer loop
    order ("output" or "weight"); seeding both lets the search start from
    whichever reuse pattern suits the layer.
    """
    if stationarity not in _GB_LOOP_ORDERS:
        raise ValueError(f"unknown stationarity {stationarity!r}; "
                         f"choose from {sorted(_GB_LOOP_ORDERS)}")
    spatial_k, spatial_c, spatial_y = _best_spatial_splits(layer, num_units)[0]
    return _build_greedy_dataflow(layer, spatial_k, spatial_c, spatial_y,
                                  rf_tile, stationarity)


def _best_spatial_splits(layer: LayerShape, num_units: int,
                         limit: int = 4) -> List[tuple]:
    """Top (K, C, Y) spatial splits by *effective* MAC rate.

    The effective rate of a split is the units it occupies discounted by the
    padding its non-exact factors introduce — maximising raw unit count alone
    would prefer a full array doing 2x padded work over a 90%-full array
    doing exact work.  Ties break towards small Y unrolling (less input-halo
    traffic) and balanced K/C factors.
    """
    dims = layer.dims()

    def padding(dim: str, factor: int) -> float:
        return math.ceil(dims[dim] / factor) * factor / dims[dim]

    combos = []
    cand_c = _split_candidates(dims["C"], num_units)
    for k in _split_candidates(dims["K"], num_units):
        pad_k = padding("K", k)
        for c in cand_c:
            if k * c > num_units:
                break
            y = _split_candidates(dims["Y"], max(1, num_units // (k * c)))[-1]
            rate = (k * c * y) / (pad_k * padding("C", c) * padding("Y", y))
            combos.append((rate, (k, c, y)))
    combos.sort(key=lambda item: (-item[0], item[1][2],
                                  abs(item[1][0] - item[1][1])))
    return [kcy for _, kcy in combos[:limit]] if combos else [(1, 1, 1)]


def _build_greedy_dataflow(layer: LayerShape, spatial_k: int, spatial_c: int,
                           spatial_y: int, rf_tile: int,
                           stationarity: str) -> Dataflow:
    dims = layer.dims()
    rf = {"R": dims["R"], "S": dims["S"],
          "X": _split_factor(dims["X"], rf_tile)}

    def remaining(dim: str, *used: int) -> int:
        product = 1
        for factor in used:
            product *= factor
        return math.ceil(dims[dim] / product)

    gb_y = _split_factor(remaining("Y", spatial_y), 8)
    gb = {
        "K": remaining("K", spatial_k),
        "C": remaining("C", spatial_c),
        "Y": gb_y,
        "X": remaining("X", rf["X"]),
        "N": dims["N"],
    }
    dram = {"Y": remaining("Y", spatial_y, gb_y)}

    tiling = {
        "DRAM": dram,
        "GlobalBuffer": gb,
        "Spatial": {"K": spatial_k, "C": spatial_c, "Y": spatial_y},
        "RegisterFile": rf,
    }
    loop_order = {
        "DRAM": ["N", "K", "Y", "X", "C", "R", "S"],
        "GlobalBuffer": list(_GB_LOOP_ORDERS[stationarity]),
    }
    return Dataflow(tiling=tiling, loop_order=loop_order)


def greedy_spatial_candidates(layer: LayerShape, num_units: int,
                              rf_tile: int = 4,
                              limit: int = 4) -> List[Dataflow]:
    """Deterministic seed mappings for the evolutionary optimizer.

    The top ``limit`` divisor splits by array utilisation, each with both the
    output- and weight-stationary global-buffer orders.  Evaluating this
    small set and keeping the best makes the optimizer robust at tiny search
    budgets: the seeds already contain a compute-full mapping whose memory
    behaviour suits the layer, instead of betting on the random population to
    find one.
    """
    candidates = []
    for k, c, y in _best_spatial_splits(layer, num_units, limit=limit):
        for stationarity in _GB_LOOP_ORDERS:
            candidates.append(_build_greedy_dataflow(layer, k, c, y, rf_tile,
                                                     stationarity))
    return candidates
