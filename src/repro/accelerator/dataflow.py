"""Dataflow representation: per-level loop orders and tiling factors.

Following the Eyeriss taxonomy the paper builds on (Sec. 3.1.3), a dataflow
is described by how each of the seven convolution dimensions

    N (batch), K (output channels), C (input channels),
    Y, X (output feature map), R, S (kernel)

is tiled across the storage hierarchy and in which order the temporal loops
at each level iterate.  Four levels are modelled:

* ``DRAM``          — outer temporal loops (tiles streamed from off-chip),
* ``GlobalBuffer``  — temporal loops over tiles held in the on-chip SRAM,
* ``Spatial``       — dimensions unrolled across the MAC array (the NoC level
  of Eyeriss; these factors consume MAC units, not cycles),
* ``RegisterFile``  — innermost temporal loops over data held next to a unit.

The product of a dimension's factors across all levels must cover the layer
dimension (rounding up models padding / under-utilisation).  Loop order
matters at the two temporal buffer levels (DRAM, GlobalBuffer) where it
determines which tensor stays resident while others stream (see
:mod:`repro.accelerator.performance_model`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .workload import LayerShape

__all__ = ["DIMS", "LEVELS", "TEMPORAL_LEVELS", "Dataflow", "default_dataflow"]

DIMS: Sequence[str] = ("N", "K", "C", "Y", "X", "R", "S")
LEVELS: Sequence[str] = ("DRAM", "GlobalBuffer", "Spatial", "RegisterFile")
TEMPORAL_LEVELS: Sequence[str] = ("DRAM", "GlobalBuffer")

#: Which dimensions index each operand tensor (used for reuse analysis).
TENSOR_DIMS: Dict[str, frozenset] = {
    "weights": frozenset({"K", "C", "R", "S"}),
    "inputs": frozenset({"N", "C", "Y", "X", "R", "S"}),
    "outputs": frozenset({"N", "K", "Y", "X"}),
}


@dataclass
class Dataflow:
    """Tiling factors per level plus loop orders for the temporal levels."""

    tiling: Dict[str, Dict[str, int]]
    loop_order: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for level in LEVELS:
            self.tiling.setdefault(level, {})
            for dim in DIMS:
                factor = int(self.tiling[level].get(dim, 1))
                if factor < 1:
                    raise ValueError(f"tiling factor for {dim} at {level} must be >= 1")
                self.tiling[level][dim] = factor
        for level in TEMPORAL_LEVELS:
            order = self.loop_order.get(level) or list(DIMS)
            if sorted(order) != sorted(DIMS):
                raise ValueError(f"loop order at {level} must be a permutation of {DIMS}")
            self.loop_order[level] = list(order)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def factor(self, level: str, dim: str) -> int:
        return self.tiling[level][dim]

    def total_factor(self, dim: str) -> int:
        product = 1
        for level in LEVELS:
            product *= self.tiling[level][dim]
        return product

    def inner_tile(self, dim: str, level: str) -> int:
        """Product of factors at ``level`` and all levels inner to it."""
        index = LEVELS.index(level)
        product = 1
        for inner_level in LEVELS[index:]:
            product *= self.tiling[inner_level][dim]
        return product

    def spatial_units(self) -> int:
        """Number of MAC units consumed by the spatial unrolling."""
        product = 1
        for dim in DIMS:
            product *= self.tiling["Spatial"][dim]
        return product

    # ------------------------------------------------------------------
    # Validation against a layer
    # ------------------------------------------------------------------
    def covers(self, layer: LayerShape) -> bool:
        dims = layer.dims()
        return all(self.total_factor(dim) >= dims[dim] for dim in DIMS)

    def padded_dims(self, layer: LayerShape) -> Dict[str, int]:
        """Layer dimensions rounded up to the mapped iteration space."""
        dims = layer.dims()
        return {dim: max(self.total_factor(dim), dims[dim]) for dim in DIMS}

    def utilization_loss(self, layer: LayerShape) -> float:
        """Fraction of mapped iterations that are padding (wasted work)."""
        dims = layer.dims()
        real = 1
        padded = 1
        for dim in DIMS:
            real *= dims[dim]
            padded *= max(self.total_factor(dim), dims[dim])
        return 1.0 - real / padded

    # ------------------------------------------------------------------
    # Tile footprints (bits) for capacity checks and traffic accounting
    # ------------------------------------------------------------------
    def tile_elements(self, tensor: str, level: str) -> int:
        """Elements of ``tensor`` covered by one tile at ``level`` (inclusive)."""
        relevant = TENSOR_DIMS[tensor]
        product = 1
        for dim in DIMS:
            if dim in relevant:
                product *= self.inner_tile(dim, level)
        return product

    def footprint_bits(self, level: str, weight_bits: int, act_bits: int,
                       partial_sum_bits: int = 32) -> float:
        """Storage needed at ``level`` for one tile of every operand."""
        return (self.tile_elements("weights", level) * weight_bits
                + self.tile_elements("inputs", level) * act_bits
                + self.tile_elements("outputs", level) * partial_sum_bits)

    # ------------------------------------------------------------------
    def copy(self) -> "Dataflow":
        return Dataflow(tiling={lvl: dict(factors) for lvl, factors in self.tiling.items()},
                        loop_order={lvl: list(order) for lvl, order in self.loop_order.items()})

    def describe(self) -> str:
        """Human-readable one-line summary (used by the optimizer logs)."""
        parts = []
        for level in LEVELS:
            factors = {d: f for d, f in self.tiling[level].items() if f > 1}
            parts.append(f"{level}:{factors if factors else '{}'}")
        return " | ".join(parts)


# ---------------------------------------------------------------------------
# Default (untuned) dataflow
# ---------------------------------------------------------------------------

def _split_factor(total: int, inner_budget: int) -> int:
    """Largest factor <= inner_budget used at the inner level for ``total``."""
    return max(1, min(total, inner_budget))


def default_dataflow(layer: LayerShape, num_units: int,
                     rf_tile: int = 4, spatial_cap: int = 1024) -> Dataflow:
    """A reasonable output-stationary default mapping.

    Spatially unrolls output channels (K) and input channels (C) across the
    MAC array (up to ``spatial_cap`` units — a fixed NoC mapping of the kind
    the paper attributes to prior precision-scalable accelerators), keeps
    kernel loops plus a small output-row tile in the register file, and
    streams the remaining iterations from the global buffer / DRAM with an
    output-stationary loop order.  This is the baseline that the evolutionary
    optimizer improves on.
    """
    dims = layer.dims()

    budget = min(num_units, spatial_cap)
    spatial_k = _split_factor(dims["K"], min(32, budget))
    spatial_c = _split_factor(dims["C"], max(1, budget // spatial_k))

    rf = {"R": dims["R"], "S": dims["S"], "X": _split_factor(dims["X"], rf_tile)}

    def remaining(dim: str, *used: int) -> int:
        product = 1
        for factor in used:
            product *= factor
        return math.ceil(dims[dim] / product)

    gb = {
        "K": remaining("K", spatial_k),
        "C": remaining("C", spatial_c),
        "Y": _split_factor(dims["Y"], 8),
        "X": remaining("X", rf["X"]),
        "N": dims["N"],
    }
    dram = {
        "Y": remaining("Y", gb["Y"]),
    }

    tiling = {
        "DRAM": dram,
        "GlobalBuffer": gb,
        "Spatial": {"K": spatial_k, "C": spatial_c},
        "RegisterFile": rf,
    }
    loop_order = {
        # Output-stationary-ish: channels stream while outputs stay resident.
        "DRAM": ["N", "K", "Y", "X", "C", "R", "S"],
        "GlobalBuffer": ["N", "Y", "X", "K", "C", "R", "S"],
    }
    return Dataflow(tiling=tiling, loop_order=loop_order)
