"""Vectorized, cache-backed accelerator evaluation engine.

Every headline figure of the paper (Figs. 2, 7-11, Tabs. 1-6) reduces to
evaluating the same (layer x precision x accelerator) grid, yet the scalar
:class:`~repro.accelerator.performance_model.PerformanceModel` walks that
grid one cell at a time through Python loops, re-running the loop-nest reuse
analysis for every precision even though it is precision-independent.  This
module batches, memoises, shards and persists that work:

* :meth:`EvaluationEngine.evaluate_grid` computes per-layer performance for
  *all* requested precisions in one NumPy pass: each mapping is reduced once
  to a precision-independent :class:`MappingSummary`, after which cycles,
  traffic and energy for the whole grid are plain array arithmetic over the
  MAC units' vectorized cost models (``macs_per_cycle_array`` /
  ``energy_per_mac_array``).  The shared arithmetic lives in
  :func:`batched_summary_metrics`, which the evolutionary optimizer also
  calls to score a whole population of candidate mappings at once.
* An LRU memo keyed on (accelerator configuration, layer shape, precision)
  makes repeated sweeps — ``rps_average_metrics``, the trade-off controller,
  the figure generators — cache hits instead of re-simulations.  Layers are
  keyed by *shape*, so the many same-shaped layers of a deep network are
  evaluated once.
* ``evaluate_grid(..., workers=N)`` shards the missing cells of a grid
  across a :class:`concurrent.futures.ProcessPoolExecutor` via
  :class:`ParallelGridEvaluator`; the per-(layer, precision) determinism of
  the dataflow search makes the sharded results bit-identical to the
  synchronous path.
* ``evaluate_grid(..., persist=True)`` (or ``REPRO_ENGINE_PERSIST=1``)
  backs the memo with the disk store of
  :mod:`repro.accelerator.engine_store`, keyed on (cache-schema version,
  model-constants digest, configuration fingerprint, layer shape,
  precision), so repeated benchmark/CI runs start warm.
* The cache is invalidated automatically when the accelerator's observable
  configuration (MAC unit, array size, memory hierarchy, optimizer settings,
  derating) changes.

The scalar path is kept untouched as the reference implementation; the
parity tests assert bit-level agreement between the two.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..quantization.precision import Precision
from .engine_store import (
    EngineStore,
    PERSIST_ENV,
    WORKERS_ENV,
    env_flag,
    env_int,
    resolve_store,
)
from .mac.base import resolve_precision
from .performance_model import (
    PARTIAL_SUM_BITS,
    InvalidMappingError,
    LayerPerformance,
    MappingSummary,
    NetworkPerformance,
)
from .workload import LayerShape

__all__ = ["CacheStats", "GridResult", "EvaluationEngine",
           "ParallelGridEvaluator", "batched_summary_metrics",
           "layer_shape_key"]


def layer_shape_key(layer: LayerShape) -> Tuple:
    """Shape-based cache key: identical shapes share evaluations."""
    return (layer.n, layer.k, layer.c, layer.y, layer.x, layer.r, layer.s,
            layer.stride)


@dataclass
class CacheStats:
    """Hit/miss counters of the engine's memo layer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    disk_cells_loaded: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "disk_cells_loaded": self.disk_cells_loaded,
                "hit_rate": self.hit_rate}


@dataclass
class GridResult:
    """Dense results of one batched (layers x precisions) evaluation.

    All arrays have shape ``(len(layers), len(precisions))``; aggregate
    helpers reduce over the layer axis, mirroring
    :class:`~repro.accelerator.performance_model.NetworkPerformance`.
    """

    layers: List[LayerShape]
    precisions: List[Precision]
    frequency_hz: float
    compute_cycles: np.ndarray
    memory_cycles: Dict[str, np.ndarray]
    total_cycles: np.ndarray
    energy: Dict[str, np.ndarray]
    total_energy: np.ndarray
    spatial_utilization: np.ndarray
    mapping_efficiency: np.ndarray

    # -- network-level aggregates (one value per precision) ------------
    def network_cycles(self) -> np.ndarray:
        return self.total_cycles.sum(axis=0)

    def network_energy(self) -> np.ndarray:
        return self.total_energy.sum(axis=0)

    def latency_seconds(self) -> np.ndarray:
        return self.network_cycles() / self.frequency_hz

    def throughput_fps(self) -> np.ndarray:
        latency = self.latency_seconds()
        return np.divide(1.0, latency, out=np.zeros_like(latency),
                         where=latency > 0)

    def energy_breakdown(self) -> Dict[str, np.ndarray]:
        return {component: values.sum(axis=0)
                for component, values in self.energy.items()}

    # -- RPS averages over the precision axis --------------------------
    def average_fps(self) -> float:
        return float(self.throughput_fps().mean())

    def average_energy(self) -> float:
        return float(self.network_energy().mean())


# ---------------------------------------------------------------------------
# Vectorized cost arithmetic shared by the engine and the optimizer
# ---------------------------------------------------------------------------

def batched_summary_metrics(mac_unit, memory, num_units: int,
                            summaries: Sequence[MappingSummary],
                            weight_bits, act_bits,
                            compute_derating: float = 1.0,
                            strict: bool = True) -> Dict[str, object]:
    """Evaluate many (mapping summary, precision) pairs in one NumPy pass.

    This is the arithmetic core of the engine: given precision-independent
    :class:`MappingSummary` structs plus per-entry weight/activation
    bit-widths it produces every quantity of the scalar
    :meth:`PerformanceModel.evaluate`, as dense arrays.  ``strict=True``
    raises :class:`InvalidMappingError` on the first infeasible entry (the
    engine's contract); ``strict=False`` instead reports feasibility in the
    returned ``"valid"`` mask, which is what the evolutionary optimizer needs
    to score a population containing invalid candidates.
    """
    count = len(summaries)
    wb = np.asarray(weight_bits, dtype=np.int64)
    ab = np.asarray(act_bits, dtype=np.int64)
    if count == 0:
        empty = np.zeros(0)
        return {"valid": np.zeros(0, dtype=bool), "compute_cycles": empty,
                "memory_cycles": {"DRAM": empty, "GlobalBuffer": empty},
                "traffic": {}, "energy": {}, "total_cycles": empty,
                "total_energy": empty, "spatial_utilization": empty,
                "mapping_efficiency": empty}

    padded = np.array([s.padded_macs for s in summaries])
    spatial_units = np.array([s.spatial_units for s in summaries])
    efficiency = np.array([s.mapping_efficiency for s in summaries])

    valid = spatial_units <= num_units
    if strict and not np.all(valid):
        raise InvalidMappingError("spatial unrolling exceeds the array size")

    # Capacity checks (vectorized mirror of check_mapping).
    for level_name, level in (("GlobalBuffer", memory.global_buffer),
                              ("RegisterFile", memory.register_file)):
        weights_el, inputs_el, outputs_el = np.array(
            [s.footprint_elements[level_name] for s in summaries]).T
        footprint = (weights_el * wb + inputs_el * ab
                     + outputs_el * PARTIAL_SUM_BITS)
        fits = footprint <= level.capacity_bits
        if strict and not np.all(fits):
            raise InvalidMappingError(
                f"{level_name} tile exceeds its capacity")
        valid &= fits

    moved = {boundary: {tensor: np.array(
        [s.moved_elements[boundary][tensor] for s in summaries])
        for tensor in ("weights", "inputs", "outputs")}
        for boundary in ("DRAM", "GlobalBuffer")}
    doubled = {boundary: np.array(
        [s.reduction_doubled[boundary] for s in summaries])
        for boundary in ("DRAM", "GlobalBuffer")}

    # Traffic in bits; outputs cross DRAM at activation width and the
    # global buffer at partial-sum width, doubling under a split
    # reduction (read-modify-write) — same rules as the scalar path.
    traffic = {}
    for boundary, output_bits in (("DRAM", ab),
                                  ("GlobalBuffer",
                                   np.full(count, PARTIAL_SUM_BITS))):
        output_factor = np.where(doubled[boundary], 2.0, 1.0)
        traffic[boundary] = {
            "weights": moved[boundary]["weights"] * wb,
            "inputs": moved[boundary]["inputs"] * ab,
            "outputs": (moved[boundary]["outputs"] * output_bits
                        * output_factor),
        }
    dram_bits = sum(traffic["DRAM"].values())
    gb_bits = sum(traffic["GlobalBuffer"].values())

    macs_per_cycle = mac_unit.macs_per_cycle_array(wb, ab)
    energy_per_mac = mac_unit.energy_per_mac_array(wb, ab)

    compute_cycles = (padded / (spatial_units * macs_per_cycle)
                      * compute_derating)
    dram = memory.dram
    gb = memory.global_buffer
    rf = memory.register_file
    memory_cycles = {
        "DRAM": dram_bits / dram.bandwidth_bits_per_cycle * compute_derating,
        "GlobalBuffer": (gb_bits / gb.bandwidth_bits_per_cycle
                         * compute_derating),
    }

    rf_bits_per_mac = wb + ab + 2 * PARTIAL_SUM_BITS
    energy = {
        "MAC": padded * energy_per_mac,
        "DRAM": dram_bits * dram.energy_per_bit,
        "GlobalBuffer": (gb_bits + dram_bits) * gb.energy_per_bit,
        "RegisterFile": padded * rf_bits_per_mac * rf.energy_per_bit,
    }

    total_cycles = np.maximum(compute_cycles,
                              np.maximum(memory_cycles["DRAM"],
                                         memory_cycles["GlobalBuffer"]))
    total_energy = sum(energy.values())
    return {
        "valid": valid,
        "compute_cycles": compute_cycles,
        "memory_cycles": memory_cycles,
        "traffic": traffic,
        "energy": energy,
        "total_cycles": total_cycles,
        "total_energy": total_energy,
        "spatial_utilization": spatial_units / num_units,
        "mapping_efficiency": efficiency,
    }


# ---------------------------------------------------------------------------
# Process-sharded grid evaluation
# ---------------------------------------------------------------------------

def _compute_chunk(accelerator, chunk: List[Tuple]) -> Tuple[Dict, Dict, Dict]:
    """Worker-side entry: compute one chunk of missing grid cells.

    The accelerator arrives pickled with an empty memo (see
    :meth:`EvaluationEngine.__getstate__`); its engine rebinds the worker
    process's own store for the fingerprint, so every cell of the chunk is
    computed exactly as the synchronous path would.  Determinism of the
    dataflow search per (seed, layer shape, precision) makes the returned
    cells bit-identical to a ``workers=1`` run.

    Returns ``(cells, summaries, dataflows)``: the mapping summaries and the
    dataflows chosen by the search ride back with the cells so the parent's
    memo (and persistence layer) ends up exactly as a synchronous fill would
    leave it — discarding them would silently re-pay the dataflow search on
    the next LRU refill or scalar-path query.
    """
    engine = accelerator.engine
    known_flows = set(accelerator._dataflow_cache)
    known_summaries = set(engine._summaries)
    cells = engine._compute_cells(chunk)
    new_summaries = {key: summary
                     for key, summary in engine._summaries.items()
                     if key not in known_summaries}
    new_flows = {key: flow
                 for key, flow in accelerator._dataflow_cache.items()
                 if key not in known_flows}
    return cells, new_summaries, new_flows


class ParallelGridEvaluator:
    """Shard missing grid cells across a process pool.

    Cells are grouped per engine — i.e. per configuration fingerprint — so a
    worker binds exactly one memo store, then round-robined into ``workers``
    chunks for load balance (neighbouring layer shapes tend to have similar
    search cost).  ``workers=1``, a pool that cannot be spawned (sandboxed
    environments), or a pool that dies mid-flight all fall back to the
    synchronous in-process path, which computes identical results.
    """

    def __init__(self, engine: "EvaluationEngine", workers: int) -> None:
        self.engine = engine
        self.workers = max(1, int(workers))

    def compute(self, missing: Sequence[Tuple]
                ) -> Dict[Tuple, LayerPerformance]:
        if self.workers == 1 or len(missing) <= 1:
            return self.engine._compute_cells(missing)
        chunks = [list(missing[index::self.workers])
                  for index in range(self.workers)]
        chunks = [chunk for chunk in chunks if chunk]
        try:
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [pool.submit(_compute_chunk,
                                       self.engine.accelerator, chunk)
                           for chunk in chunks]
                results = [future.result() for future in futures]
        except (BrokenProcessPool, OSError):
            # No usable process pool here — same results, one process.
            return self.engine._compute_cells(missing)
        computed: Dict[Tuple, LayerPerformance] = {}
        for cells, summaries, dataflows in results:
            computed.update(cells)
            for key, summary in summaries.items():
                self.engine._summaries.setdefault(key, summary)
            for key, dataflow in dataflows.items():
                self.engine.accelerator._dataflow_cache.setdefault(key,
                                                                   dataflow)
        for key, cell in computed.items():
            self.engine._cache_put(key, cell)
        return computed


class _MemoStore:
    """One shared (cells, summaries) memo bound to a config fingerprint.

    A real object (not a bare tuple) so engines can hold weak references to
    it: the shared-store LRU may evict a fingerprint while an engine still
    uses it, and later same-fingerprint engines must find *that* store again
    instead of silently diverging onto a fresh one.
    """

    __slots__ = ("cells", "summaries", "dirty", "loaded_dirs", "no_reload",
                 "__weakref__")

    def __init__(self) -> None:
        self.cells: "OrderedDict[Tuple, LayerPerformance]" = OrderedDict()
        self.summaries: Dict[Tuple, MappingSummary] = {}
        #: Cells added since the last disk flush.
        self.dirty = 0
        #: Cache directories whose file was already merged into the memo;
        #: loads from them are no-ops for the rest of the process.
        self.loaded_dirs: set = set()
        #: Set by a manual invalidate(): the disk layer must not refill the
        #: memo with the very results the caller just dropped.
        self.no_reload = False


#: (fingerprint, cache dir) -> store with deferred dirty cells; flushed once
#: at interpreter exit instead of on every scalar-path call (the per-grid
#: flush stays inline — it amortises over a whole sweep).  References are
#: strong on purpose: a store LRU-evicted from the shared registry and
#: garbage-collected before exit would otherwise silently drop its flush,
#: losing every result of a >16-configuration scalar-path sweep.
_PENDING_FLUSHES: Dict[Tuple, Tuple["_MemoStore", Tuple, str]] = {}
_ATEXIT_REGISTERED = False


def _flush_pending_stores() -> None:
    while _PENDING_FLUSHES:
        _, (store, fingerprint, cache_dir) = _PENDING_FLUSHES.popitem()
        if not store.dirty:
            continue
        try:
            resolve_store(cache_dir).save(
                fingerprint, dict(store.cells), dict(store.summaries))
            store.dirty = 0
        except OSError:        # pragma: no cover - exit-time best effort
            pass


def _defer_flush(fingerprint: Tuple, store: _MemoStore,
                 cache_dir: str) -> None:
    global _ATEXIT_REGISTERED
    _PENDING_FLUSHES[(fingerprint, cache_dir)] = (store, fingerprint,
                                                  cache_dir)
    if not _ATEXIT_REGISTERED:
        atexit.register(_flush_pending_stores)
        _ATEXIT_REGISTERED = True


class EvaluationEngine:
    """Batched + memoised evaluation front-end for one accelerator.

    Engines whose accelerators share the same configuration fingerprint
    share one memo store: the figure harnesses rebuild identical
    accelerators per table, and re-simulating the same grid for each table
    is exactly the waste this engine exists to remove.  The shared registry
    keeps the most recently used fingerprints (bounded); evicted stores stay
    discoverable through weak references for as long as any engine holds
    them, and a fingerprint change rebinds the engine to a fresh store.
    """

    _SHARED_STORES: "OrderedDict[Tuple, _MemoStore]" = OrderedDict()
    _LIVE_STORES: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
    _MAX_SHARED_STORES = 16

    def __init__(self, accelerator, max_entries: int = 65536,
                 persist: Optional[bool] = None,
                 cache_dir: Optional[os.PathLike] = None) -> None:
        self.accelerator = accelerator
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Tri-state persistence default: True/False are explicit; ``None``
        #: defers to the ``REPRO_ENGINE_PERSIST`` environment flag at call
        #: time (so CI can warm every engine without code changes).
        self.persist = persist
        self.cache_dir = cache_dir
        self._fingerprint = self.config_fingerprint()
        self._store = self._bind_store(self._fingerprint)

    # -- pickling: workers receive a light engine and rebind locally ----
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state.pop("_store", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._store = self._bind_store(self._fingerprint)

    @property
    def _cells(self) -> "OrderedDict[Tuple, LayerPerformance]":
        return self._store.cells

    @property
    def _summaries(self) -> Dict[Tuple, MappingSummary]:
        return self._store.summaries

    @classmethod
    def reset_shared_stores(cls) -> None:
        """Forget every shared memo store.

        Engines already bound keep (and keep sharing) their stores; engines
        created afterwards start cold.  This simulates a fresh process —
        tests and examples use it to exercise the disk-warm path without
        actually spawning one.
        """
        cls._SHARED_STORES.clear()
        cls._LIVE_STORES.clear()

    @classmethod
    def _bind_store(cls, fingerprint: Tuple) -> _MemoStore:
        store = cls._SHARED_STORES.get(fingerprint)
        if store is None:
            # An LRU-evicted store may still be alive, bound to an engine:
            # rebind it so same-fingerprint engines can never diverge.
            store = cls._LIVE_STORES.get(fingerprint)
            if store is None:
                store = _MemoStore()
                cls._LIVE_STORES[fingerprint] = store
            cls._SHARED_STORES[fingerprint] = store
            while len(cls._SHARED_STORES) > cls._MAX_SHARED_STORES:
                cls._SHARED_STORES.popitem(last=False)
        else:
            cls._SHARED_STORES.move_to_end(fingerprint)
        return store

    # ------------------------------------------------------------------
    # Configuration fingerprint / invalidation
    # ------------------------------------------------------------------
    def config_fingerprint(self) -> Tuple:
        """Hashable snapshot of everything a cached result depends on.

        Audited against the evaluation dataflow: the MAC unit's identity and
        *all* of its area/scheduling surface (class, name, area breakdown,
        native precision ceiling), the array geometry and clock, the
        derating, the dataflow policy including every evolutionary-search
        hyper-parameter, and each level of the memory hierarchy the model
        actually reads (``model.memory``).  A field missed here silently
        serves stale cached metrics — tests mutate every field and assert
        the fingerprint moves.
        """
        acc = self.accelerator
        unit = acc.mac_unit
        breakdown = unit.area_breakdown
        config = acc.optimizer_config
        memory = tuple((level.name, level.capacity_bits,
                        level.bandwidth_bits_per_cycle, level.energy_per_bit)
                       for level in acc.model.memory.levels)
        return (type(unit).__name__, unit.name, unit.max_native_bits,
                (breakdown.multiplier, breakdown.shift_add,
                 breakdown.register),
                acc.num_units, acc.array.frequency_hz, acc.compute_derating,
                acc.optimize_dataflow,
                (config.population_size, config.total_cycles,
                 config.survivor_fraction, config.objective, config.seed),
                memory)

    def _validate_cache(self) -> None:
        fingerprint = self.config_fingerprint()
        if fingerprint != self._fingerprint:
            # Rebind to the (possibly fresh) store of the new configuration;
            # the accelerator's dataflow choices are stale either way.
            self.accelerator._dataflow_cache.clear()
            self._fingerprint = fingerprint
            self._store = self._bind_store(fingerprint)
            self.stats.invalidations += 1

    def invalidate(self) -> None:
        """Drop every memoised result (and the accelerator's dataflows)."""
        self._cells.clear()
        self._summaries.clear()
        self._store.dirty = 0
        # A manual invalidation asks for honest recomputation, so the disk
        # layer must not refill the memo with the very results just dropped —
        # and the emptied memo is no longer a superset of any store file, so
        # later flushes must merge again instead of overwriting.
        self._store.no_reload = True
        self._store.loaded_dirs.clear()
        self.accelerator._dataflow_cache.clear()
        self.stats.invalidations += 1

    def cache_info(self) -> Dict[str, float]:
        info = self.stats.as_dict()
        info["entries"] = len(self._cells)
        return info

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------
    def _persist_enabled(self, override: Optional[bool]) -> bool:
        if override is not None:
            return bool(override)
        if self.persist is not None:
            return bool(self.persist)
        return env_flag(PERSIST_ENV)

    def _disk_store(self, cache_dir: Optional[os.PathLike]) -> EngineStore:
        return resolve_store(cache_dir if cache_dir is not None
                             else self.cache_dir)

    def _load_disk(self, disk: EngineStore) -> None:
        """Lazily merge the persisted cells for this fingerprint.

        Each cache directory is merged at most once per store; distinct
        directories (an explicit ``cache_dir`` differing from the default)
        each get their load."""
        memo = self._store
        directory = str(disk.cache_dir)
        if memo.no_reload or directory in memo.loaded_dirs:
            return
        memo.loaded_dirs.add(directory)
        loaded = disk.load(self._fingerprint)
        if loaded is None:
            return
        cells, summaries = loaded
        fresh = 0
        for key, cell in cells.items():
            if key not in memo.cells:
                memo.cells[key] = cell
                fresh += 1
        for key, summary in summaries.items():
            memo.summaries.setdefault(key, summary)
        self.stats.disk_cells_loaded += fresh

    def flush(self, cache_dir: Optional[os.PathLike] = None) -> None:
        """Write the memo back to disk (atomic rename; merges concurrents).

        The on-disk file is always merge-read first: the memo can trail the
        file (cells LRU-evicted locally, cells flushed by another process),
        so an overwrite would silently shrink the store.
        """
        memo = self._store
        if not memo.cells and not memo.summaries:
            return
        self._disk_store(cache_dir).save(self._fingerprint, dict(memo.cells),
                                         dict(memo.summaries))
        memo.dirty = 0

    def _flush_if_dirty(self, cache_dir: Optional[os.PathLike]) -> None:
        if self._store.dirty:
            self.flush(cache_dir)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, key: Tuple) -> Optional[LayerPerformance]:
        cell = self._cells.get(key)
        if cell is not None:
            self._cells.move_to_end(key)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return cell

    def _cache_put(self, key: Tuple, cell: LayerPerformance) -> None:
        self._cells[key] = cell
        self._cells.move_to_end(key)
        self._store.dirty += 1
        while len(self._cells) > self.max_entries:
            self._cells.popitem(last=False)
            self.stats.evictions += 1

    def _summary_for(self, key: Tuple, layer: LayerShape,
                     precision: Precision) -> MappingSummary:
        summary_key = (key, precision.key)
        summary = self._summaries.get(summary_key)
        if summary is None:
            dataflow = self.accelerator.dataflow_for(layer, precision)
            if not dataflow.covers(layer):
                raise InvalidMappingError("tiling factors do not cover the layer")
            summary = self.accelerator.model.summarize(layer, dataflow)
            self._summaries[summary_key] = summary
        return summary

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def evaluate_grid(self, layers: Sequence[LayerShape],
                      precisions: Sequence[Union[int, Precision]],
                      workers: Optional[int] = None,
                      persist: Optional[bool] = None,
                      cache_dir: Optional[os.PathLike] = None) -> GridResult:
        """Evaluate every (layer, precision) cell in one NumPy pass.

        Duplicate layer shapes are evaluated once; cached cells are reused
        and only the missing cells go through the batched arithmetic.
        ``workers`` shards the missing cells across worker processes
        (default: the ``REPRO_ENGINE_WORKERS`` environment variable, else
        synchronous); ``persist`` backs the memo with the on-disk store
        (default: the ``REPRO_ENGINE_PERSIST`` flag).  Both paths are
        bit-identical to ``workers=1, persist=False``.
        """
        self._validate_cache()
        if workers is None:
            workers = env_int(WORKERS_ENV, 1)
        persisting = self._persist_enabled(persist)
        if persisting:
            self._load_disk(self._disk_store(cache_dir))
        layers = list(layers)
        resolved = [resolve_precision(p) for p in precisions]

        unique: "OrderedDict[Tuple, LayerShape]" = OrderedDict()
        for layer in layers:
            unique.setdefault(layer_shape_key(layer), layer)
        keys = list(unique)

        # Collect cache hits and misses.  Cells are kept in a local map so
        # the assembly below is immune to LRU evictions triggered while this
        # very grid is being filled (grids larger than max_entries).
        cells: Dict[Tuple, LayerPerformance] = {}
        missing: List[Tuple[Tuple, LayerShape, int, Precision]] = []
        for key, rep in unique.items():
            for j, precision in enumerate(resolved):
                cell = self._cache_get((key, precision.key))
                if cell is None:
                    missing.append((key, rep, j, precision))
                else:
                    cells[(key, precision.key)] = cell
        if missing:
            cells.update(ParallelGridEvaluator(self, workers).compute(missing))
        if persisting:
            self._flush_if_dirty(cache_dir)

        # Assemble dense arrays from the collected cells.
        shape = (len(layers), len(resolved))
        compute = np.zeros(shape)
        memory = {"DRAM": np.zeros(shape), "GlobalBuffer": np.zeros(shape)}
        energy = {name: np.zeros(shape)
                  for name in ("MAC", "DRAM", "GlobalBuffer", "RegisterFile")}
        spatial = np.zeros(shape)
        efficiency = np.zeros(shape)
        row_of = {key: [] for key in keys}
        for i, layer in enumerate(layers):
            row_of[layer_shape_key(layer)].append(i)
        for key in keys:
            rows = row_of[key]
            for j, precision in enumerate(resolved):
                cell = cells[(key, precision.key)]
                compute[rows, j] = cell.compute_cycles
                for boundary in memory:
                    memory[boundary][rows, j] = cell.memory_cycles[boundary]
                for component in energy:
                    energy[component][rows, j] = cell.energy_breakdown[component]
                spatial[rows, j] = cell.spatial_utilization
                efficiency[rows, j] = cell.mapping_efficiency

        total_cycles = np.maximum(compute,
                                  np.maximum(memory["DRAM"],
                                             memory["GlobalBuffer"]))
        total_energy = sum(energy.values())
        return GridResult(
            layers=layers, precisions=resolved,
            frequency_hz=self.accelerator.array.frequency_hz,
            compute_cycles=compute, memory_cycles=memory,
            total_cycles=total_cycles, energy=energy,
            total_energy=total_energy, spatial_utilization=spatial,
            mapping_efficiency=efficiency)

    def _compute_cells(self, cells: Sequence[Tuple]
                       ) -> Dict[Tuple, LayerPerformance]:
        """Batched arithmetic for the missing (layer, precision) cells.

        Returns the computed cells (also inserted into the LRU memo)."""
        acc = self.accelerator

        summaries = [self._summary_for(key, layer, precision)
                     for key, layer, _, precision in cells]
        wb = np.array([int(p.weight_bits) for _, _, _, p in cells],
                      dtype=np.int64)
        ab = np.array([int(p.act_bits) for _, _, _, p in cells],
                      dtype=np.int64)
        metrics = batched_summary_metrics(
            acc.mac_unit, acc.model.memory, acc.num_units, summaries, wb, ab,
            compute_derating=acc.compute_derating, strict=True)
        traffic = metrics["traffic"]
        memory_cycles = metrics["memory_cycles"]
        energy = metrics["energy"]
        compute_cycles = metrics["compute_cycles"]
        spatial = metrics["spatial_utilization"]
        efficiency = metrics["mapping_efficiency"]

        computed: Dict[Tuple, LayerPerformance] = {}
        for index, (key, layer, _, precision) in enumerate(cells):
            cell = LayerPerformance(
                layer=layer,
                precision=precision,
                compute_cycles=float(compute_cycles[index]),
                memory_cycles={b: float(memory_cycles[b][index])
                               for b in memory_cycles},
                traffic_bits={b: {t: float(traffic[b][t][index])
                                  for t in traffic[b]}
                              for b in traffic},
                energy_breakdown={c: float(energy[c][index])
                                  for c in energy},
                spatial_utilization=float(spatial[index]),
                mapping_efficiency=float(efficiency[index]),
            )
            computed[(key, precision.key)] = cell
            self._cache_put((key, precision.key), cell)
        return computed

    # ------------------------------------------------------------------
    # Scalar-compatible front-ends
    # ------------------------------------------------------------------
    def evaluate_layer(self, layer: LayerShape,
                       precision: Union[int, Precision]) -> LayerPerformance:
        """Cached per-layer evaluation (engine-computed, shape-keyed)."""
        self._validate_cache()
        if self._persist_enabled(None):
            self._load_disk(self._disk_store(None))
        precision = resolve_precision(precision)
        key = (layer_shape_key(layer), precision.key)
        cell = self._cache_get(key)
        if cell is None:
            cell = self._compute_cells([(key[0], layer, 0, precision)])[key]
            if self._persist_enabled(None):
                # One cell per call is too fine-grained for an inline flush;
                # register the store for the exit-time flush instead.
                _defer_flush(self._fingerprint, self._store,
                             str(self._disk_store(None).cache_dir))
        # Hand out a shallow copy bound to the caller's layer object so the
        # cached cell stays pristine.
        return replace(cell, layer=layer)

    def evaluate_network(self, layers: Sequence[LayerShape],
                         precision: Union[int, Precision]) -> NetworkPerformance:
        results = [self.evaluate_layer(layer, precision) for layer in layers]
        return NetworkPerformance(layers=results,
                                  frequency_hz=self.accelerator.array.frequency_hz)
