"""Vectorized, cache-backed accelerator evaluation engine.

Every headline figure of the paper (Figs. 2, 7-11, Tabs. 1-6) reduces to
evaluating the same (layer x precision x accelerator) grid, yet the scalar
:class:`~repro.accelerator.performance_model.PerformanceModel` walks that
grid one cell at a time through Python loops, re-running the loop-nest reuse
analysis for every precision even though it is precision-independent.  This
module batches and memoises that work:

* :meth:`EvaluationEngine.evaluate_grid` computes per-layer performance for
  *all* requested precisions in one NumPy pass: each mapping is reduced once
  to a precision-independent :class:`MappingSummary`, after which cycles,
  traffic and energy for the whole grid are plain array arithmetic over the
  MAC units' vectorized cost models (``macs_per_cycle_array`` /
  ``energy_per_mac_array``).
* An LRU memo keyed on (accelerator configuration, layer shape, precision)
  makes repeated sweeps — ``rps_average_metrics``, the trade-off controller,
  the figure generators — cache hits instead of re-simulations.  Layers are
  keyed by *shape*, so the many same-shaped layers of a deep network are
  evaluated once.
* The cache is invalidated automatically when the accelerator's observable
  configuration (MAC unit, array size, memory hierarchy, optimizer settings,
  derating) changes.

The scalar path is kept untouched as the reference implementation; the
parity tests assert bit-level agreement between the two.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..quantization.precision import Precision
from .mac.base import resolve_precision
from .performance_model import (
    PARTIAL_SUM_BITS,
    InvalidMappingError,
    LayerPerformance,
    MappingSummary,
    NetworkPerformance,
)
from .workload import LayerShape

__all__ = ["CacheStats", "GridResult", "EvaluationEngine", "layer_shape_key"]


def layer_shape_key(layer: LayerShape) -> Tuple:
    """Shape-based cache key: identical shapes share evaluations."""
    return (layer.n, layer.k, layer.c, layer.y, layer.x, layer.r, layer.s,
            layer.stride)


@dataclass
class CacheStats:
    """Hit/miss counters of the engine's memo layer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate}


@dataclass
class GridResult:
    """Dense results of one batched (layers x precisions) evaluation.

    All arrays have shape ``(len(layers), len(precisions))``; aggregate
    helpers reduce over the layer axis, mirroring
    :class:`~repro.accelerator.performance_model.NetworkPerformance`.
    """

    layers: List[LayerShape]
    precisions: List[Precision]
    frequency_hz: float
    compute_cycles: np.ndarray
    memory_cycles: Dict[str, np.ndarray]
    total_cycles: np.ndarray
    energy: Dict[str, np.ndarray]
    total_energy: np.ndarray
    spatial_utilization: np.ndarray
    mapping_efficiency: np.ndarray

    # -- network-level aggregates (one value per precision) ------------
    def network_cycles(self) -> np.ndarray:
        return self.total_cycles.sum(axis=0)

    def network_energy(self) -> np.ndarray:
        return self.total_energy.sum(axis=0)

    def latency_seconds(self) -> np.ndarray:
        return self.network_cycles() / self.frequency_hz

    def throughput_fps(self) -> np.ndarray:
        latency = self.latency_seconds()
        return np.divide(1.0, latency, out=np.zeros_like(latency),
                         where=latency > 0)

    def energy_breakdown(self) -> Dict[str, np.ndarray]:
        return {component: values.sum(axis=0)
                for component, values in self.energy.items()}

    # -- RPS averages over the precision axis --------------------------
    def average_fps(self) -> float:
        return float(self.throughput_fps().mean())

    def average_energy(self) -> float:
        return float(self.network_energy().mean())


class EvaluationEngine:
    """Batched + memoised evaluation front-end for one accelerator.

    Engines whose accelerators share the same configuration fingerprint
    share one memo store: the figure harnesses rebuild identical
    accelerators per table, and re-simulating the same grid for each table
    is exactly the waste this engine exists to remove.  The shared registry
    keeps the most recently used fingerprints (bounded), and a fingerprint
    change rebinds the engine to a fresh store.
    """

    _SHARED_STORES: "OrderedDict[Tuple, Tuple[OrderedDict, Dict]]" = OrderedDict()
    _MAX_SHARED_STORES = 16

    def __init__(self, accelerator, max_entries: int = 65536) -> None:
        self.accelerator = accelerator
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._fingerprint = self.config_fingerprint()
        self._cells, self._summaries = self._bind_store(self._fingerprint)

    @classmethod
    def _bind_store(cls, fingerprint: Tuple):
        store = cls._SHARED_STORES.get(fingerprint)
        if store is None:
            store = (OrderedDict(), {})
            cls._SHARED_STORES[fingerprint] = store
            while len(cls._SHARED_STORES) > cls._MAX_SHARED_STORES:
                cls._SHARED_STORES.popitem(last=False)
        else:
            cls._SHARED_STORES.move_to_end(fingerprint)
        return store

    # ------------------------------------------------------------------
    # Configuration fingerprint / invalidation
    # ------------------------------------------------------------------
    def config_fingerprint(self) -> Tuple:
        """Hashable snapshot of everything a cached result depends on."""
        acc = self.accelerator
        config = acc.optimizer_config
        memory = tuple((level.name, level.capacity_bits,
                        level.bandwidth_bits_per_cycle, level.energy_per_bit)
                       for level in acc.memory.levels)
        return (type(acc.mac_unit).__name__, acc.mac_unit.area,
                acc.num_units, acc.array.frequency_hz, acc.compute_derating,
                acc.optimize_dataflow,
                (config.population_size, config.total_cycles,
                 config.survivor_fraction, config.objective, config.seed),
                memory)

    def _validate_cache(self) -> None:
        fingerprint = self.config_fingerprint()
        if fingerprint != self._fingerprint:
            # Rebind to the (possibly fresh) store of the new configuration;
            # the accelerator's dataflow choices are stale either way.
            self.accelerator._dataflow_cache.clear()
            self._fingerprint = fingerprint
            self._cells, self._summaries = self._bind_store(fingerprint)
            self.stats.invalidations += 1

    def invalidate(self) -> None:
        """Drop every memoised result (and the accelerator's dataflows)."""
        self._cells.clear()
        self._summaries.clear()
        self.accelerator._dataflow_cache.clear()
        self.stats.invalidations += 1

    def cache_info(self) -> Dict[str, float]:
        info = self.stats.as_dict()
        info["entries"] = len(self._cells)
        return info

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, key: Tuple) -> Optional[LayerPerformance]:
        cell = self._cells.get(key)
        if cell is not None:
            self._cells.move_to_end(key)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return cell

    def _cache_put(self, key: Tuple, cell: LayerPerformance) -> None:
        self._cells[key] = cell
        self._cells.move_to_end(key)
        while len(self._cells) > self.max_entries:
            self._cells.popitem(last=False)
            self.stats.evictions += 1

    def _summary_for(self, key: Tuple, layer: LayerShape,
                     precision: Precision) -> MappingSummary:
        summary_key = (key, precision.key)
        summary = self._summaries.get(summary_key)
        if summary is None:
            dataflow = self.accelerator.dataflow_for(layer, precision)
            if not dataflow.covers(layer):
                raise InvalidMappingError("tiling factors do not cover the layer")
            summary = self.accelerator.model.summarize(layer, dataflow)
            self._summaries[summary_key] = summary
        return summary

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def evaluate_grid(self, layers: Sequence[LayerShape],
                      precisions: Sequence[Union[int, Precision]]) -> GridResult:
        """Evaluate every (layer, precision) cell in one NumPy pass.

        Duplicate layer shapes are evaluated once; cached cells are reused
        and only the missing cells go through the batched arithmetic.
        """
        self._validate_cache()
        layers = list(layers)
        resolved = [resolve_precision(p) for p in precisions]

        unique: "OrderedDict[Tuple, LayerShape]" = OrderedDict()
        for layer in layers:
            unique.setdefault(layer_shape_key(layer), layer)
        keys = list(unique)

        # Collect cache hits and misses.  Cells are kept in a local map so
        # the assembly below is immune to LRU evictions triggered while this
        # very grid is being filled (grids larger than max_entries).
        cells: Dict[Tuple, LayerPerformance] = {}
        missing: List[Tuple[Tuple, LayerShape, int, Precision]] = []
        for key, rep in unique.items():
            for j, precision in enumerate(resolved):
                cell = self._cache_get((key, precision.key))
                if cell is None:
                    missing.append((key, rep, j, precision))
                else:
                    cells[(key, precision.key)] = cell
        if missing:
            cells.update(self._compute_cells(missing))

        # Assemble dense arrays from the collected cells.
        shape = (len(layers), len(resolved))
        compute = np.zeros(shape)
        memory = {"DRAM": np.zeros(shape), "GlobalBuffer": np.zeros(shape)}
        energy = {name: np.zeros(shape)
                  for name in ("MAC", "DRAM", "GlobalBuffer", "RegisterFile")}
        spatial = np.zeros(shape)
        efficiency = np.zeros(shape)
        row_of = {key: [] for key in keys}
        for i, layer in enumerate(layers):
            row_of[layer_shape_key(layer)].append(i)
        for key in keys:
            rows = row_of[key]
            for j, precision in enumerate(resolved):
                cell = cells[(key, precision.key)]
                compute[rows, j] = cell.compute_cycles
                for boundary in memory:
                    memory[boundary][rows, j] = cell.memory_cycles[boundary]
                for component in energy:
                    energy[component][rows, j] = cell.energy_breakdown[component]
                spatial[rows, j] = cell.spatial_utilization
                efficiency[rows, j] = cell.mapping_efficiency

        total_cycles = np.maximum(compute,
                                  np.maximum(memory["DRAM"],
                                             memory["GlobalBuffer"]))
        total_energy = sum(energy.values())
        return GridResult(
            layers=layers, precisions=resolved,
            frequency_hz=self.accelerator.array.frequency_hz,
            compute_cycles=compute, memory_cycles=memory,
            total_cycles=total_cycles, energy=energy,
            total_energy=total_energy, spatial_utilization=spatial,
            mapping_efficiency=efficiency)

    def _compute_cells(self, cells: Sequence[Tuple]
                       ) -> Dict[Tuple, LayerPerformance]:
        """Batched arithmetic for the missing (layer, precision) cells.

        Returns the computed cells (also inserted into the LRU memo)."""
        acc = self.accelerator
        model = acc.model
        count = len(cells)

        summaries = [self._summary_for(key, layer, precision)
                     for key, layer, _, precision in cells]
        wb = np.array([int(p.weight_bits) for _, _, _, p in cells],
                      dtype=np.int64)
        ab = np.array([int(p.act_bits) for _, _, _, p in cells],
                      dtype=np.int64)
        padded = np.array([s.padded_macs for s in summaries])
        spatial_units = np.array([s.spatial_units for s in summaries])
        efficiency = np.array([s.mapping_efficiency for s in summaries])

        if np.any(spatial_units > acc.num_units):
            raise InvalidMappingError(
                "spatial unrolling exceeds the array size")

        # Capacity checks (vectorized mirror of check_mapping).
        for level_name, level in (("GlobalBuffer", model.memory.global_buffer),
                                  ("RegisterFile", model.memory.register_file)):
            weights_el, inputs_el, outputs_el = np.array(
                [s.footprint_elements[level_name] for s in summaries]).T
            footprint = (weights_el * wb + inputs_el * ab
                         + outputs_el * PARTIAL_SUM_BITS)
            if np.any(footprint > level.capacity_bits):
                raise InvalidMappingError(
                    f"{level_name} tile exceeds its capacity")

        moved = {boundary: {tensor: np.array(
            [s.moved_elements[boundary][tensor] for s in summaries])
            for tensor in ("weights", "inputs", "outputs")}
            for boundary in ("DRAM", "GlobalBuffer")}
        doubled = {boundary: np.array(
            [s.reduction_doubled[boundary] for s in summaries])
            for boundary in ("DRAM", "GlobalBuffer")}

        # Traffic in bits; outputs cross DRAM at activation width and the
        # global buffer at partial-sum width, doubling under a split
        # reduction (read-modify-write) — same rules as the scalar path.
        traffic = {}
        for boundary, output_bits in (("DRAM", ab),
                                      ("GlobalBuffer",
                                       np.full(count, PARTIAL_SUM_BITS))):
            output_factor = np.where(doubled[boundary], 2.0, 1.0)
            traffic[boundary] = {
                "weights": moved[boundary]["weights"] * wb,
                "inputs": moved[boundary]["inputs"] * ab,
                "outputs": (moved[boundary]["outputs"] * output_bits
                            * output_factor),
            }
        dram_bits = sum(traffic["DRAM"].values())
        gb_bits = sum(traffic["GlobalBuffer"].values())

        unit = acc.mac_unit
        macs_per_cycle = unit.macs_per_cycle_array(wb, ab)
        energy_per_mac = unit.energy_per_mac_array(wb, ab)

        derating = acc.compute_derating
        compute_cycles = padded / (spatial_units * macs_per_cycle) * derating
        dram = model.memory.dram
        gb = model.memory.global_buffer
        rf = model.memory.register_file
        memory_cycles = {
            "DRAM": dram_bits / dram.bandwidth_bits_per_cycle * derating,
            "GlobalBuffer": gb_bits / gb.bandwidth_bits_per_cycle * derating,
        }

        rf_bits_per_mac = wb + ab + 2 * PARTIAL_SUM_BITS
        energy = {
            "MAC": padded * energy_per_mac,
            "DRAM": dram_bits * dram.energy_per_bit,
            "GlobalBuffer": (gb_bits + dram_bits) * gb.energy_per_bit,
            "RegisterFile": padded * rf_bits_per_mac * rf.energy_per_bit,
        }

        computed: Dict[Tuple, LayerPerformance] = {}
        for index, (key, layer, _, precision) in enumerate(cells):
            cell = LayerPerformance(
                layer=layer,
                precision=precision,
                compute_cycles=float(compute_cycles[index]),
                memory_cycles={b: float(memory_cycles[b][index])
                               for b in memory_cycles},
                traffic_bits={b: {t: float(traffic[b][t][index])
                                  for t in traffic[b]}
                              for b in traffic},
                energy_breakdown={c: float(energy[c][index])
                                  for c in energy},
                spatial_utilization=float(spatial_units[index]
                                          / acc.num_units),
                mapping_efficiency=float(efficiency[index]),
            )
            computed[(key, precision.key)] = cell
            self._cache_put((key, precision.key), cell)
        return computed

    # ------------------------------------------------------------------
    # Scalar-compatible front-ends
    # ------------------------------------------------------------------
    def evaluate_layer(self, layer: LayerShape,
                       precision: Union[int, Precision]) -> LayerPerformance:
        """Cached per-layer evaluation (engine-computed, shape-keyed)."""
        self._validate_cache()
        precision = resolve_precision(precision)
        key = (layer_shape_key(layer), precision.key)
        cell = self._cache_get(key)
        if cell is None:
            cell = self._compute_cells([(key[0], layer, 0, precision)])[key]
        # Hand out a shallow copy bound to the caller's layer object so the
        # cached cell stays pristine.
        return replace(cell, layer=layer)

    def evaluate_network(self, layers: Sequence[LayerShape],
                         precision: Union[int, Precision]) -> NetworkPerformance:
        results = [self.evaluate_layer(layer, precision) for layer in layers]
        return NetworkPerformance(layers=results,
                                  frequency_hz=self.accelerator.array.frequency_hz)

