"""The proposed spatial-temporal MAC unit (Sec. 3.2).

Four bit-serial units, each supporting up to 4-bit x 4-bit, are spatially
tiled and composed the way Bit Fusion composes its bit bricks:

* precisions <= 4-bit: every bit-serial unit computes an independent partial
  sum of the *same* output (Opt-1), so four MACs complete every ``p`` cycles
  and their outputs are summed without any per-unit shifter;
* 5-8 bit: the operands are split into (high, low) halves of ``ceil(p/2)``
  bits, the four cross products are assigned one per unit, and the group
  shift-add composes them — one MAC per ``ceil(p/2)`` cycles (Fig. 4: 4
  cycles at 8-bit);
* above 8-bit: like Bit Fusion, the whole unit is re-executed four times on
  ``ceil(p/2)``-bit halves (Sec. 3.2.1, "12-bit x 12-bit can be split into
  four 6-bit x 6-bit").

The two optimisations of Sec. 3.2.2/3.2.3 (reorganised bit-level allocation
and the fused group shift-add) are what shrink the shift-add area share to
~40% (Fig. 3, right) and remove per-unit shifters; they are reflected in the
area/energy constants below, which are calibrated so the unit reproduces the
paper's synthesis ratios (2.3x throughput/area and 4.88x energy efficiency
per operation over Bit Fusion at 8-bit x 8-bit).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...quantization.precision import Precision
from .base import AreaBreakdown, MACUnitModel, resolve_precision

__all__ = ["SpatialTemporalMAC"]

#: Area calibrated to Fig. 3 (43.0 / 39.7 / 17.2 percent).
_SPATIAL_TEMPORAL_AREA = AreaBreakdown(multiplier=43.0, shift_add=39.7,
                                       register=17.2)

_NUM_SERIAL_UNITS = 4
_ENERGY_PER_BIT_OP = 1.0        # bit-serial datapath, sized for 4-bit operands
_GROUP_SHIFT_ADD_ENERGY = 16.0  # fused group shift-add + group-wise shift-add
_LOW_PRECISION_ACCUMULATE = 4.0  # per-MAC share of the group adder when <= 4-bit


class SpatialTemporalMAC(MACUnitModel):
    """The 2-in-1 Accelerator MAC unit: spatially tiled bit-serial units."""

    name = "spatial-temporal"
    max_native_bits = 8

    def __init__(self) -> None:
        super().__init__(_SPATIAL_TEMPORAL_AREA)

    # ------------------------------------------------------------------
    @staticmethod
    def _half_bits(bits: int) -> int:
        return (bits + 1) // 2

    def cycles_for_bits(self, bits: int) -> float:
        """Cycles to produce ONE multiply-accumulate at ``bits``-bit operands."""
        if bits <= 4:
            # Four independent MACs complete every `bits` cycles.
            return bits / _NUM_SERIAL_UNITS
        if bits <= 8:
            return float(self._half_bits(bits))
        # Temporal re-execution of the whole unit on <=8-bit halves.
        return 4.0 * self.cycles_for_bits(self._half_bits(bits))

    def macs_per_cycle(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        bits = max(int(precision.weight_bits), int(precision.act_bits))
        return 1.0 / self.cycles_for_bits(bits)

    # ------------------------------------------------------------------
    def energy_per_mac(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        bits = max(int(precision.weight_bits), int(precision.act_bits))
        return self._energy_for_bits(bits)

    def _energy_for_bits(self, bits: int) -> float:
        if bits <= 4:
            # One serial unit does bits x bits bit-ops; the group adder is
            # shared by the four concurrent MACs.
            return bits * bits * _ENERGY_PER_BIT_OP + _LOW_PRECISION_ACCUMULATE
        if bits <= 8:
            half = self._half_bits(bits)
            bit_ops = _NUM_SERIAL_UNITS * half * half
            return bit_ops * _ENERGY_PER_BIT_OP + _GROUP_SHIFT_ADD_ENERGY
        half = self._half_bits(bits)
        return 4.0 * self._energy_for_bits(half) + 0.5 * _GROUP_SHIFT_ADD_ENERGY

    # ------------------------------------------------------------------
    # Vectorized interface (closed forms of the recurrences above).
    # ------------------------------------------------------------------
    @staticmethod
    def _cycles_for_bits_array(bits: np.ndarray) -> np.ndarray:
        b = np.asarray(bits, dtype=np.int64)
        half = (b + 1) // 2
        quarter = (half + 1) // 2
        eighth = (quarter + 1) // 2
        return np.where(b <= 4, b / _NUM_SERIAL_UNITS,
               np.where(b <= 8, half.astype(np.float64),
               np.where(b <= 16, 4.0 * quarter, 16.0 * eighth)))

    @staticmethod
    def _energy_for_bits_array(bits: np.ndarray) -> np.ndarray:
        b = np.asarray(bits, dtype=np.int64)
        half = (b + 1) // 2
        quarter = (half + 1) // 2
        eighth = (quarter + 1) // 2
        low = b * b * _ENERGY_PER_BIT_OP + _LOW_PRECISION_ACCUMULATE
        mid = (_NUM_SERIAL_UNITS * half * half * _ENERGY_PER_BIT_OP
               + _GROUP_SHIFT_ADD_ENERGY)
        high = 4.0 * (_NUM_SERIAL_UNITS * quarter * quarter * _ENERGY_PER_BIT_OP
                      + _GROUP_SHIFT_ADD_ENERGY) + 0.5 * _GROUP_SHIFT_ADD_ENERGY
        extreme = (4.0 * (4.0 * (_NUM_SERIAL_UNITS * eighth * eighth
                                 * _ENERGY_PER_BIT_OP + _GROUP_SHIFT_ADD_ENERGY)
                          + 0.5 * _GROUP_SHIFT_ADD_ENERGY)
                   + 0.5 * _GROUP_SHIFT_ADD_ENERGY)
        return np.where(b <= 4, low,
               np.where(b <= 8, mid,
               np.where(b <= 16, high, extreme)))

    def macs_per_cycle_array(self, weight_bits, act_bits) -> np.ndarray:
        bits = np.maximum(np.asarray(weight_bits, dtype=np.int64),
                          np.asarray(act_bits, dtype=np.int64))
        return 1.0 / self._cycles_for_bits_array(bits)

    def energy_per_mac_array(self, weight_bits, act_bits) -> np.ndarray:
        bits = np.maximum(np.asarray(weight_bits, dtype=np.int64),
                          np.asarray(act_bits, dtype=np.int64))
        return self._energy_for_bits_array(bits)
