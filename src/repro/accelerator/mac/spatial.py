"""Spatial MAC unit — the Bit Fusion fusion-unit model (Sec. 3.1.1).

A fusion unit contains sixteen 2-bit x 2-bit multipliers ("bit bricks") plus
the combinational shift-add network that composes them into wider products.
At 2-bit it completes 16 independent MACs per cycle; at 4-bit, 4; at 8-bit, 1;
above 8-bit it must re-execute the whole unit four times (Sec. 3.1.1's
explanation for Bit Fusion's poor 16-bit throughput).  Precisions that are not
powers of two are rounded up to the next supported one (2/4/8/16), modelling
the under-utilisation the paper points out for unsupported precisions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...quantization.precision import Precision
from .base import AreaBreakdown, MACUnitModel, resolve_precision

__all__ = ["SpatialBitFusionMAC"]

#: Area calibrated to Fig. 3 (26.5 / 67.0 / 6.5 percent) and to the MAC-level
#: throughput/area ratio of 2.3x reported for the proposed unit at 8-bit.
_SPATIAL_AREA = AreaBreakdown(multiplier=243.8, shift_add=616.4, register=59.8)

_NUM_BRICKS = 16
_ENERGY_PER_BIT_OP = 1.28          # parallel multiplier bit-op energy
_FUSION_NETWORK_ENERGY = 308.0     # shift-add network, ~79% of unit power


def _supported_bits(bits: int) -> int:
    """Round an arbitrary precision up to Bit Fusion's supported set."""
    for candidate in (2, 4, 8, 16):
        if bits <= candidate:
            return candidate
    return 16


class SpatialBitFusionMAC(MACUnitModel):
    """Bit Fusion style fusion unit (16 bit-bricks + fusion network)."""

    name = "spatial-bit-fusion"
    max_native_bits = 8

    def __init__(self) -> None:
        super().__init__(_SPATIAL_AREA)

    # ------------------------------------------------------------------
    def _parallel_products(self, bits: int) -> float:
        """MACs completed per cycle for a supported precision <= 8."""
        bricks_per_product = (max(bits, 2) // 2) ** 2
        return _NUM_BRICKS / bricks_per_product

    def macs_per_cycle(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        bits = _supported_bits(max(int(precision.weight_bits),
                                   int(precision.act_bits)))
        if bits <= 8:
            return self._parallel_products(bits)
        # >8-bit: the unit is executed four times per product.
        return 1.0 / 4.0

    def energy_per_mac(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        bits = _supported_bits(max(int(precision.weight_bits),
                                   int(precision.act_bits)))
        if bits <= 8:
            products_per_cycle = self._parallel_products(bits)
            bricks_per_product = _NUM_BRICKS / products_per_cycle
            bit_ops = bricks_per_product * 4              # each brick: 2x2 bits
            return (bit_ops * _ENERGY_PER_BIT_OP
                    + _FUSION_NETWORK_ENERGY / products_per_cycle)
        # 16-bit: four full-unit passes plus wide accumulation.
        eight_bit = (self.energy_per_mac(Precision(8)))
        return 4.0 * eight_bit + 0.1 * _FUSION_NETWORK_ENERGY

    # ------------------------------------------------------------------
    # Vectorized interface.
    # ------------------------------------------------------------------
    @staticmethod
    def _supported_bits_array(bits: np.ndarray) -> np.ndarray:
        b = np.asarray(bits, dtype=np.int64)
        return np.select([b <= 2, b <= 4, b <= 8], [2, 4, 8], default=16)

    def macs_per_cycle_array(self, weight_bits, act_bits) -> np.ndarray:
        bits = self._supported_bits_array(
            np.maximum(np.asarray(weight_bits, dtype=np.int64),
                       np.asarray(act_bits, dtype=np.int64)))
        parallel = _NUM_BRICKS / ((bits // 2) ** 2)
        return np.where(bits <= 8, parallel, 0.25)

    def energy_per_mac_array(self, weight_bits, act_bits) -> np.ndarray:
        bits = self._supported_bits_array(
            np.maximum(np.asarray(weight_bits, dtype=np.int64),
                       np.asarray(act_bits, dtype=np.int64)))
        bricks = (bits // 2) ** 2
        products = _NUM_BRICKS / bricks
        low = (bricks * 4 * _ENERGY_PER_BIT_OP
               + _FUSION_NETWORK_ENERGY / products)
        eight_bit = (_NUM_BRICKS * 4 * _ENERGY_PER_BIT_OP
                     + _FUSION_NETWORK_ENERGY)
        return np.where(bits <= 8, low,
                        4.0 * eight_bit + 0.1 * _FUSION_NETWORK_ENERGY)
