"""Conventional fixed-point MAC unit (no precision scalability).

Used to model the compute fabric of DNNGuard-style robustness-aware
accelerators: a standard 16-bit multiply-accumulate datapath that completes
one MAC per cycle at any precision and therefore gains nothing from executing
quantised networks at lower bit-widths.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...quantization.precision import Precision
from .base import AreaBreakdown, MACUnitModel, resolve_precision

__all__ = ["FixedPointMAC"]

#: A 16-bit parallel multiplier plus accumulator; no composition network.
_FIXED_AREA = AreaBreakdown(multiplier=200.0, shift_add=20.0, register=30.0)
_ENERGY_PER_MAC = 260.0     # full 16x16 multiply + 32-bit accumulate


class FixedPointMAC(MACUnitModel):
    """Standard (precision-oblivious) 16-bit MAC unit."""

    name = "fixed-point-16"
    max_native_bits = 16

    def __init__(self) -> None:
        super().__init__(_FIXED_AREA)

    def macs_per_cycle(self, precision: Union[int, Precision]) -> float:
        resolve_precision(precision)   # validation only
        return 1.0

    def energy_per_mac(self, precision: Union[int, Precision]) -> float:
        resolve_precision(precision)
        return _ENERGY_PER_MAC

    # ------------------------------------------------------------------
    # Vectorized interface.
    # ------------------------------------------------------------------
    def macs_per_cycle_array(self, weight_bits, act_bits) -> np.ndarray:
        return np.ones(np.broadcast(np.asarray(weight_bits),
                                    np.asarray(act_bits)).shape)

    def energy_per_mac_array(self, weight_bits, act_bits) -> np.ndarray:
        return np.full(np.broadcast(np.asarray(weight_bits),
                                    np.asarray(act_bits)).shape, _ENERGY_PER_MAC)
