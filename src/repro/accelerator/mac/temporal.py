"""Temporal (bit-serial) MAC unit — the Stripes-style design (Sec. 3.1.1).

A temporal unit multiplies a full-width weight by the activation one bit per
cycle and accumulates shifted partial products, so an ``a``-bit activation
costs ``a`` cycles regardless of the weight width.  Its shifter and
accumulator must be sized for the *highest* supported precision (16-bit
here), which is why the shift-add logic dominates its area (Fig. 3, left) and
why its efficiency per area lags spatial designs at low precision.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...quantization.precision import Precision
from .base import AreaBreakdown, MACUnitModel, resolve_precision

__all__ = ["TemporalBitSerialMAC"]

#: Area calibrated against the paper's Fig. 3 percentages (9.4 / 60.9 / 29.7)
#: and the relative throughput/area of the proposed design (Sec. 4.3.1).
_TEMPORAL_AREA = AreaBreakdown(multiplier=11.3, shift_add=73.1, register=35.6)

#: Energy constants (arbitrary units): a bit-serial cycle always activates the
#: full 16-bit wide datapath plus the wide shift-accumulator.
_ENERGY_PER_BIT_OP = 1.0
_DATAPATH_WIDTH_BITS = 16
_SHIFT_ACCUMULATE_PER_CYCLE = 12.0


class TemporalBitSerialMAC(MACUnitModel):
    """Bit-serial MAC unit supporting 1-16 bit operands."""

    name = "temporal-bit-serial"
    max_native_bits = 16

    def __init__(self) -> None:
        super().__init__(_TEMPORAL_AREA)

    def macs_per_cycle(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        cycles = max(int(precision.act_bits), 1)
        return 1.0 / cycles

    def energy_per_mac(self, precision: Union[int, Precision]) -> float:
        precision = resolve_precision(precision)
        cycles = max(int(precision.act_bits), 1)
        # The weight-side datapath is built for 16-bit operands and toggles at
        # that width every cycle, independent of the executed precision: this
        # is the temporal design's low-precision inefficiency.
        per_cycle = (_DATAPATH_WIDTH_BITS * _ENERGY_PER_BIT_OP
                     + _SHIFT_ACCUMULATE_PER_CYCLE)
        return cycles * per_cycle

    # ------------------------------------------------------------------
    # Vectorized interface.
    # ------------------------------------------------------------------
    def macs_per_cycle_array(self, weight_bits, act_bits) -> np.ndarray:
        cycles = np.maximum(np.asarray(act_bits, dtype=np.int64), 1)
        return 1.0 / cycles

    def energy_per_mac_array(self, weight_bits, act_bits) -> np.ndarray:
        cycles = np.maximum(np.asarray(act_bits, dtype=np.int64), 1)
        per_cycle = (_DATAPATH_WIDTH_BITS * _ENERGY_PER_BIT_OP
                     + _SHIFT_ACCUMULATE_PER_CYCLE)
        return cycles * per_cycle
