"""MAC-unit cost models for temporal, spatial and spatial-temporal designs."""

from .base import AreaBreakdown, MACUnitModel, resolve_precision
from .fixed import FixedPointMAC
from .spatial import SpatialBitFusionMAC
from .spatial_temporal import SpatialTemporalMAC
from .temporal import TemporalBitSerialMAC

__all__ = [
    "MACUnitModel",
    "AreaBreakdown",
    "resolve_precision",
    "TemporalBitSerialMAC",
    "SpatialBitFusionMAC",
    "SpatialTemporalMAC",
    "FixedPointMAC",
]
