"""Abstract interface shared by all precision-scalable MAC-unit models.

A *MAC unit* here is the composable block the paper compares in Sec. 3.1/3.2:
Stripes' 16-bit bit-serial unit (temporal), Bit Fusion's fusion unit of 16
bit-bricks (spatial), and the proposed spatial-temporal unit built from four
4-bit bit-serial units sharing a group shift-add.  Each model exposes

* ``macs_per_cycle(precision)`` — steady-state multiply-accumulates the unit
  completes per cycle at the given execution precision,
* ``area`` and ``area_breakdown`` — silicon cost split into multiplier,
  shift-add and register portions (Fig. 3), and
* ``energy_per_mac(precision)`` — energy of one multiply-accumulate.

Absolute numbers are in calibrated arbitrary units (the paper's numbers come
from a commercial 28 nm synthesis flow we cannot run); all evaluation figures
use ratios, which are the quantities the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ...quantization.precision import Precision

__all__ = ["MACUnitModel", "resolve_precision"]


def resolve_precision(precision: Union[int, Precision]) -> Precision:
    """Accept either a bare bit-width or a :class:`Precision`."""
    if isinstance(precision, Precision):
        if precision.is_full_precision:
            raise ValueError("accelerator models require a fixed-point precision")
        return precision
    return Precision(int(precision))


@dataclass(frozen=True)
class AreaBreakdown:
    """Area split of a MAC unit (arbitrary units)."""

    multiplier: float
    shift_add: float
    register: float

    @property
    def total(self) -> float:
        return self.multiplier + self.shift_add + self.register

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {
            "multiplier": self.multiplier / total,
            "shift_add": self.shift_add / total,
            "register": self.register / total,
        }


class MACUnitModel:
    """Base class; concrete designs override the scheduling methods."""

    name = "mac-unit"
    #: Highest weight/activation precision the unit natively supports before
    #: falling back to temporal re-execution of the whole unit.
    max_native_bits = 8

    def __init__(self, breakdown: AreaBreakdown) -> None:
        self._breakdown = breakdown

    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Total unit area (arbitrary units, calibrated across designs)."""
        return self._breakdown.total

    @property
    def area_breakdown(self) -> AreaBreakdown:
        return self._breakdown

    # ------------------------------------------------------------------
    def cycles_per_mac(self, precision: Union[int, Precision]) -> float:
        """Average cycles the unit needs to complete ONE multiply-accumulate."""
        return 1.0 / self.macs_per_cycle(precision)

    def macs_per_cycle(self, precision: Union[int, Precision]) -> float:
        raise NotImplementedError

    def energy_per_mac(self, precision: Union[int, Precision]) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Vectorized interface (one call covers a whole array of precisions).
    # The base implementations loop the scalar methods and therefore agree
    # with them by construction; concrete units override them with
    # closed-form NumPy expressions that the evaluation engine batches over.
    # ------------------------------------------------------------------
    def _map_scalar(self, fn, weight_bits, act_bits) -> np.ndarray:
        wb = np.asarray(weight_bits, dtype=np.int64)
        ab = np.asarray(act_bits, dtype=np.int64)
        wb, ab = np.broadcast_arrays(wb, ab)
        values = [fn(Precision(int(w), int(a)))
                  for w, a in zip(wb.ravel(), ab.ravel())]
        return np.asarray(values, dtype=np.float64).reshape(wb.shape)

    def macs_per_cycle_array(self, weight_bits, act_bits) -> np.ndarray:
        """Vectorized :meth:`macs_per_cycle` over integer bit-width arrays."""
        return self._map_scalar(self.macs_per_cycle, weight_bits, act_bits)

    def energy_per_mac_array(self, weight_bits, act_bits) -> np.ndarray:
        """Vectorized :meth:`energy_per_mac` over integer bit-width arrays."""
        return self._map_scalar(self.energy_per_mac, weight_bits, act_bits)

    # ------------------------------------------------------------------
    def throughput_per_area(self, precision: Union[int, Precision]) -> float:
        """MACs per cycle per unit area — the paper's headline MAC metric."""
        return self.macs_per_cycle(precision) / self.area

    def energy_efficiency_per_op(self, precision: Union[int, Precision]) -> float:
        """Operations per unit energy (higher is better)."""
        return 1.0 / self.energy_per_mac(precision)

    def supported_precisions(self) -> range:
        return range(1, 17)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.__class__.__name__}(area={self.area:.1f})"
