"""Disk-persisted memo store for the accelerator evaluation engine.

The in-process memo of :class:`repro.accelerator.engine.EvaluationEngine`
makes repeated sweeps cheap *within* one process, but every benchmark or CI
run still pays the full dataflow-search + simulation cost on its first grid.
This module adds the tinygrad-style layer below it: grid cells (and the
precision-independent mapping summaries they were derived from) are
serialized to disk keyed by

* ``CACHE_SCHEMA_VERSION`` — bumped whenever the serialized layout changes,
* the **model-constants digest** — a hash of the source of every module that
  defines cost constants or evaluation arithmetic, so editing a calibrated
  energy number or the reuse analysis silently invalidates every stale file,
* the accelerator **configuration fingerprint** — the same hashable snapshot
  the in-memory store is keyed on, and implicitly
* layer shape and precision — the keys of the cells inside one file.

Writes go to a temporary file in the destination directory followed by an
atomic :func:`os.replace`, so concurrent writers (parallel CI legs, sharded
workers) can never leave a torn file behind; the losing writer's cells are
simply re-merged on its next flush.  Corrupt, truncated or stale files are
treated as a cold start, never as an error.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

from .. import config, io_atomic

__all__ = ["CACHE_SCHEMA_VERSION", "EngineStore", "default_cache_dir",
           "env_flag", "env_int", "fingerprint_digest",
           "model_constants_digest", "resolve_store"]

#: Bump when the on-disk payload layout (or the meaning of its keys) changes.
CACHE_SCHEMA_VERSION = 1

#: Environment knobs honoured by the engine's persistence layer.
PERSIST_ENV = "REPRO_ENGINE_PERSIST"
CACHE_DIR_ENV = "REPRO_ENGINE_CACHE_DIR"
WORKERS_ENV = "REPRO_ENGINE_WORKERS"

#: Every module whose source participates in producing a cached number.  A
#: one-character edit to any of them changes the digest and therefore starts
#: from a cold disk cache — the versioning-tied-to-model-constants scheme of
#: ROADMAP.md.
_DIGEST_MODULES: Tuple[str, ...] = (
    "repro.accelerator.accelerators.base",
    "repro.accelerator.dataflow",
    "repro.accelerator.engine",
    "repro.accelerator.mac.base",
    "repro.accelerator.mac.fixed",
    "repro.accelerator.mac.spatial",
    "repro.accelerator.mac.spatial_temporal",
    "repro.accelerator.mac.temporal",
    "repro.accelerator.memory",
    "repro.accelerator.optimizer.evolutionary",
    "repro.accelerator.optimizer.search_space",
    "repro.accelerator.performance_model",
    "repro.accelerator.workload",
    "repro.quantization.precision",
)

_constants_digest: Optional[str] = None


def env_flag(name: str) -> bool:
    """True when the environment variable holds a truthy value.

    Thin wrapper over :func:`repro.config.env_flag`, kept exported here for
    backward compatibility; new code should use :mod:`repro.config`.
    """
    return config.env_flag(name)


def env_int(name: str, default: int) -> int:
    """Integer environment knob (see :func:`repro.config.env_int`)."""
    return config.env_int(name, default)


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_ENGINE_CACHE_DIR`` or ``~/.cache/repro/engine``."""
    return config.engine_cache_dir()


def model_constants_digest() -> str:
    """Hash of every source file that defines evaluation cost arithmetic."""
    global _constants_digest
    if _constants_digest is None:
        digest = hashlib.sha256()
        for module_name in _DIGEST_MODULES:
            module = importlib.import_module(module_name)
            digest.update(module_name.encode())
            with open(module.__file__, "rb") as handle:
                digest.update(handle.read())
        _constants_digest = digest.hexdigest()
    return _constants_digest


def fingerprint_digest(fingerprint: Tuple) -> str:
    """Stable cross-process file-name digest of a configuration fingerprint."""
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:20]


def resolve_store(cache_dir: Optional[os.PathLike] = None):
    """The persistence backend for ``cache_dir`` under the current environment.

    The single injection point between the evaluation engine and its
    storage: plain directories get a local :class:`EngineStore`, while a
    non-empty ``REPRO_ENGINE_STORE_SOCKET`` — or a ``cache_dir`` already
    spelled ``socket://<path>`` (how a deferred flush re-resolves a remote
    attachment) — yields a
    :class:`~repro.accelerator.store_service.RemoteEngineStore` brokering
    through the shared store service instead.
    """
    if cache_dir is not None and str(cache_dir).startswith("socket://"):
        from .store_service import RemoteEngineStore
        return RemoteEngineStore(str(cache_dir)[len("socket://"):])
    socket_path = config.engine_store_socket()
    if socket_path:
        from .store_service import RemoteEngineStore
        return RemoteEngineStore(socket_path)
    return EngineStore(cache_dir)


class EngineStore:
    """One cache directory of serialized evaluation-engine memo stores.

    Each configuration fingerprint maps to one pickle file holding the memo
    cells (``(layer shape key, precision key) -> LayerPerformance``) and the
    mapping summaries they were derived from.  The file embeds the schema
    version, constants digest and full fingerprint and is rejected wholesale
    if any of them disagree — a cache can serve stale numbers in exactly zero
    ways short of a hash collision.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 schema_version: int = CACHE_SCHEMA_VERSION,
                 constants_digest: Optional[str] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.schema_version = schema_version
        self.constants_digest = constants_digest or model_constants_digest()

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: Tuple) -> Path:
        return self.cache_dir / (
            f"engine-v{self.schema_version}"
            f"-{self.constants_digest[:12]}"
            f"-{fingerprint_digest(fingerprint)}.pkl")

    # ------------------------------------------------------------------
    def load(self, fingerprint: Tuple
             ) -> Optional[Tuple["OrderedDict", Dict]]:
        """Deserialize the (cells, summaries) of a fingerprint, or ``None``.

        Any failure — missing file, truncated pickle, schema or digest
        mismatch, foreign fingerprint in the payload — degrades to a cold
        start rather than an exception.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (payload["schema"] != self.schema_version
                    or payload["constants_digest"] != self.constants_digest
                    or payload["fingerprint"] != fingerprint):
                return None
            cells = OrderedDict(payload["cells"])
            summaries = dict(payload["summaries"])
        except Exception:
            return None
        return cells, summaries

    def save(self, fingerprint: Tuple, cells: Dict, summaries: Dict,
             merge: bool = True) -> Path:
        """Atomically persist a fingerprint's memo contents.

        With ``merge`` (the default) the current on-disk cells are folded in
        first so two processes flushing interleaved grids both survive; the
        in-memory values win on key collisions (they are bit-identical anyway
        — the engine is deterministic per fingerprint/shape/precision).
        """
        merged_cells: Dict = {}
        merged_summaries: Dict = {}
        if merge:
            existing = self.load(fingerprint)
            if existing is not None:
                merged_cells.update(existing[0])
                merged_summaries.update(existing[1])
        merged_cells.update(cells)
        merged_summaries.update(summaries)

        payload = {
            "schema": self.schema_version,
            "constants_digest": self.constants_digest,
            "fingerprint": fingerprint,
            "cells": dict(merged_cells),
            "summaries": dict(merged_summaries),
        }
        # Torn-write-proofing is shared with the training checkpoints: one
        # write-temp + fsync + rename code path in repro.io_atomic (the file
        # format is unchanged — a bare pickle, no checksum envelope, so
        # pre-existing caches stay readable).
        return io_atomic.atomic_write_pickle(self.path_for(fingerprint),
                                             payload)
