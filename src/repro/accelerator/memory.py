"""Memory hierarchy model: DRAM, global buffer, and register files.

The paper's accelerators share the same memory hierarchy and memory/MAC-array
area so that the comparison isolates the MAC unit and dataflow (Sec. 4.1.2).
The energy-per-access constants follow the well-known relative costs used by
Eyeriss-style analyses: a DRAM access is roughly two orders of magnitude more
expensive than a register-file access, with the on-chip SRAM in between.
Capacities and bandwidths are configurable so the micro-architecture search
mode of the optimizer can explore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MemoryLevel", "MemoryHierarchy", "default_hierarchy"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the storage hierarchy."""

    name: str
    capacity_bits: float          # storage capacity (inf for DRAM)
    bandwidth_bits_per_cycle: float
    energy_per_bit: float         # pJ-scale arbitrary units, relative across levels

    def access_energy(self, bits: float) -> float:
        return bits * self.energy_per_bit

    def transfer_cycles(self, bits: float) -> float:
        if self.bandwidth_bits_per_cycle <= 0:
            raise ValueError(f"level {self.name} has non-positive bandwidth")
        return bits / self.bandwidth_bits_per_cycle


@dataclass
class MemoryHierarchy:
    """Ordered storage levels, outermost (DRAM) first, innermost (RF) last."""

    levels: List[MemoryLevel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError("a memory hierarchy needs at least DRAM and one buffer")

    # ------------------------------------------------------------------
    @property
    def dram(self) -> MemoryLevel:
        return self.levels[0]

    @property
    def global_buffer(self) -> MemoryLevel:
        return self.levels[1]

    @property
    def register_file(self) -> MemoryLevel:
        return self.levels[-1]

    def level_names(self) -> List[str]:
        return [level.name for level in self.levels]

    def by_name(self, name: str) -> MemoryLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no memory level named {name!r}")

    def scaled(self, buffer_scale: float = 1.0,
               bandwidth_scale: float = 1.0) -> "MemoryHierarchy":
        """Return a copy with on-chip capacities/bandwidths scaled.

        Used by the micro-architecture search mode of the optimizer to explore
        different buffer sizings under an area budget.
        """
        scaled_levels = [self.levels[0]]
        for level in self.levels[1:]:
            scaled_levels.append(MemoryLevel(
                name=level.name,
                capacity_bits=level.capacity_bits * buffer_scale,
                bandwidth_bits_per_cycle=level.bandwidth_bits_per_cycle * bandwidth_scale,
                energy_per_bit=level.energy_per_bit,
            ))
        return MemoryHierarchy(scaled_levels)


def default_hierarchy() -> MemoryHierarchy:
    """The shared baseline hierarchy (matched across all compared designs).

    Sizes follow the Bit Fusion configuration the paper adopts for all
    designs: a DRAM interface, a multi-banked global SRAM buffer, and
    per-unit register files.
    """
    return MemoryHierarchy([
        MemoryLevel("DRAM", capacity_bits=float("inf"),
                    bandwidth_bits_per_cycle=256.0, energy_per_bit=64.0),
        MemoryLevel("GlobalBuffer", capacity_bits=16e6,     # ~2 MB
                    bandwidth_bits_per_cycle=2048.0, energy_per_bit=2.0),
        MemoryLevel("RegisterFile", capacity_bits=64e3,
                    bandwidth_bits_per_cycle=16384.0, energy_per_bit=0.15),
    ])
