"""Socket service fronting one shared :class:`EngineStore`.

A fleet of serving workers (or several CI legs on one runner) each keep
their own :class:`~repro.accelerator.engine.EvaluationEngine`; without
coordination every process re-reads — and on flush re-merges — the same
cache files.  This module puts one process in charge of the files and lets
everyone else warm-start through it:

* :class:`EngineStoreServer` binds a Unix socket next to the cache
  directory it owns and answers ``load`` / ``save`` / ``ping`` requests,
  serialising all file access through the one :class:`EngineStore` it
  wraps (requests are handled on a thread per connection; the store's
  atomic-rename writes make concurrent ``save`` safe anyway).
* :class:`RemoteEngineStore` is a drop-in for :class:`EngineStore` on the
  client side — same ``load`` / ``save`` signatures — speaking a
  length-prefixed pickle protocol over the socket.  A dead or missing
  service degrades to a cold start (``load`` returns ``None``, ``save``
  is dropped) with a single warning, never an exception: persistence is
  an accelerator, not a dependency.

Activation is environment-driven: when ``REPRO_ENGINE_STORE_SOCKET`` names
a socket path, :func:`repro.accelerator.engine_store.resolve_store` hands
the engine a :class:`RemoteEngineStore` instead of direct file access.

Run standalone with ``python -m repro.accelerator.store_service SOCKET
[CACHE_DIR]``.
"""

from __future__ import annotations

import os
import pickle
import random
import socket
import struct
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple

from .. import config
from ..faults import FaultError, fault_point
from .engine_store import EngineStore

__all__ = ["EngineStoreServer", "RemoteEngineStore", "StoreProtocolError"]

#: Frame = 4-byte little-endian payload length + pickled payload.
_LENGTH = struct.Struct("<I")

#: Refuse absurd frames instead of allocating unbounded buffers when a
#: non-protocol peer connects to the socket.
_MAX_FRAME = 1 << 30


class StoreProtocolError(RuntimeError):
    """The peer sent a frame the store protocol cannot interpret."""


def _recv_exact(conn: socket.socket, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = conn.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("engine-store peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(conn: socket.socket, payload: object,
                site: str = "store.frame.send") -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    blob = fault_point(site, blob)
    conn.sendall(_LENGTH.pack(len(blob)) + blob)


def _recv_frame(conn: socket.socket,
                site: str = "store.frame.recv") -> object:
    header = _recv_exact(conn, _LENGTH.size)
    (nbytes,) = _LENGTH.unpack(header)
    if nbytes > _MAX_FRAME:
        raise StoreProtocolError(f"frame of {nbytes} bytes exceeds limit")
    blob = fault_point(site, _recv_exact(conn, nbytes))
    try:
        return pickle.loads(blob)
    except pickle.PickleError:
        raise
    except Exception as error:
        # A bit-flipped frame typically dies inside pickle with an arbitrary
        # exception type; normalise so callers can treat it as transient.
        raise pickle.UnpicklingError(
            f"corrupt engine-store frame: {error!r}") from error


class EngineStoreServer:
    """Serve one :class:`EngineStore` over a Unix socket.

    The server owns the socket path: a stale file from a previous run is
    unlinked on :meth:`start`, and the path is removed again on
    :meth:`close`.  Each accepted connection gets a daemon thread that
    answers request frames until the peer disconnects, so one client
    holding a connection open does not block others.
    """

    def __init__(self, socket_path: os.PathLike,
                 store: Optional[EngineStore] = None,
                 cache_dir: Optional[os.PathLike] = None) -> None:
        self.socket_path = Path(socket_path)
        self.store = store if store is not None else EngineStore(cache_dir)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "EngineStoreServer":
        if self._listener is not None:
            return self
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self.socket_path.unlink()
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(16)
        self._listener = listener
        self._closed.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="engine-store-accept", daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closed.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "EngineStoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closed.is_set() and listener is not None:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="engine-store-conn", daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._closed.is_set():
                try:
                    request = _recv_frame(conn, site="store.server.recv")
                except (ConnectionError, OSError):
                    return
                except pickle.PickleError:
                    # Undecodable frame: drop the connection so the client
                    # treats it as a transport failure (retryable), not a
                    # definitive protocol verdict.
                    return
                except FaultError:
                    # Injected server-side fault: model a crashed/flaky
                    # service by dropping the connection, not by answering
                    # with a well-formed ("err", ...) — the client must see
                    # a *transport* failure it can retry, not a protocol
                    # error.
                    return
                except Exception as error:
                    try:
                        _send_frame(conn, ("err", repr(error)),
                                    site="store.server.send")
                    except (OSError, FaultError):
                        pass
                    return
                try:
                    reply = ("ok", self._dispatch(request))
                except FaultError:
                    return
                except Exception as error:
                    reply = ("err", repr(error))
                try:
                    _send_frame(conn, reply, site="store.server.send")
                except OSError:
                    return
                except FaultError:
                    return

    def _dispatch(self, request: object) -> object:
        if not isinstance(request, tuple) or not request:
            raise StoreProtocolError(f"malformed request {request!r}")
        op = request[0]
        if op == "ping":
            return "pong"
        if op == "load":
            (_, fingerprint) = request
            return self.store.load(fingerprint)
        if op == "save":
            (_, fingerprint, cells, summaries, merge) = request
            return str(self.store.save(fingerprint, cells, summaries,
                                       merge=merge))
        raise StoreProtocolError(f"unknown op {op!r}")


#: Exceptions one store call may transiently hit (flaky service, mid-frame
#: disconnect, bit-flipped frame, injected fault) — retried with backoff.
_TRANSIENT = (OSError, ConnectionError, pickle.PickleError, FaultError)


class RemoteEngineStore:
    """Client-side :class:`EngineStore` twin speaking to a store service.

    One short-lived connection per call keeps the client state-free (no
    reconnect logic, safe across forks).  Transient failures (connect
    refused, mid-frame disconnect, undecodable frame, socket timeout) are
    retried with capped exponential backoff — jitter drawn from a seeded
    stream so a fleet of clients neither thunders in lockstep nor behaves
    differently between runs.  ``REPRO_STORE_BREAKER_FAILURES`` consecutive
    exhausted calls open a circuit breaker: further calls fast-fail to
    cold-start semantics (no connect, no sleeps) until
    ``REPRO_STORE_BREAKER_RESET_S`` passes and one half-open probe is let
    through.  Degradation stays cold-start shaped either way — ``load``
    returns ``None``, ``save`` is dropped, one warning per instance —
    persistence is an accelerator, not a dependency.
    """

    def __init__(self, socket_path: os.PathLike, seed: int = 0) -> None:
        self.socket_path = Path(socket_path)
        self._warned = False
        self._jitter = random.Random(seed)
        self._consecutive_failures = 0
        self._breaker_open_until: Optional[float] = None
        # --- counters (sequencing tests and operator introspection) ---
        self.attempt_count = 0           # individual connect attempts
        self.retry_count = 0             # backoff sleeps taken
        self.fastfail_count = 0          # calls answered by an open breaker
        self.breaker_opens = 0           # closed -> open transitions

    # Seam for tests: patch to observe/skip real sleeping and time.
    _sleep = staticmethod(time.sleep)
    _now = staticmethod(time.monotonic)

    @property
    def cache_dir(self) -> str:
        """Identity token mirroring ``EngineStore.cache_dir``.

        The engine dedups persistence attachments by ``str(cache_dir)``,
        so two engines pointed at the same service share one identity.
        """
        return f"socket://{self.socket_path}"

    @property
    def breaker_state(self) -> str:
        """``closed`` (normal), ``open`` (fast-failing) or ``half-open``
        (the reset period elapsed; the next call probes the service)."""
        if self._breaker_open_until is None:
            return "closed"
        return "open" if self._now() < self._breaker_open_until \
            else "half-open"

    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff with jitter in [0.5, 1.5) of nominal."""
        base = config.store_backoff_ms()
        cap = config.store_backoff_cap_ms()
        nominal = min(cap, base * (2.0 ** attempt))
        return nominal * (0.5 + self._jitter.random()) / 1000.0

    def _attempt(self, request: tuple) -> Optional[object]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.settimeout(config.store_timeout_s())
            conn.connect(str(self.socket_path))
            _send_frame(conn, request, site="store.client.send")
            reply = _recv_frame(conn, site="store.client.recv")
        if (not isinstance(reply, tuple) or len(reply) != 2
                or reply[0] not in ("ok", "err")):
            raise StoreProtocolError(f"malformed reply {reply!r}")
        status, value = reply
        if status == "err":
            raise StoreProtocolError(f"engine-store service error: {value}")
        return value

    def _call(self, request: tuple) -> Optional[object]:
        if self.breaker_state == "open":
            self.fastfail_count += 1
            return None
        retries = config.store_retries()
        last_error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            self.attempt_count += 1
            try:
                value = self._attempt(request)
            except _TRANSIENT as error:
                last_error = error
                if attempt < retries:
                    self.retry_count += 1
                    self._sleep(self._backoff_s(attempt))
                continue
            # Success closes a half-open breaker and resets the count.
            self._consecutive_failures = 0
            self._breaker_open_until = None
            return value
        self._consecutive_failures += 1
        threshold = config.store_breaker_failures()
        if threshold > 0 and self._consecutive_failures >= threshold:
            if self.breaker_state != "open":
                self.breaker_opens += 1
            self._breaker_open_until = (self._now()
                                        + config.store_breaker_reset_s())
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"engine-store service at {self.socket_path} is "
                f"unreachable ({last_error!r}); continuing with a cold "
                f"cache", stacklevel=3)
        return None

    def ping(self) -> bool:
        return self._call(("ping",)) == "pong"

    def load(self, fingerprint: Tuple
             ) -> Optional[Tuple["Dict", Dict]]:
        result = self._call(("load", fingerprint))
        if result is None:
            return None
        cells, summaries = result
        return cells, summaries

    def save(self, fingerprint: Tuple, cells: Dict, summaries: Dict,
             merge: bool = True) -> Optional[str]:
        return self._call(("save", fingerprint, dict(cells),
                           dict(summaries), merge))


def main(argv: Optional[list] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="serve an engine cache directory over a Unix socket")
    parser.add_argument("socket", help="socket path to bind")
    parser.add_argument("cache_dir", nargs="?", default=None,
                        help="cache directory (default: REPRO_ENGINE_CACHE_DIR"
                             " or ~/.cache/repro/engine)")
    options = parser.parse_args(argv)
    server = EngineStoreServer(options.socket, cache_dir=options.cache_dir)
    server.start()
    print(f"engine store service on {options.socket} "
          f"(cache {server.store.cache_dir})", flush=True)
    stop = threading.Event()
    try:
        # Periodic finite waits instead of one unbounded sleep: the process
        # stays signal-responsive and the no-unbounded-wait lint holds.
        while not stop.wait(1.0):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
