"""Inference sessions: the plan cache and execution front-end.

An :class:`InferenceSession` owns everything the deployment side of the paper
needs to run a (possibly RPS-switched) model: one topology trace of the
model, a cache of :class:`~repro.inference.plan.CompiledPrecisionPlan` per
execution precision, and a staleness fingerprint that rebuilds plans whenever
the model's parameters or BN statistics change (optimizer steps and
``load_state_dict`` both bump parameter versions; buffer contents are
digested directly).

It replaces the ad-hoc ``set_model_precision`` + forward loops that used to
live in ``core/evaluation.py``, ``core/rps.py``, ``core/tradeoff.py``,
``defense/trainer.py`` and the experiment harnesses.  The live module path
remains the parity oracle: a session built with ``fold_bn=False`` is
bit-identical to it, the default BN-folding session is within reduction-order
noise (see :mod:`repro.inference.plan`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import config
from ..faults import fault_point
from ..nn.module import Module
from ..quantization.precision import FULL_PRECISION, Precision
from ..quantization.quantized_modules import get_model_precision
from .plan import CompiledPrecisionPlan, ModelTrace, model_fingerprint, trace_model

__all__ = ["InferenceSession"]

PrecisionLike = Union[int, Precision, None]


def _as_precision(value: PrecisionLike) -> Precision:
    if value is None:
        return FULL_PRECISION
    if isinstance(value, Precision):
        return value
    return Precision(int(value))


class InferenceSession:
    """Compiled-plan cache and batched executor for one model.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.module.Module` classifier.  Quantisation-aware
        layers are pre-quantised per plan; plain models simply get the
        BN-folded eval forward.
    fold_bn:
        Fold eval-mode batch norm into preceding conv weights (default from
        ``REPRO_INFER_FOLD_BN``).  ``False`` gives a bit-identical replay of
        the live-module forward.
    batch_size:
        Default micro-batch size for :meth:`predict` / :meth:`accuracy`.
    """

    def __init__(self, model: Module, fold_bn: Optional[bool] = None,
                 batch_size: int = 256) -> None:
        self.model = model
        self.fold_bn = config.infer_fold_bn() if fold_bn is None else bool(fold_bn)
        self.batch_size = int(batch_size)
        self._trace: Optional[ModelTrace] = None
        self._plans: Dict[object, CompiledPrecisionPlan] = {}
        self._fingerprint: Optional[Tuple[tuple, str]] = None
        # Parameter / buffer handles cached once: the module tree is static,
        # so the staleness check only reads versions and buffer bytes instead
        # of re-walking hundreds of modules per call.  (state_dict loads
        # mutate arrays in place; freshly *replacing* Parameter objects is
        # not supported without calling invalidate().)
        self._param_refs = [(name, p) for name, p in model.named_parameters()]
        self._buffer_refs = [(name, buf) for name, buf in model.named_buffers()]

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every compiled plan (and the topology trace)."""
        self._plans.clear()
        self._trace = None
        self._fingerprint = None
        self._param_refs = [(n, p) for n, p in self.model.named_parameters()]
        self._buffer_refs = [(n, b) for n, b in self.model.named_buffers()]

    def _fingerprint_now(self) -> Tuple[tuple, str]:
        """Staleness token, computed over the cached parameter / buffer
        handles (single implementation: :func:`plan.model_fingerprint`)."""
        return model_fingerprint(self.model, self._param_refs,
                                 self._buffer_refs)

    def refresh(self) -> bool:
        """Rebuild-check: drop stale plans; returns True when they were stale.

        Called automatically by every public entry point; exposed for callers
        that mutate the model out of band (e.g. writing directly into
        parameter arrays without bumping versions is *not* detected — use
        ``load_state_dict`` or call :meth:`invalidate`).
        """
        fingerprint = self._fingerprint_now()
        if fingerprint != self._fingerprint:
            self._plans.clear()
            self._fingerprint = fingerprint
            return True
        return False

    @contextmanager
    def _eval_mode(self):
        """Hold the model in eval mode for a batched entry point.

        Hoisted out of the per-batch plan execution so a many-batch call does
        the (module-tree-walking) train/eval flip at most once.
        """
        was_training = self.model.training
        if was_training:
            self.model.eval()
        try:
            yield
        finally:
            if was_training:
                self.model.train(True)

    def plan_for(self, precision: PrecisionLike,
                 input_shape: Optional[Sequence[int]] = None
                 ) -> CompiledPrecisionPlan:
        """The compiled plan for ``precision`` (building it on first use).

        ``input_shape`` seeds the topology trace on the very first call; it
        is unnecessary once any forward has run.
        """
        self.refresh()
        return self._plan(_as_precision(precision), input_shape)

    def _plan(self, precision: Precision,
              input_shape: Optional[Sequence[int]] = None
              ) -> CompiledPrecisionPlan:
        """Plan lookup without the staleness check (done once per entry point).

        Keyed by the active compute backend as well: plan execution
        dispatches per call, but a plan's cached parity expectations (and
        any backend-specific pack it warms) belong to the backend it was
        built under, so switching ``fast`` <-> ``native`` mid-session gets
        a fresh compile instead of a silently re-labelled one.
        """
        from ..nn import functional as F

        key = (precision.key, self.fold_bn, F.get_backend())
        plan = self._plans.get(key)
        if plan is None:
            fault_point("session.plan.build")
            if self._trace is None:
                if input_shape is None:
                    raise ValueError(
                        "the session has no topology trace yet; pass "
                        "input_shape (N, C, H, W) or run a forward first")
                self._trace = trace_model(self.model, tuple(input_shape))
            plan = CompiledPrecisionPlan(self.model, precision, self._trace,
                                         fold_bn=self.fold_bn)
            self._plans[key] = plan
        return plan

    @property
    def cached_plan_keys(self) -> List[object]:
        return sorted(self._plans.keys(), key=repr)

    def warm(self, precisions: Sequence[PrecisionLike],
             input_shape: Sequence[int]) -> List[object]:
        """Prebuild the compiled plans for ``precisions`` in one pass.

        The warm-start hook of the serving fleet: a freshly spawned (or
        respawned) worker compiles the plans for its affinity precisions
        before traffic arrives, so its first batch pays no trace/quantise/
        repack latency.  ``input_shape`` is the (N, C, H, W) the topology
        trace is seeded with; the staleness check runs once for the whole
        sweep.  Returns the cache keys now warm.
        """
        self.refresh()
        for precision in precisions:
            self._plan(_as_precision(precision), tuple(input_shape))
        return self.cached_plan_keys

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray,
                precision: PrecisionLike = None) -> np.ndarray:
        """Logits for one batch at ``precision``.

        ``precision=None`` uses the model's current execution precision (the
        one last assigned by ``set_model_precision``), falling back to full
        precision for plain models — so a drop-in replacement for a bare
        eval-mode forward.
        """
        if precision is None:
            precision = get_model_precision(self.model) or FULL_PRECISION
        plan = self.plan_for(precision, input_shape=x.shape)
        with self._eval_mode():
            return plan.execute(x)

    def predict(self, x: np.ndarray, precision: PrecisionLike = None,
                batch_size: Optional[int] = None) -> np.ndarray:
        """Predicted labels at one precision, batched internally."""
        if precision is None:
            precision = get_model_precision(self.model) or FULL_PRECISION
        self.refresh()
        return self._predict_fresh(x, _as_precision(precision), batch_size)

    def _predict_fresh(self, x: np.ndarray, precision: Precision,
                       batch_size: Optional[int]) -> np.ndarray:
        batch_size = batch_size or self.batch_size
        out = np.empty(len(x), dtype=np.int64)
        plan = None
        with self._eval_mode():
            for start in range(0, len(x), batch_size):
                chunk = x[start:start + batch_size]
                if plan is None:
                    plan = self._plan(precision, input_shape=chunk.shape)
                out[start:start + batch_size] = \
                    plan.execute(chunk).argmax(axis=1)
        return out

    def predict_assigned(self, x: np.ndarray,
                         assignments: Sequence[Precision],
                         batch_size: Optional[int] = None) -> np.ndarray:
        """Per-sample mixed-precision prediction.

        ``assignments[i]`` is the execution precision of sample ``i`` (the
        RPS per-input draw).  Samples are grouped per precision so each group
        runs as full micro-batches through that precision's compiled plan.
        """
        if len(assignments) != len(x):
            raise ValueError("one precision assignment per sample required")
        out = np.empty(len(x), dtype=np.int64)
        if len(x) == 0:
            return out
        groups: Dict[object, Tuple[Precision, List[int]]] = {}
        for index, precision in enumerate(assignments):
            precision = _as_precision(precision)
            entry = groups.get(precision.key)
            if entry is None:
                entry = groups[precision.key] = (precision, [])
            entry[1].append(index)
        self.refresh()
        with self._eval_mode():
            for precision, indices in groups.values():
                selected = np.asarray(indices, dtype=np.int64)
                out[selected] = self._predict_fresh(x[selected], precision,
                                                    batch_size=batch_size)
        return out

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 precision: PrecisionLike = None,
                 batch_size: Optional[int] = None) -> float:
        """Top-1 accuracy at one precision."""
        if len(x) == 0:
            return 0.0
        predictions = self.predict(x, precision, batch_size=batch_size)
        return float((predictions == np.asarray(y)).mean())
