"""Compiled per-precision inference plans.

The training stack executes a quantised model by *mutating* it:
``set_model_precision`` walks the module tree, every ``QuantConv2d`` re-reads
its precision attribute per forward, eval-mode batch norm re-derives its
affine from the running statistics on every call, and each layer output takes
one or more extra full-array passes (BN multiply/add, ReLU).  That is the
right shape for training — weights change every step — but RPS *inference*
(Alg. 1, lines 14-19) runs a frozen model at a handful of precisions over and
over.

A :class:`CompiledPrecisionPlan` freezes one (model, precision) pair into an
allocation-free NHWC forward, mirroring the graph-capture/execution split of
inference engines (cf. tinygrad's lazy-graph -> realized-buffer separation):

* **Trace** (once per model): a single instrumented forward records every
  conv / linear / batch-norm / ReLU call with its input and output tensors,
  and the autograd graph of the traced output yields exact consumer counts
  for every intermediate.
* **Fold** (once per precision): eval-mode batch norm whose input is produced
  by a convolution with no other consumer is folded into that convolution —
  the quantised weights are scaled by ``gamma * inv_std`` per output channel
  and the BN shift becomes the conv bias.  BN branches are resolved per
  precision (switchable BN), quantised weights are computed once with the
  same quantizer as the live path, and the GEMM repack is precomputed.
  ReLUs that exclusively consume a compiled conv/BN output are fused into
  that kernel's epilogue.
* **Execute**: module forwards are swapped for the compiled kernels for the
  duration of one batch; everything the plan did not compile (pooling,
  residual adds, flatten) runs through the unmodified module path under
  ``no_grad``.

Numerics: with ``fold_bn=False`` a plan replays the exact op sequence of the
live ``set_model_precision`` path (fast backend) and is **bit-identical** to
it.  With ``fold_bn=True`` the BN multiply is reassociated into the weight
tensor, which perturbs float32 results by reduction order (~1e-6 relative
per layer); ``tests/test_inference_session.py`` bounds the end-to-end effect.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.layers import BatchNorm2d, Conv2d, Linear, ReLU, SwitchableBatchNorm2d
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..nn.workspace import default_workspace
from ..quantization.linear_quantizer import (
    QuantizerConfig,
    compute_quant_scale,
    quantize_data_into,
)
from ..quantization.precision import Precision
from ..quantization.quantized_modules import QuantConv2d, QuantLinear

__all__ = ["CompiledPrecisionPlan", "ModelTrace", "trace_model",
           "model_fingerprint"]

#: Module classes captured by the trace (everything else — pooling, dropout,
#: flatten, residual arithmetic — stays on the live path).
_TRACED_TYPES = (Conv2d, Linear, BatchNorm2d, SwitchableBatchNorm2d, ReLU)


@dataclass
class _CallRecord:
    """One traced module invocation."""

    module: Module
    input_id: int          # id() of the input Tensor object
    output_id: int         # id() of the output Tensor object
    input_ndim: int


@dataclass
class ModelTrace:
    """Topology snapshot of one model forward.

    ``records`` is the ordered list of traced module calls; ``consumers``
    maps ``id(tensor)`` to the number of autograd-graph consumers of that
    tensor, which is what licenses conv<-BN folding and ReLU fusion (an
    intermediate consumed anywhere else must be materialised).
    """

    records: List[_CallRecord]
    consumers: Dict[int, int]
    input_shape: Tuple[int, ...]

    def producers(self) -> Dict[int, _CallRecord]:
        """Map output-tensor id -> producing record (outermost call wins)."""
        return {rec.output_id: rec for rec in self.records}

    def calls_per_module(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for rec in self.records:
            counts[id(rec.module)] = counts.get(id(rec.module), 0) + 1
        return counts


def trace_model(model: Module, input_shape: Tuple[int, ...],
                rng_seed: int = 0) -> ModelTrace:
    """Record one instrumented forward of ``model`` on a synthetic input.

    Runs in eval mode with gradients *enabled* so the autograd graph of the
    output provides exact consumer counts for every intermediate tensor.
    The trace is topology-only: it is independent of the model's current
    precision and of the batch size (a single sample is used).
    """
    records: List[_CallRecord] = []
    keepalive: List[Tensor] = []          # ids must stay unique during trace

    # Switchable-BN branches are executed *through* their parent; tracing
    # them too would duplicate every BN record.
    branch_ids = set()
    for module in model.modules():
        if isinstance(module, SwitchableBatchNorm2d):
            branch_ids.update(id(b) for b in module.branch_modules())

    wrapped: List[Module] = []
    seen = set()
    for module in model.modules():
        if id(module) in seen or id(module) in branch_ids:
            continue
        seen.add(id(module))
        if not isinstance(module, _TRACED_TYPES):
            continue

        def make_traced(m: Module = module):
            original = m.forward

            def traced(x: Tensor) -> Tensor:
                out = original(x)
                records.append(_CallRecord(m, id(x), id(out), x.ndim))
                keepalive.append(x)
                keepalive.append(out)
                return out

            return traced

        module.forward = make_traced()
        wrapped.append(module)

    was_training = model.training
    model.eval()
    try:
        shape = (1,) + tuple(input_shape[1:])
        probe = np.random.default_rng(rng_seed).standard_normal(shape)
        x = Tensor(probe.astype(np.float32), requires_grad=True)
        out = model(x)
    finally:
        for module in wrapped:
            module.__dict__.pop("forward", None)
        model.train(was_training)
        nn_workspace.end_step()

    consumers: Dict[int, int] = {}
    visited = set()
    stack = [out]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        for parent in node._prev:
            consumers[id(parent)] = consumers.get(id(parent), 0) + 1
            stack.append(parent)

    return ModelTrace(records=records, consumers=consumers,
                      input_shape=tuple(input_shape))


def model_fingerprint(model: Module, params=None, buffers=None
                      ) -> Tuple[tuple, str]:
    """Cheap staleness token covering every parameter and buffer.

    Parameters contribute ``(id(data), version)`` — both optimizer steps and
    ``load_state_dict`` bump the version — and buffers (BN running
    statistics, which carry no version counter) contribute a content digest.
    A compiled plan is valid exactly while this fingerprint is unchanged.

    ``params`` / ``buffers`` accept pre-collected ``(name, handle)`` lists
    so repeat callers (:class:`~repro.inference.InferenceSession`) can skip
    the module-tree walk; the module tree is static, so caching the handles
    once is sound.
    """
    if params is None:
        params = list(model.named_parameters())
    if buffers is None:
        buffers = list(model.named_buffers())
    token = tuple((name, id(p.data), p.version) for name, p in params)
    digest = hashlib.sha1()
    for name, buf in buffers:
        digest.update(name.encode())
        digest.update(buf.tobytes())
    return token, digest.hexdigest()


# ---------------------------------------------------------------------------
# Per-precision compilation
# ---------------------------------------------------------------------------

def _bn_branch(bn: Module, precision: Precision) -> BatchNorm2d:
    """Resolve the BN branch for ``precision`` (mirrors set_model_precision)."""
    if isinstance(bn, SwitchableBatchNorm2d):
        key = precision.key
        if key not in bn.available_keys():
            key = "fp"
        return bn.branch(key)
    return bn


def _bn_affine(branch: BatchNorm2d) -> Tuple[np.ndarray, np.ndarray]:
    """Eval-mode BN as a per-channel affine, identical to the fast kernel."""
    inv_std = (1.0 / np.sqrt(branch.running_var + branch.eps)).astype(np.float32)
    scale = branch.weight.data * inv_std
    shift = branch.bias.data - branch.running_mean * scale
    return scale, shift


class CompiledPrecisionPlan:
    """A frozen (model, precision) forward: pre-quantised, BN-folded, fused.

    Built by :class:`repro.inference.InferenceSession`; use
    :meth:`execute` to run one batch.  The plan holds *copies* of all derived
    weights, so it stays valid (and the session's fingerprint check detects
    staleness) even while the live model keeps training.
    """

    def __init__(self, model: Module, precision: Precision, trace: ModelTrace,
                 fold_bn: bool = True) -> None:
        self.model = model
        self.precision = precision
        self.fold_bn = bool(fold_bn)
        self.folded_bn_count = 0
        self.fused_relu_count = 0
        self._swaps: List[Tuple[Module, Callable]] = []
        self._relu_schedules: Dict[int, List[bool]] = {}
        self._relu_counters: Dict[int, int] = {}
        self._live_precision_modules: List[Module] = []
        self._compile(trace)

    # ------------------------------------------------------------------
    def _compile(self, trace: ModelTrace) -> None:
        precision = self.precision
        producers = trace.producers()
        calls = trace.calls_per_module()

        # A module invoked more than once per forward (shared instance) has
        # call-site-dependent fold decisions; leave it on the live path.
        # ReLU is exempt: its kernel consults a per-call schedule.
        def compilable(module: Module) -> bool:
            return calls.get(id(module), 0) == 1

        # --- pass 1: conv <- BN folding decisions -----------------------
        conv_fold: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        bn_to_conv: Dict[int, Module] = {}
        bn_affine: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        bn_records = [rec for rec in trace.records
                      if isinstance(rec.module, (BatchNorm2d,
                                                 SwitchableBatchNorm2d))]
        for rec in bn_records:
            if rec.input_ndim != 4 or not compilable(rec.module):
                continue
            branch = _bn_branch(rec.module, precision)
            affine = _bn_affine(branch)
            producer = producers.get(rec.input_id)
            if (self.fold_bn and producer is not None
                    and isinstance(producer.module, Conv2d)
                    and compilable(producer.module)
                    and trace.consumers.get(rec.input_id, 0) == 1):
                conv_fold[id(producer.module)] = affine
                bn_to_conv[id(rec.module)] = producer.module
                self.folded_bn_count += 1
            else:
                bn_affine[id(rec.module)] = affine

        # --- pass 2: ReLU fusion into the producing kernel's epilogue ---
        conv_relu: set = set()
        bn_relu: set = set()
        for rec in trace.records:
            if not isinstance(rec.module, ReLU):
                continue
            schedule = self._relu_schedules.setdefault(id(rec.module), [])
            fused = False
            producer = producers.get(rec.input_id)
            if (producer is not None
                    and trace.consumers.get(rec.input_id, 0) == 1):
                pm = producer.module
                if id(pm) in bn_to_conv:
                    conv_relu.add(id(bn_to_conv[id(pm)]))
                    fused = True
                elif id(pm) in bn_affine:
                    bn_relu.add(id(pm))
                    fused = True
                elif isinstance(pm, Conv2d) and compilable(pm):
                    conv_relu.add(id(pm))
                    fused = True
            if fused:
                self.fused_relu_count += 1
            schedule.append(fused)

        # --- pass 3: build kernels --------------------------------------
        # Modules the plan cannot compile (shared instances, BN on non-4D
        # input) stay on the live path; precision-sensitive ones among them
        # are pinned to the plan's precision for the duration of execute()
        # so a stale ``set_model_precision`` can never leak into a plan run.
        compiled = set()
        for rec in trace.records:
            module = rec.module
            if id(module) in compiled:
                continue
            compiled.add(id(module))
            if isinstance(module, Conv2d):
                if compilable(module):
                    self._swaps.append((module, self._compile_conv(
                        module, conv_fold.get(id(module)),
                        id(module) in conv_relu)))
                elif isinstance(module, QuantConv2d):
                    self._live_precision_modules.append(module)
            elif isinstance(module, Linear):
                if compilable(module):
                    self._swaps.append((module, self._compile_linear(module)))
                elif isinstance(module, QuantLinear):
                    self._live_precision_modules.append(module)
            elif isinstance(module, (BatchNorm2d, SwitchableBatchNorm2d)):
                if id(module) in bn_to_conv:
                    self._swaps.append((module, lambda x: x))
                elif id(module) in bn_affine:
                    self._swaps.append((module, self._compile_bn(
                        *bn_affine[id(module)], id(module) in bn_relu)))
                elif isinstance(module, SwitchableBatchNorm2d):
                    self._live_precision_modules.append(module)
            elif isinstance(module, ReLU):
                self._swaps.append((module, self._compile_relu(module)))

    # ------------------------------------------------------------------
    def _act_quantizer(self, module: Module) -> Optional[QuantizerConfig]:
        """Activation quantizer config, or None when inputs stay unquantised."""
        if self.precision.is_full_precision:
            return None
        if not isinstance(module, (QuantConv2d, QuantLinear)):
            return None
        return QuantizerConfig(bits=int(self.precision.act_bits),
                               symmetric=True)

    def _quant_entry(self, module: Module) -> Optional[list]:
        """The module's PR 3 quantised-weight cache entry for this precision.

        Shares the per-(precision, weight version) rounded weights — and for
        convolutions the GEMM repack slot — with the live training/attack
        path, so a plan build after any warm forward re-quantises nothing
        (and a cold build warms the cache for the live path in turn).
        """
        if (self.precision.is_full_precision
                or not isinstance(module, (QuantConv2d, QuantLinear))):
            return None
        return module._quantized_weight_entry(self.precision)

    def _layer_weight(self, module: Module) -> np.ndarray:
        """The layer's execution weight: quantised unless full precision."""
        entry = self._quant_entry(module)
        return module.weight.data if entry is None else entry[1]

    def _compile_conv(self, conv: Conv2d,
                      fold: Optional[Tuple[np.ndarray, np.ndarray]],
                      fuse_relu: bool) -> Callable:
        entry = self._quant_entry(conv)
        w_use = conv.weight.data if entry is None else entry[1]
        bias = conv.bias.data if conv.bias is not None else None
        if fold is not None:
            scale, shift = fold
            w_use = (w_use * scale[:, None, None, None]).astype(np.float32)
            bias = shift if bias is None else (bias * scale + shift)
            gemm = F.pack_gemm_weights(w_use)[0]
        elif entry is not None:
            # Unfolded quantised conv: share the GEMM repack slot with the
            # live QuantConv2d forward (filling it warms the live path too).
            if entry[3] is None:
                entry[3] = F.pack_gemm_weights(w_use)
            gemm = entry[3][0]
        else:
            # Full precision: the conv layer's own (id, version)-keyed pack.
            gemm = conv.gemm_weights()[0]
        # In every branch the pack is exactly what the live layer would hand
        # BLAS (for 1x1 kernels an F-order view of the weight): the memory
        # order selects the BLAS code path, and matching it keeps the GEMM
        # bit-identical to the set_model_precision reference.
        act_cfg = self._act_quantizer(conv)
        kh = kw = conv.kernel_size
        stride, padding = conv.stride, conv.padding

        def forward(x: Tensor) -> Tensor:
            data = x.data
            quant_params = None
            if act_cfg is not None:
                # Declarative (scale, qmin, qmax) instead of a callable:
                # conv2d_infer expands it to the identical elementwise
                # sequence on the fast backend and fuses it into the single
                # C staging pass on the native backend, so the whole
                # conv -> folded-BN -> ReLU -> activation-fake-quant chain
                # runs without a Python round-trip per tile.
                scale, _ = compute_quant_scale(data, act_cfg)
                quant_params = (float(scale), act_cfg.qmin, act_cfg.qmax)

            out = F.conv2d_infer(data, gemm, kh, kw, stride, padding,
                                 workspace=default_workspace(), bias=bias,
                                 relu=fuse_relu, quant_params=quant_params)
            return Tensor(out)

        return forward

    def _compile_linear(self, linear: Linear) -> Callable:
        # Kept as the transposed *view* (not a contiguous copy): the live
        # path hands BLAS the same view, and an identical memory layout keeps
        # the GEMM bit-identical to it.
        w_t = self._layer_weight(linear).T
        bias = linear.bias.data if linear.bias is not None else None
        act_cfg = self._act_quantizer(linear)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            staged = None
            if act_cfg is not None:
                scale, _ = compute_quant_scale(data, act_cfg)
                ws = default_workspace()
                staged = ws.acquire(data.shape)
                data = quantize_data_into(data, staged, scale,
                                          act_cfg.qmin, act_cfg.qmax)
            out = data @ w_t
            if staged is not None:
                # The GEMM output is a fresh array; the quantization
                # staging buffer is dead and goes back to the arena.
                ws.release(staged)
            if bias is not None:
                out += bias
            return Tensor(out)

        return forward

    def _compile_bn(self, scale: np.ndarray, shift: np.ndarray,
                    fuse_relu: bool) -> Callable:
        def forward(x: Tensor) -> Tensor:
            out = F.channel_affine_infer(x.data, scale, shift,
                                         workspace=default_workspace(),
                                         relu=fuse_relu)
            return Tensor(out)

        return forward

    def _compile_relu(self, module: ReLU) -> Callable:
        schedule = self._relu_schedules.get(id(module), [])
        counters = self._relu_counters
        key = id(module)

        def forward(x: Tensor) -> Tensor:
            index = counters.get(key, 0)
            counters[key] = index + 1
            if index < len(schedule) and schedule[index]:
                return x                      # fused into the producer
            return F.relu(x, workspace=default_workspace())

        return forward

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Run one batch through the compiled forward; returns the logits."""
        model = self.model
        was_training = model.training
        if was_training:              # skip the full module walk when already
            model.eval()              # in eval mode (the steady serving state)
        self._relu_counters.clear()
        applied: List[Module] = []
        pinned: List[Tuple[Module, object]] = []
        try:
            for module, forward in self._swaps:
                module.forward = forward
                applied.append(module)
            # Pin uncompiled precision-sensitive modules (shared instances
            # run on the live path) to this plan's precision, mirroring
            # set_model_precision, and restore afterwards.
            for module in self._live_precision_modules:
                if isinstance(module, SwitchableBatchNorm2d):
                    pinned.append((module, module.active_key))
                    key = self.precision.key
                    module.switch_to(key if key in module.available_keys()
                                     else "fp")
                else:
                    pinned.append((module, module.precision))
                    module.set_precision(self.precision)
            with no_grad():
                out = model(Tensor(x))
            return out.data
        finally:
            for module, previous in pinned:
                if isinstance(module, SwitchableBatchNorm2d):
                    module.switch_to(previous)
                else:
                    module.set_precision(previous)
            for module in applied:
                module.__dict__.pop("forward", None)
            if was_training:
                model.train(True)
            nn_workspace.end_step()
