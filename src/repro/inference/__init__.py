"""Inference-side execution: compiled precision plans and sessions.

The deployment half of the paper (RPS inference, Alg. 1 lines 14-19) runs a
frozen model at randomly drawn precisions.  This package separates that from
the training stack the way inference engines separate graph capture from
execution: :class:`CompiledPrecisionPlan` freezes one (model, precision) pair
— BN folded into conv weights, weights pre-quantised and GEMM-repacked,
ReLU fused — and :class:`InferenceSession` owns the plan cache plus batched
execution, replacing the old ``set_model_precision`` + forward loops.

:mod:`repro.serving` builds the async micro-batching server on top.
"""

from .plan import CompiledPrecisionPlan, ModelTrace, model_fingerprint, trace_model
from .session import InferenceSession

__all__ = [
    "CompiledPrecisionPlan",
    "InferenceSession",
    "ModelTrace",
    "model_fingerprint",
    "trace_model",
]
