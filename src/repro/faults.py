"""Seeded, deterministic fault injection for the serving stack.

The chaos suite used to be ad-hoc ``kill()`` calls scattered through tests;
this module gives every failure mode a *named site* and a reproducible plan.
Production code calls :func:`fault_point` at the seams where real deployments
fail (pipe reads, ring copies, socket frames, plan builds).  When no plan is
active — the default — a fault point is a handful of dict lookups; when a
plan matches the site it injects one of four fault kinds:

``latency``   sleep a fixed number of milliseconds before proceeding
``error``     raise :class:`FaultError`
``corrupt``   flip one seeded byte in the payload passed through the point
``hang``      sleep long enough that hang detection must fire (default 300 s)
``kill``      SIGKILL the calling process — no cleanup, no atexit, exactly
              what the kill–resume chaos harness needs to model a crashed
              training run or worker (use ``p=`` to let the seeded stream
              pick the firing ordinal)

Plans activate two ways:

* programmatically — ``with faults.installed(FaultPlan.parse(...)): ...``
  (or ``install()``/``uninstall()`` for non-scoped use); an installed plan
  always wins over the environment, and ``installed(None)`` masks the
  environment entirely;
* via the ``REPRO_FAULTS`` environment knob (read through
  :func:`repro.config.faults_spec`), which fleet workers inherit across
  ``fork`` — the CI fault matrix drives everything through this path.

The spec grammar is ``;``-separated entries of

    site=kind[:p=<prob>][:ms=<latency_ms>][:s=<hang_s>][:n=<max_fires>]

where ``site`` may be an ``fnmatch`` glob (``fleet.worker.*``).  Every
probabilistic decision and corrupted byte comes from a per-site
``np.random.default_rng`` stream seeded by ``(seed, crc32(site))``, so a
given (spec, seed) pair injects the same faults at the same fire ordinals on
every run — chaos tests replay exactly.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

import numpy as np

from repro import config

__all__ = [
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "install",
    "uninstall",
    "installed",
    "active_plan",
]

#: Fault kinds a spec may name.
FAULT_KINDS = ("latency", "error", "corrupt", "hang", "kill")


class FaultError(RuntimeError):
    """Raised by an ``error``-kind fault point (never by real code paths)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``site=kind[:opt=...]`` entry of a fault plan."""

    site: str
    kind: str
    prob: float = 1.0
    latency_ms: float = 20.0
    hang_s: float = 300.0
    max_fires: "int | None" = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} for site {self.site!r}; "
                f"choose from {FAULT_KINDS}")
        if not self.site:
            raise ValueError("fault spec needs a non-empty site pattern")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], "
                             f"got {self.prob} for site {self.site!r}")

    @classmethod
    def parse(cls, entry: str) -> "FaultSpec":
        site, sep, rest = entry.partition("=")
        site = site.strip()
        if not sep or not rest.strip():
            raise ValueError(f"malformed fault entry {entry!r}; expected "
                             f"site=kind[:p=..][:ms=..][:s=..][:n=..]")
        parts = rest.split(":")
        kwargs: dict = {"site": site, "kind": parts[0].strip()}
        keys = {"p": ("prob", float), "ms": ("latency_ms", float),
                "s": ("hang_s", float), "n": ("max_fires", int)}
        for opt in parts[1:]:
            key, sep, value = opt.partition("=")
            key = key.strip()
            if not sep or key not in keys:
                raise ValueError(f"malformed fault option {opt!r} in "
                                 f"{entry!r}; expected one of "
                                 f"{sorted(keys)}=<value>")
            name, cast = keys[key]
            try:
                kwargs[name] = cast(value.strip())
            except ValueError:
                raise ValueError(f"non-numeric fault option {opt!r} "
                                 f"in {entry!r}") from None
        return cls(**kwargs)


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with seeded per-site streams.

    Thread-safe: fleet supervisor sender/listener threads hit the same plan
    concurrently.  The lock is created per instance (never at import time —
    this module sits in the fork-safety closure of ``repro.serving.fleet``).
    """

    def __init__(self, specs, seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rngs = {
            spec.site: np.random.default_rng(
                (self.seed, zlib.crc32(spec.site.encode("utf-8"))))
            for spec in self.specs
        }
        self.fired: dict = {spec.site: 0 for spec in self.specs}

    @classmethod
    def parse(cls, raw: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see the module docstring)."""
        specs = [FaultSpec.parse(entry)
                 for entry in raw.split(";") if entry.strip()]
        return cls(specs, seed=seed)

    def matching(self, site: str):
        return [s for s in self.specs if fnmatchcase(site, s.site)]

    def _should_fire(self, spec: FaultSpec) -> bool:
        with self._lock:
            if spec.max_fires is not None and \
                    self.fired[spec.site] >= spec.max_fires:
                return False
            fire = spec.prob >= 1.0 or \
                float(self._rngs[spec.site].random()) < spec.prob
            if fire:
                self.fired[spec.site] += 1
            return fire

    def _corrupt(self, spec: FaultSpec, data) -> bytes:
        # Copy through the buffer protocol first: ``data`` may be bytes or a
        # C-contiguous ndarray (the ring transport passes tensors through
        # uncopied), and the flip position must span the full byte extent.
        out = bytearray(data)
        if not out:
            return data
        with self._lock:
            rng = self._rngs[spec.site]
            pos = int(rng.integers(len(out)))
            flip = int(rng.integers(1, 256))
        out[pos] ^= flip
        return bytes(out)

    def apply(self, site: str, data=None):
        """Run every matching spec against ``site``; returns ``data``
        (a corrupted copy under a firing ``corrupt`` spec)."""
        for spec in self.matching(site):
            if not self._should_fire(spec):
                continue
            if spec.kind == "latency":
                time.sleep(spec.latency_ms / 1000.0)
            elif spec.kind == "error":
                raise FaultError(f"injected fault at {site!r}")
            elif spec.kind == "hang":
                time.sleep(spec.hang_s)
            elif spec.kind == "kill":
                # A real SIGKILL of our own process: no Python-level unwind,
                # no atexit handlers, no flushes — the same crash a kernel
                # OOM kill or an operator's `kill -9` delivers.
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.kind == "corrupt" and data is not None:
                data = self._corrupt(spec, data)
        return data


# An explicitly installed plan (or the _MASK sentinel) wins over the
# environment; None means "fall through to REPRO_FAULTS".
_installed = None
_MASK = object()

# Parsed-environment cache keyed on the raw (spec, seed) pair so the hot-path
# fault_point never re-parses; a malformed spec is cached as None after one
# warning so it cannot crash serving on every request.
_env_cache: dict = {}


def install(plan: "FaultPlan | None") -> None:
    """Install ``plan`` process-wide; ``install(None)`` masks ``REPRO_FAULTS``
    without injecting anything."""
    global _installed
    _installed = _MASK if plan is None else plan


def uninstall() -> None:
    """Remove any installed plan, re-enabling environment activation."""
    global _installed
    _installed = None


@contextmanager
def installed(plan: "FaultPlan | None"):
    """Scope an installed plan to a ``with`` block."""
    global _installed
    prev = _installed
    install(plan)
    try:
        yield plan
    finally:
        _installed = prev


def active_plan() -> "FaultPlan | None":
    """The plan :func:`fault_point` consults right now, if any."""
    if _installed is not None:
        return None if _installed is _MASK else _installed
    raw = config.faults_spec()
    if not raw:
        return None
    key = (raw, config.faults_seed())
    if key not in _env_cache:
        try:
            _env_cache[key] = FaultPlan.parse(raw, seed=key[1])
        except ValueError as exc:
            warnings.warn(f"ignoring malformed REPRO_FAULTS: {exc}",
                          stacklevel=2)
            _env_cache[key] = None
    return _env_cache[key]


def fault_point(site: str, data=None):
    """Declare a named fault-injection site.

    Returns ``data`` unchanged when no active plan matches; under a matching
    plan may sleep, raise :class:`FaultError`, or return a corrupted copy of
    ``data`` (which must then be bytes-like).
    """
    plan = active_plan()
    if plan is None:
        return data
    return plan.apply(site, data)
