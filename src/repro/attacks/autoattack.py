"""AutoAttack-style ensemble (Croce & Hein, 2020), reduced to its core pieces.

The full AutoAttack is an ensemble of APGD-CE, APGD-DLR (targeted), FAB and
Square.  For this reproduction we implement the two APGD members — which on
ℓ∞ budgets account for nearly all of the ensemble's strength on
adversarially-trained models — and take, per example, the first member that
succeeds.  APGD is PGD with momentum and an adaptive step size that halves
whenever progress stalls, exactly as in the original paper's checkpoint rule.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from .base import Attack, input_gradient, predict_labels

__all__ = ["APGD", "AutoAttack"]


def _loss_values(model: Module, x: np.ndarray, y: np.ndarray, loss: str) -> np.ndarray:
    """Per-example attack-loss values (higher = better for the attacker)."""
    with no_grad():
        logits = model(Tensor(x)).data
    n = len(y)
    if loss == "ce":
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return -log_probs[np.arange(n), y]
    # DLR loss values
    order = np.sort(logits, axis=1)
    z_y = logits[np.arange(n), y]
    z_max = logits.max(axis=1)
    is_correct_top = z_max == z_y
    top_other = np.where(is_correct_top, order[:, -2], z_max)
    denom = order[:, -1] - order[:, -3] + 1e-12
    return (top_other - z_y) / denom


class APGD(Attack):
    """Auto-PGD with momentum and adaptive step-size halving."""

    name = "APGD"

    def __init__(self, epsilon: float, steps: int = 20, loss: str = "ce",
                 rho: float = 0.75, **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.steps = steps
        self.loss = loss
        self.rho = rho
        self.name = f"APGD-{loss.upper()}"

    def _checkpoints(self) -> List[int]:
        """Checkpoint iterations of the original APGD schedule."""
        points = [0, max(1, int(0.22 * self.steps))]
        while points[-1] < self.steps:
            step = max(int(points[-1] - points[-2]) - 1, 3)
            points.append(points[-1] + step)
        return [p for p in points if p <= self.steps]

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        step_size = np.full(len(x), 2.0 * self.epsilon, dtype=np.float32)
        x_adv = self.random_start(x)
        x_prev = x_adv.copy()
        best = x_adv.copy()
        best_loss = _loss_values(model, x_adv, y, self.loss)
        checkpoints = set(self._checkpoints())
        gains_since_checkpoint = np.zeros(len(x), dtype=np.int64)
        last_checkpoint = 0

        for step in range(1, self.steps + 1):
            grad = input_gradient(model, x_adv, y, loss=self.loss)
            step_shaped = step_size.reshape(-1, *([1] * (x.ndim - 1)))
            z = self.project(x, x_adv + step_shaped * np.sign(grad))
            # Momentum combination of the new point and the previous direction.
            alpha = 0.75 if step > 1 else 1.0
            x_new = self.project(x, x_adv + alpha * (z - x_adv)
                                 + (1 - alpha) * (x_adv - x_prev))
            x_prev = x_adv
            x_adv = x_new

            loss_now = _loss_values(model, x_adv, y, self.loss)
            improved = loss_now > best_loss
            best[improved] = x_adv[improved]
            best_loss = np.maximum(best_loss, loss_now)
            gains_since_checkpoint += improved.astype(np.int64)

            if step in checkpoints and step > 0:
                window = max(step - last_checkpoint, 1)
                stalled = gains_since_checkpoint < self.rho * window
                step_size[stalled] *= 0.5
                # Restart stalled examples from their best point so far.
                x_adv[stalled] = best[stalled]
                gains_since_checkpoint[:] = 0
                last_checkpoint = step

        return best


class AutoAttack(Attack):
    """Ensemble of APGD-CE and APGD-DLR; per-example first-success selection."""

    name = "AutoAttack"

    def __init__(self, epsilon: float, steps: int = 20, **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.steps = steps
        self._members = [
            APGD(epsilon, steps=steps, loss="ce", **kwargs),
            APGD(epsilon, steps=steps, loss="dlr", **kwargs),
        ]

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        x_adv = x.copy().astype(np.float32)
        remaining = np.ones(len(x), dtype=bool)
        for member in self._members:
            if not remaining.any():
                break
            candidate = member.perturb(model, x[remaining], y[remaining])
            candidate = self.project(x[remaining], candidate)
            preds = predict_labels(model, candidate)
            fooled = preds != y[remaining]
            indices = np.flatnonzero(remaining)
            x_adv[indices] = candidate
            remaining[indices[fooled]] = False
        return x_adv
