"""Fast Gradient Sign Method attacks (Goodfellow et al.; Wong et al. FGSM-RS)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .base import Attack, input_gradient

__all__ = ["FGSM", "FGSMRS"]


class FGSM(Attack):
    """Single-step ℓ∞ attack: ``x + eps * sign(grad_x loss)``."""

    name = "FGSM"

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        grad = input_gradient(model, x, y, loss="ce")
        x_adv = x + self.epsilon * np.sign(grad)
        return self.project(x, x_adv)


class FGSMRS(Attack):
    """FGSM with a random start (Wong, Rice & Kolter, "Fast is better than free").

    The perturbation is initialised uniformly in the ℓ∞ ball, then a single
    gradient-sign step of size ``alpha`` (default 1.25 * eps) is taken and the
    result is projected back onto the ball.
    """

    name = "FGSM-RS"

    def __init__(self, epsilon: float, alpha: Optional[float] = None,
                 **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.alpha = alpha if alpha is not None else 1.25 * epsilon

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x_adv = self.random_start(x)
        grad = input_gradient(model, x_adv, y, loss="ce")
        x_adv = x_adv + self.alpha * np.sign(grad)
        return self.project(x, x_adv)
