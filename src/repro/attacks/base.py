"""Shared infrastructure for adversarial attacks.

All attacks operate on image batches in the [0, 1] box under an ℓ∞ budget
``epsilon`` and return the *adversarial examples* (not the perturbations), so
they can be chained with any evaluation routine.  Attacks never modify the
model; whoever calls them is responsible for selecting the model's execution
precision first (``set_model_precision``), which is exactly how the paper's
transferability study (Fig. 1) crosses attack precision with inference
precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["Attack", "AttackResult", "eps_from_255", "input_gradient",
           "predict_labels", "margin_loss_grad", "batched_restarts_enabled"]


def batched_restarts_enabled() -> bool:
    """Whether multi-restart attacks fold restarts into the batch dimension.

    On by default; ``REPRO_NN_BATCHED_RESTARTS=0`` restores the sequential
    per-restart loop (which early-exits once every example is fooled, at the
    cost of one forward/backward *per restart* per step).
    """
    from .. import config

    return config.nn_batched_restarts()


def eps_from_255(eps: float) -> float:
    """Convert a pixel-scale budget (e.g. 8) into [0, 1]-scale (8/255)."""
    return float(eps) / 255.0


def input_gradient(model: Module, x: np.ndarray, y: np.ndarray,
                   loss: str = "ce") -> np.ndarray:
    """Gradient of the attack loss w.r.t. the input batch.

    ``loss`` selects the objective: ``"ce"`` is cross-entropy (used by FGSM /
    PGD), ``"cw"`` the Carlini-Wagner margin loss (used by the CW-ℓ∞ attack),
    and ``"dlr"`` the difference-of-logits-ratio loss used by APGD-DLR.

    The model's parameters are frozen for the duration of the pass: an attack
    only consumes the input gradient, and every caller discards (or zeroes)
    parameter gradients before the next weight update, so skipping the
    weight-gradient computation changes no observable result.
    """
    frozen = [p for p in model.parameters() if p.requires_grad]
    for p in frozen:
        p.requires_grad = False
    try:
        x_t = Tensor(x, requires_grad=True)
        logits = model(x_t)
        if loss == "ce":
            objective = F.cross_entropy(logits, y)
        elif loss == "cw":
            objective = _cw_margin_loss(logits, y)
        elif loss == "dlr":
            objective = _dlr_loss(logits, y)
        else:
            raise ValueError(f"unknown attack loss {loss!r}")
        objective.backward()
    finally:
        for p in frozen:
            p.requires_grad = True
        # The forward/backward graph dies with this frame; let the workspace
        # arena recycle its scratch for the next attack step.
        nn_workspace.end_step()
    return x_t.grad


def _cw_margin_loss(logits: Tensor, y: np.ndarray) -> Tensor:
    """Carlini-Wagner margin: maximise (max_{j != y} z_j) - z_y."""
    n, num_classes = logits.shape
    y = np.asarray(y, dtype=np.int64)
    onehot = np.zeros((n, num_classes), dtype=np.float32)
    onehot[np.arange(n), y] = 1.0
    correct = (logits * Tensor(onehot)).sum(axis=1)
    # Mask the true class with a large negative constant before taking the max.
    other = (logits + Tensor(onehot * -1e4)).max(axis=1)
    return (other - correct).mean()


def _dlr_loss(logits: Tensor, y: np.ndarray) -> Tensor:
    """Difference-of-logits-ratio loss (Croce & Hein, AutoAttack)."""
    n, num_classes = logits.shape
    y = np.asarray(y, dtype=np.int64)
    z = logits.data
    order = np.argsort(z, axis=1)
    top1 = order[:, -1]
    top2 = order[:, -2]
    top3 = order[:, -3] if num_classes >= 3 else order[:, 0]
    # z_pi1 - z_pi3 as the (detached) normaliser; keeps the loss scale-invariant.
    denom = z[np.arange(n), top1] - z[np.arange(n), top3] + 1e-12

    onehot_y = np.zeros((n, num_classes), dtype=np.float32)
    onehot_y[np.arange(n), y] = 1.0
    z_y = (logits * Tensor(onehot_y)).sum(axis=1)

    alt = np.where(top1 == y, top2, top1)
    onehot_alt = np.zeros((n, num_classes), dtype=np.float32)
    onehot_alt[np.arange(n), alt] = 1.0
    z_alt = (logits * Tensor(onehot_alt)).sum(axis=1)

    return ((z_alt - z_y) * Tensor(1.0 / denom.astype(np.float32))).mean()


def margin_loss_grad(model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Convenience wrapper: gradient of the CW margin loss w.r.t. the input."""
    return input_gradient(model, x, y, loss="cw")


def predict_labels(model: Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Model predictions without building an autograd graph."""
    from ..nn.tensor import no_grad

    outputs = []
    with no_grad():
        for start in range(0, len(x), batch_size):
            logits = model(Tensor(x[start:start + batch_size]))
            outputs.append(logits.data.argmax(axis=1))
            del logits
            nn_workspace.end_step()
    return np.concatenate(outputs) if outputs else np.empty((0,), dtype=np.int64)


@dataclass
class AttackResult:
    """Adversarial examples plus bookkeeping returned by ``Attack.run``."""

    x_adv: np.ndarray
    success_mask: np.ndarray
    queries: int = 0

    @property
    def success_rate(self) -> float:
        if self.success_mask.size == 0:
            return 0.0
        return float(self.success_mask.mean())


class Attack:
    """Base class: perturb ``x`` within an ℓ∞ ball of radius ``epsilon``."""

    name = "attack"

    def __init__(self, epsilon: float, clip_min: float = 0.0,
                 clip_max: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = float(epsilon)
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------
    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        raise NotImplementedError

    def run(self, model: Module, x: np.ndarray, y: np.ndarray) -> AttackResult:
        """Perturb and report which examples changed the model's decision."""
        was_training = model.training
        model.eval()
        try:
            x_adv = self.perturb(model, x, y)
        finally:
            model.train(was_training)
        x_adv = self.project(x, x_adv)
        preds = predict_labels(model, x_adv)
        return AttackResult(x_adv=x_adv, success_mask=preds != np.asarray(y))

    # ------------------------------------------------------------------
    def project(self, x: np.ndarray, x_adv: np.ndarray) -> np.ndarray:
        """Project ``x_adv`` back into the ℓ∞ ball around ``x`` and the pixel box."""
        x_adv = np.clip(x_adv, x - self.epsilon, x + self.epsilon)
        return np.clip(x_adv, self.clip_min, self.clip_max).astype(np.float32)

    def random_start(self, x: np.ndarray) -> np.ndarray:
        """Uniform random point inside the ℓ∞ ball (used by PGD / FGSM-RS)."""
        noise = self.rng.uniform(-self.epsilon, self.epsilon, size=x.shape)
        return self.project(x, x + noise.astype(np.float32))

    # ------------------------------------------------------------------
    # Shared multi-restart sign-descent machinery.  Iterative attacks (PGD,
    # E-PGD) define ``steps`` / ``alpha`` / ``restarts`` / ``random_init``
    # and override :meth:`_gradient`; everything below is common.
    # ------------------------------------------------------------------
    def _gradient(self, model: Module, x: np.ndarray,
                  y: np.ndarray) -> np.ndarray:
        """Gradient of the attack objective w.r.t. ``x`` (subclass hook)."""
        raise NotImplementedError

    def _bounds(self, x: np.ndarray):
        # clip-to-ball then clip-to-box equals one clamp to the interval
        # intersection (x itself lies in both intervals).
        lo = np.maximum(x - self.epsilon, self.clip_min).astype(np.float32)
        hi = np.minimum(x + self.epsilon, self.clip_max).astype(np.float32)
        return lo, hi

    def _descend(self, model: Module, x_adv: np.ndarray, y: np.ndarray,
                 lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Run ``steps`` in-place sign-gradient ascent steps on ``x_adv``.

        ``lo``/``hi`` may cover a single restart of a restart-stacked
        ``x_adv``; the clip then broadcasts over the restart dimension
        instead of requiring tiled bound arrays.
        """
        if lo.shape != x_adv.shape:
            clip_target = x_adv.reshape(-1, *lo.shape)
        else:
            clip_target = x_adv
        for _ in range(self.steps):
            grad = self._gradient(model, x_adv, y)
            np.sign(grad, out=grad)
            grad *= self.alpha
            x_adv += grad
            np.clip(clip_target, lo, hi, out=clip_target)
        return x_adv

    def _restart_start(self, x: np.ndarray) -> np.ndarray:
        return self.random_start(x) if self.random_init else x.copy()

    def _restart_perturb(self, model: Module, x: np.ndarray,
                         y: np.ndarray) -> np.ndarray:
        """Multi-restart perturbation keeping each example's first fooling
        restart (or restart 0), batched over restarts by default."""
        y = np.asarray(y)
        if self.restarts == 1:
            lo, hi = self._bounds(x)
            return self._descend(model, self._restart_start(x), y, lo, hi)
        if batched_restarts_enabled():
            return self._perturb_batched(model, x, y)
        return self._perturb_sequential(model, x, y)

    def _perturb_batched(self, model: Module, x: np.ndarray,
                         y: np.ndarray) -> np.ndarray:
        n, restarts = len(x), self.restarts
        # Draw the restart noises in the same order as the sequential loop so
        # both paths consume identical random streams.
        starts = [self._restart_start(x) for _ in range(restarts)]
        big_x = np.concatenate(starts, axis=0)
        big_y = np.tile(y, restarts)
        lo, hi = self._bounds(x)
        self._descend(model, big_x, big_y, lo, hi)

        fooled = (predict_labels(model, big_x) != big_y).reshape(restarts, n)
        candidates = big_x.reshape(restarts, *x.shape)
        # Per example: the first fooling restart, or restart 0 if none fools
        # (the sequential loop keeps run 0 and only replaces it on success).
        pick = np.where(fooled.any(axis=0), fooled.argmax(axis=0), 0)
        return candidates[pick, np.arange(n)]

    def _perturb_sequential(self, model: Module, x: np.ndarray,
                            y: np.ndarray) -> np.ndarray:
        lo, hi = self._bounds(x)
        best = self._descend(model, self._restart_start(x), y, lo, hi)
        fooled = predict_labels(model, best) != y
        for _ in range(self.restarts - 1):
            if fooled.all():
                break
            candidate = self._descend(model, self._restart_start(x), y, lo, hi)
            cand_fooled = predict_labels(model, candidate) != y
            take = cand_fooled & ~fooled
            best[take] = candidate[take]
            fooled |= cand_fooled
        return best
