"""Bandits attack: gradient-free black-box attack with a gradient prior.

Ilyas, Engstrom & Madry ("Prior convictions", 2018) estimate the input
gradient with antithetic finite differences of the loss and maintain a
low-pass "prior" over the gradient that is updated with an exponentiated
gradient step.  Only forward passes (queries) of the model are used, so the
attack is immune to gradient masking — the paper uses it (Tab. 5) to show RPS
does not rely on obfuscated gradients.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from .base import Attack

__all__ = ["BanditsAttack"]


def _ce_loss_values(model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-example cross-entropy values, computed without autograd."""
    with no_grad():
        logits = model(Tensor(x)).data
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return -log_probs[np.arange(len(y)), y]


class BanditsAttack(Attack):
    """ℓ∞ bandits attack with a time-correlated gradient prior."""

    name = "Bandits"

    def __init__(self, epsilon: float, steps: int = 100,
                 fd_eta: float = 0.01, prior_lr: float = 0.1,
                 prior_exploration: float = 0.01,
                 image_lr: float = 0.01, **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.steps = steps
        self.fd_eta = fd_eta
        self.prior_lr = prior_lr
        self.prior_exploration = prior_exploration
        self.image_lr = image_lr
        self.queries_used = 0

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        x_adv = x.copy().astype(np.float32)
        prior = np.zeros_like(x_adv)
        self.queries_used = 0

        for _ in range(self.steps):
            # Antithetic exploration directions around the prior.
            exploration = self.rng.normal(size=x_adv.shape).astype(np.float32)
            exploration /= np.sqrt(
                (exploration ** 2).sum(axis=(1, 2, 3), keepdims=True) + 1e-12)
            q1 = prior + self.prior_exploration * exploration
            q2 = prior - self.prior_exploration * exploration

            l1 = _ce_loss_values(model, np.clip(x_adv + self.fd_eta * q1,
                                                self.clip_min, self.clip_max), y)
            l2 = _ce_loss_values(model, np.clip(x_adv + self.fd_eta * q2,
                                                self.clip_min, self.clip_max), y)
            self.queries_used += 2 * len(x_adv)

            # Finite-difference estimate of the directional derivative along
            # the exploration direction; update the prior towards it.
            delta_l = (l1 - l2) / (self.fd_eta * self.prior_exploration + 1e-12)
            gradient_estimate = delta_l.reshape(-1, 1, 1, 1) * exploration
            prior = prior + self.prior_lr * gradient_estimate

            # Take a signed step along the prior (the loss is being maximised).
            x_adv = x_adv + self.image_lr * np.sign(prior)
            x_adv = self.project(x, x_adv)

        return x_adv
