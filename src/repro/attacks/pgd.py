"""Projected Gradient Descent attack (Madry et al.)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .base import Attack, input_gradient, predict_labels

__all__ = ["PGD"]


class PGD(Attack):
    """Iterative ℓ∞ attack with random restarts.

    ``steps`` iterations of ``alpha``-sized sign steps, projected back into
    the ℓ∞ ball around ``x`` after every step.  With ``restarts > 1`` the
    attack keeps, per example, the restart that fools the model (or the last
    one if none succeed), matching the strongest-restart evaluation protocol
    used by the paper's PGD-20 / PGD-100 numbers.
    """

    name = "PGD"

    def __init__(self, epsilon: float, steps: int = 20,
                 alpha: Optional[float] = None, restarts: int = 1,
                 random_init: bool = True, loss: str = "ce", **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        self.alpha = alpha if alpha is not None else 2.5 * epsilon / steps
        self.restarts = max(1, restarts)
        self.random_init = random_init
        self.loss = loss
        self.name = f"PGD-{steps}"

    # ------------------------------------------------------------------
    def _single_run(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x_adv = self.random_start(x) if self.random_init else x.copy()
        for _ in range(self.steps):
            grad = input_gradient(model, x_adv, y, loss=self.loss)
            x_adv = x_adv + self.alpha * np.sign(grad)
            x_adv = self.project(x, x_adv)
        return x_adv

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        best = self._single_run(model, x, y)
        if self.restarts == 1:
            return best
        fooled = predict_labels(model, best) != y
        for _ in range(self.restarts - 1):
            if fooled.all():
                break
            candidate = self._single_run(model, x, y)
            cand_fooled = predict_labels(model, candidate) != y
            take = cand_fooled & ~fooled
            best[take] = candidate[take]
            fooled |= cand_fooled
        return best
