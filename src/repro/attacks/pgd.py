"""Projected Gradient Descent attack (Madry et al.)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .base import Attack, batched_restarts_enabled, input_gradient

__all__ = ["PGD", "batched_restarts_enabled"]


class PGD(Attack):
    """Iterative ℓ∞ attack with random restarts.

    ``steps`` iterations of ``alpha``-sized sign steps, projected back into
    the ℓ∞ ball around ``x`` after every step.  With ``restarts > 1`` the
    attack keeps, per example, the restart that fools the model (or the last
    one if none succeed), matching the strongest-restart evaluation protocol
    used by the paper's PGD-20 / PGD-100 numbers.  All restarts are stacked
    into the batch dimension by default, so a multi-restart attack costs one
    forward/backward per step regardless of the restart count.  Model
    evaluation is per-example independent in eval mode, so for
    full-precision models the stacked run computes the same iterates as the
    sequential loop; for quantised models the activation-quantisation range
    is batch-global, so stacking shifts the quantisation grid slightly and
    the two modes are equivalent in strength rather than bitwise
    (``tests/test_nn_parity.py::TestBatchedRestarts``).
    """

    name = "PGD"

    def __init__(self, epsilon: float, steps: int = 20,
                 alpha: Optional[float] = None, restarts: int = 1,
                 random_init: bool = True, loss: str = "ce", **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        self.alpha = alpha if alpha is not None else 2.5 * epsilon / steps
        self.restarts = max(1, restarts)
        self.random_init = random_init
        self.loss = loss
        self.name = f"PGD-{steps}"

    # ------------------------------------------------------------------
    def _gradient(self, model: Module, x: np.ndarray,
                  y: np.ndarray) -> np.ndarray:
        return input_gradient(model, x, y, loss=self.loss)

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._restart_perturb(model, x, y)
