"""E-PGD: the paper's customised adaptive attack against RPS (Sec. 4.2.3).

E-PGD assumes the adversary knows the full candidate precision set and
generates perturbations against the *ensemble* — the averaged output of the
model quantised to every candidate precision — so the attack is "aware of all
precisions".  Tab. 6 shows RPS retains a large robustness margin even under
this adaptive attack; the harness in ``repro.experiments`` reproduces that
comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, set_model_precision
from .base import Attack

__all__ = ["EnsemblePGD"]


class EnsemblePGD(Attack):
    """PGD on the average of the per-precision softmax outputs.

    Like :class:`~repro.attacks.pgd.PGD`, multiple restarts are stacked into
    the batch dimension by default so every attack step stays one ensemble
    forward/backward (one pass per candidate precision) regardless of the
    restart count.
    """

    name = "E-PGD"

    def __init__(self, epsilon: float, precision_set: PrecisionSet,
                 steps: int = 20, alpha: Optional[float] = None,
                 restarts: int = 1, random_init: bool = True, **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.precision_set = precision_set
        self.steps = steps
        self.alpha = alpha if alpha is not None else 2.5 * epsilon / steps
        self.restarts = max(1, restarts)
        self.random_init = random_init
        self.name = f"E-PGD-{steps}"

    def _ensemble_gradient(self, model: Module, x: np.ndarray,
                           y: np.ndarray) -> np.ndarray:
        """Gradient of CE(mean over precisions of softmax(logits), y) w.r.t. x."""
        original = None
        try:
            from ..quantization import get_model_precision
            original = get_model_precision(model)
        except RuntimeError:
            original = None

        x_t = Tensor(x, requires_grad=True)
        probs = []
        for precision in self.precision_set:
            set_model_precision(model, precision)
            logits = model(x_t)
            probs.append(F.softmax(logits, axis=1))
        mean_probs = probs[0]
        for p in probs[1:]:
            mean_probs = mean_probs + p
        mean_probs = mean_probs * (1.0 / len(probs))
        # Cross-entropy on the averaged probabilities.
        log_mean = (mean_probs + 1e-12).log()
        n = len(y)
        onehot = np.zeros(log_mean.shape, dtype=np.float32)
        onehot[np.arange(n), np.asarray(y, dtype=np.int64)] = 1.0
        loss = -(log_mean * Tensor(onehot)).sum() * (1.0 / n)
        loss.backward()

        if original is not None:
            set_model_precision(model, original)
        grad = x_t.grad
        # The multi-precision graph dies with this frame; recycle its scratch.
        del x_t, probs, mean_probs, log_mean, loss, logits
        nn_workspace.end_step()
        return grad

    # ------------------------------------------------------------------
    def _gradient(self, model: Module, x: np.ndarray,
                  y: np.ndarray) -> np.ndarray:
        return self._ensemble_gradient(model, x, y)

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._restart_perturb(model, x, y)
