"""Carlini-Wagner ℓ∞ attack (margin-loss PGD formulation).

The paper evaluates "CW-Inf", i.e. the CW margin objective optimised under an
ℓ∞ constraint.  Following common practice (and the original CW-ℓ∞ insight
that the box constraint can be enforced by projection), we maximise the
margin ``max_{j != y} z_j - z_y`` with projected sign-gradient steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .base import Attack, input_gradient

__all__ = ["CWInf"]


class CWInf(Attack):
    """ℓ∞-constrained Carlini-Wagner attack."""

    name = "CW-Inf"

    def __init__(self, epsilon: float, steps: int = 30,
                 alpha: Optional[float] = None, random_init: bool = True,
                 **kwargs) -> None:
        super().__init__(epsilon, **kwargs)
        self.steps = steps
        self.alpha = alpha if alpha is not None else 2.5 * epsilon / steps
        self.random_init = random_init

    def perturb(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x_adv = self.random_start(x) if self.random_init else x.copy()
        for _ in range(self.steps):
            grad = input_gradient(model, x_adv, y, loss="cw")
            x_adv = x_adv + self.alpha * np.sign(grad)
            x_adv = self.project(x, x_adv)
        return x_adv
