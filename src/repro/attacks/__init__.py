"""Adversarial attacks used in the paper's evaluation (Sec. 4.1, 4.2)."""

from .autoattack import APGD, AutoAttack
from .bandits import BanditsAttack
from .base import Attack, AttackResult, eps_from_255, input_gradient, predict_labels
from .cw import CWInf
from .epgd import EnsemblePGD
from .fgsm import FGSM, FGSMRS
from .pgd import PGD

__all__ = [
    "Attack",
    "AttackResult",
    "eps_from_255",
    "input_gradient",
    "predict_labels",
    "FGSM",
    "FGSMRS",
    "PGD",
    "CWInf",
    "APGD",
    "AutoAttack",
    "BanditsAttack",
    "EnsemblePGD",
]
