"""Synthetic image-classification datasets.

The paper evaluates on CIFAR-10, CIFAR-100, SVHN and ImageNet.  None of those
are available offline, so this module provides procedurally generated
substitutes (see DESIGN.md, substitution table): every class owns a smooth
low-frequency "prototype" image; a sample is the prototype plus a smooth
instance deformation plus pixel noise, clipped to [0, 1].

The generator is tuned so that
* a small convolutional network reaches high natural accuracy within a few
  hundred gradient steps (so robustness experiments finish in seconds), and
* the class margin is a small multiple of the standard attack budget
  (ε = 8/255), so ℓ∞ attacks genuinely reduce accuracy and adversarial
  training / RPS visibly recover it — preserving the qualitative shape of the
  paper's robustness tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import ndimage

__all__ = ["DatasetConfig", "SyntheticImageDataset", "make_dataset",
           "DATASET_PRESETS"]


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of a synthetic dataset."""

    name: str
    num_classes: int
    image_shape: Tuple[int, int, int]      # (C, H, W)
    train_size: int
    test_size: int
    prototype_contrast: float = 0.22       # peak-to-peak scale of class prototypes
    instance_noise: float = 0.08           # smooth per-sample deformation
    pixel_noise: float = 0.02              # iid pixel noise
    smoothness: float = 2.0                # Gaussian blur sigma for prototypes
    seed: int = 0


#: Presets mirroring the paper's four datasets at laptop scale.  The contrast
#: and noise levels are calibrated (see DESIGN.md) so that, at ε = 8/255,
#: naturally trained models lose almost all accuracy under PGD while
#: adversarially trained models retain roughly half of it — the regime in
#: which the paper's robustness comparisons are made.
DATASET_PRESETS: Dict[str, DatasetConfig] = {
    "cifar10": DatasetConfig(name="cifar10", num_classes=10,
                             image_shape=(3, 16, 16), train_size=2000,
                             test_size=512, prototype_contrast=0.10,
                             instance_noise=0.09),
    "cifar100": DatasetConfig(name="cifar100", num_classes=20,
                              image_shape=(3, 16, 16), train_size=2500,
                              test_size=512, prototype_contrast=0.09,
                              instance_noise=0.09),
    "svhn": DatasetConfig(name="svhn", num_classes=10,
                          image_shape=(3, 16, 16), train_size=2000,
                          test_size=512, instance_noise=0.08,
                          prototype_contrast=0.12),
    "imagenet": DatasetConfig(name="imagenet", num_classes=20,
                              image_shape=(3, 32, 32), train_size=2500,
                              test_size=384, prototype_contrast=0.10,
                              instance_noise=0.09, smoothness=3.0),
}


class SyntheticImageDataset:
    """A fixed train/test split of synthetic images with integer labels."""

    def __init__(self, config: DatasetConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._prototypes = self._make_prototypes(rng)
        self.x_train, self.y_train = self._sample(rng, config.train_size)
        self.x_test, self.y_test = self._sample(rng, config.test_size)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.config.image_shape

    def prototypes(self) -> np.ndarray:
        """The underlying class prototypes, shape (num_classes, C, H, W)."""
        return self._prototypes.copy()

    # ------------------------------------------------------------------
    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        c, h, w = cfg.image_shape
        protos = rng.normal(size=(cfg.num_classes, c, h, w))
        for i in range(cfg.num_classes):
            for ch in range(c):
                protos[i, ch] = ndimage.gaussian_filter(protos[i, ch],
                                                        sigma=cfg.smoothness)
        # Normalise each prototype to zero mean / unit std, then centre in the
        # pixel box with the configured contrast.
        protos -= protos.mean(axis=(1, 2, 3), keepdims=True)
        protos /= protos.std(axis=(1, 2, 3), keepdims=True) + 1e-9
        return (0.5 + cfg.prototype_contrast * protos).astype(np.float32)

    def _sample(self, rng: np.random.Generator,
                count: int) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        c, h, w = cfg.image_shape
        labels = rng.integers(0, cfg.num_classes, size=count)
        images = np.empty((count, c, h, w), dtype=np.float32)
        for i, label in enumerate(labels):
            deform = rng.normal(size=(c, h, w))
            for ch in range(c):
                deform[ch] = ndimage.gaussian_filter(deform[ch], sigma=1.0)
            sample = (self._prototypes[label]
                      + cfg.instance_noise * deform
                      + cfg.pixel_noise * rng.normal(size=(c, h, w)))
            images[i] = np.clip(sample, 0.0, 1.0)
        return images, labels.astype(np.int64)

    # ------------------------------------------------------------------
    def subset(self, train: int, test: int) -> "SyntheticImageDataset":
        """Return a shallow copy restricted to the first ``train``/``test`` samples."""
        clone = object.__new__(SyntheticImageDataset)
        clone.config = self.config
        clone._prototypes = self._prototypes
        clone.x_train = self.x_train[:train]
        clone.y_train = self.y_train[:train]
        clone.x_test = self.x_test[:test]
        clone.y_test = self.y_test[:test]
        return clone


def make_dataset(name: str, **overrides) -> SyntheticImageDataset:
    """Build a dataset from a preset name, optionally overriding config fields.

    >>> ds = make_dataset("cifar10", train_size=256, test_size=64)
    """
    if name not in DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; presets: {sorted(DATASET_PRESETS)}")
    base = DATASET_PRESETS[name]
    if overrides:
        base = DatasetConfig(**{**base.__dict__, **overrides})
    return SyntheticImageDataset(base)
