"""Synthetic dataset substrate replacing CIFAR / SVHN / ImageNet (see DESIGN.md)."""

from .datasets import DATASET_PRESETS, DatasetConfig, SyntheticImageDataset, make_dataset
from .loaders import DataLoader

__all__ = [
    "DatasetConfig",
    "SyntheticImageDataset",
    "make_dataset",
    "DATASET_PRESETS",
    "DataLoader",
]
