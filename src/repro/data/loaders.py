"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .. import faults

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over (x, y) arrays in shuffled mini-batches.

    Unlike a framework data loader there is no worker pool — datasets here are
    small in-memory numpy arrays — but the interface (len = number of batches,
    iteration yields ``(x_batch, y_batch)``) matches what the training loops
    expect.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, batch_size: int,
                 shuffle: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 drop_last: bool = False) -> None:
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        if self.drop_last:
            return len(self.x) // self.batch_size
        return int(np.ceil(len(self.x) / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.x))
        if self.shuffle:
            self.rng.shuffle(indices)
        limit = len(self) * self.batch_size if self.drop_last else len(self.x)
        for start in range(0, limit, self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            # Chaos seam: a crashed/hung data pipeline surfaces here, at the
            # same per-batch boundary the durable fit loop declares.
            faults.fault_point("train.data.next")
            yield self.x[batch], self.y[batch]
