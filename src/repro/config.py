"""Central registry of every ``REPRO_*`` environment knob.

Every runtime-tunable switch of the library is read through one of the typed
accessors below instead of scattered ``os.environ`` lookups.  The accessors
re-read the environment on every call (cheap — a dict lookup) so tests can
flip a knob with ``monkeypatch.setenv`` and the very next call observes it;
the two exceptions are documented on their accessors.

Knob reference
--------------

NN compute core (:mod:`repro.nn`):

``REPRO_NN_BACKEND``            ``fast`` (default), ``native`` or
                                ``reference``.  Selects the channels-last
                                GEMM core, the compiled direct-convolution
                                backend (degrades to ``fast`` with one
                                warning when no C compiler is present), or
                                the original im2col/NCHW parity oracle.
                                Read once at import of
                                :mod:`repro.nn.functional`; switch at
                                runtime with ``F.use_backend()``.
``REPRO_NN_THREADS``            Worker threads of the native direct-conv
                                kernel (default: the machine's CPU count).
                                ``1`` forces single-threaded kernels; other
                                backends ignore it.
``REPRO_NN_NATIVE_CACHE_DIR``   Where compiled native kernels are cached
                                (default ``~/.cache/repro/native``).
``REPRO_NN_NATIVE_SANITIZE``    Comma-separated sanitizers to compile the
                                native kernels with (``address``,
                                ``undefined``; default none).  Sanitized
                                builds are cache-keyed separately from
                                production builds; an ``address`` build
                                additionally needs the ASan runtime
                                preloaded (``LD_PRELOAD=libasan.so``) or
                                loading degrades to ``fast`` with one
                                warning instead of aborting the process.
``CC``                          Standard toolchain variable, honoured (and
                                trusted as-is) as the native-kernel
                                compiler override; empty or unset falls
                                back to ``cc``/``gcc``/``clang`` on
                                ``PATH``.  Read through
                                :func:`cc_override` — the one non-
                                ``REPRO_*`` knob registered here so the
                                ``config-discipline`` lint can keep every
                                environment read in this module.
``REPRO_NN_WORKSPACE_MB``       Scratch-arena cap in MiB (default 256;
                                ``0`` disables pooling).  Read when a
                                :class:`repro.nn.workspace.Workspace` is
                                constructed.
``REPRO_NN_QUANT_CACHE``        ``1`` (default) caches quantised weights and
                                their GEMM repacks per (precision, weight
                                version); ``0`` re-quantises every forward.
``REPRO_NN_BATCHED_RESTARTS``   ``1`` (default) folds multi-restart attacks
                                into the batch dimension; ``0`` restores the
                                sequential per-restart loop.

Inference / serving (:mod:`repro.inference`, :mod:`repro.serving`):

``REPRO_INFER_FOLD_BN``         ``1`` (default) lets compiled inference plans
                                fold eval-mode batch norm into the preceding
                                conv weights; ``0`` keeps BN as a separate
                                (precomputed) affine, which is bit-identical
                                to the live-module path.
``REPRO_SERVING_MAX_BATCH``     Micro-batching window of the RPS server
                                (default 64 requests per coalesced batch).
``REPRO_SERVING_MAX_DELAY_MS``  How long a queued request may wait for its
                                batch to fill (default 2.0 ms; ``0`` switches
                                the fleet to deterministic count-only batch
                                cuts).
``REPRO_SERVING_WORKERS``       Worker *processes* of the serving fleet
                                (default 1 = the in-process dispatcher;
                                ``>1`` shards requests by drawn precision
                                over ``repro.serving.fleet``).
``REPRO_SERVING_RING_MB``       Per-direction shared-memory ring capacity in
                                MiB for fleet tensor transport (default 8).
``REPRO_SERVING_TRANSPORT``     ``shm`` (default) moves tensors through
                                shared-memory rings; ``inline`` forces the
                                pickled control-pipe path (the fallback that
                                full/oversized rings degrade to anyway).
``REPRO_SERVING_QUEUE_LIMIT``   Maximum in-flight requests per server before
                                :func:`submit` sheds load with
                                ``RejectedError`` (default 0 = unbounded).
``REPRO_SERVING_DEADLINE_MS``   Default per-request deadline in milliseconds;
                                expired requests resolve to
                                ``DeadlineExceeded`` instead of executing
                                (default 0 = no deadline).
``REPRO_SERVING_HEARTBEAT_S``   Supervisor hang-monitor poll interval in
                                seconds (default 1.0).
``REPRO_SERVING_HANG_TIMEOUT_S``  How long a fleet worker may hold pending
                                requests without any message before the
                                supervisor declares it hung and escalates
                                through the respawn path (default 30).
``REPRO_SERVING_DRAIN_TIMEOUT_S``  Fleet shutdown drain budget in seconds
                                (default 120).
``REPRO_SERVING_JOIN_TIMEOUT_S``  How long the supervisor waits for an
                                exited worker process to join before
                                killing it (default 10).

Fault injection (:mod:`repro.faults`):

``REPRO_FAULTS``                Fault-injection plan: ``;``-separated
                                ``site=kind[:p=..][:ms=..][:s=..][:n=..]``
                                entries (kinds ``latency``/``error``/
                                ``corrupt``/``hang``; sites support
                                ``fnmatch`` globs).  Empty (default) =
                                no faults.
``REPRO_FAULTS_SEED``           Seed of the deterministic per-site fault
                                streams (default 0).

Durable training (:mod:`repro.checkpoint`):

``REPRO_CKPT_DIR``              Checkpoint directory for training runs.
                                Empty (default) = no environment-driven
                                checkpointing; ``Trainer.fit`` also accepts
                                an explicit ``checkpoint=`` argument, which
                                wins.
``REPRO_CKPT_EVERY_STEPS``      Mid-epoch checkpoint interval in optimiser
                                steps (default 0 = checkpoint at epoch
                                boundaries only).  Clamped to >= 0.
``REPRO_CKPT_KEEP``             Keep-last-K ring size of the checkpoint
                                directory (default 3).  Clamped to >= 1 —
                                pruning to zero would make resume
                                impossible.
``REPRO_TRAIN_SENTINEL_GRAD_MULT``  Divergence sentinel: a batch whose
                                global gradient norm exceeds this multiple
                                of the running median trips a rollback
                                (default 25).  Clamped to >= 1 so the
                                sentinel can never fire on a norm below
                                the median.
``REPRO_TRAIN_ROLLBACK_BUDGET``   How many sentinel rollbacks a single
                                ``fit`` may spend before aborting with
                                ``DivergenceError`` (default 3; 0 = abort
                                on the first trip).  Clamped to >= 0.

Engine-store client (:mod:`repro.accelerator.store_service`):

``REPRO_STORE_TIMEOUT_S``       Socket timeout per store-service frame
                                exchange (default 30).
``REPRO_STORE_RETRIES``         Transient-failure retries per store call on
                                top of the first attempt (default 2).
``REPRO_STORE_BACKOFF_MS``      Base retry backoff in milliseconds; attempt
                                ``k`` sleeps ``base * 2**k`` scaled by
                                seeded jitter (default 50).
``REPRO_STORE_BACKOFF_CAP_MS``  Upper bound of one backoff sleep (default
                                2000).
``REPRO_STORE_BREAKER_FAILURES``  Consecutive failed calls that open the
                                store circuit breaker (default 3; 0
                                disables the breaker).
``REPRO_STORE_BREAKER_RESET_S``   How long an open breaker fast-fails
                                before allowing a half-open probe
                                (default 30).

Accelerator evaluation engine (:mod:`repro.accelerator`):

``REPRO_ENGINE_WORKERS``        Default process count for sharded
                                ``evaluate_grid`` (0/1 = synchronous).
``REPRO_ENGINE_PERSIST``        Truthy value backs every engine memo with the
                                on-disk store.
``REPRO_ENGINE_CACHE_DIR``      Store root (default ``~/.cache/repro/engine``).
``REPRO_ENGINE_STORE_SOCKET``   When set to a Unix-socket path, engine
                                persistence goes through the shared
                                :mod:`repro.accelerator.store_service`
                                instead of this process's own files, so a
                                fleet of workers (or CI legs) warm-start
                                from one cache.

Benchmarks:

``REPRO_BENCH_JSON``            Override path for the wall-time trajectory
                                files (``BENCH_nn.json`` / ``BENCH_serving``);
                                ``0`` disables recording.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

__all__ = [
    "env_flag",
    "env_int",
    "env_float",
    "env_str",
    "env_choice",
    "nn_backend",
    "nn_threads",
    "nn_native_cache_dir",
    "nn_native_sanitize",
    "cc_override",
    "ld_preload",
    "nn_workspace_mb",
    "nn_quant_cache_enabled",
    "nn_batched_restarts",
    "infer_fold_bn",
    "serving_max_batch",
    "serving_max_delay_ms",
    "serving_workers",
    "serving_ring_mb",
    "serving_transport",
    "serving_queue_limit",
    "serving_deadline_ms",
    "serving_heartbeat_s",
    "serving_hang_timeout_s",
    "serving_drain_timeout_s",
    "serving_join_timeout_s",
    "faults_spec",
    "faults_seed",
    "ckpt_dir",
    "ckpt_every_steps",
    "ckpt_keep",
    "train_sentinel_grad_mult",
    "train_rollback_budget",
    "store_timeout_s",
    "store_retries",
    "store_backoff_ms",
    "store_backoff_cap_ms",
    "store_breaker_failures",
    "store_breaker_reset_s",
    "engine_workers",
    "engine_persist",
    "engine_cache_dir",
    "engine_store_socket",
]

# ---------------------------------------------------------------------------
# Generic typed readers
# ---------------------------------------------------------------------------

def env_flag(name: str, default: bool = False) -> bool:
    """Boolean knob: unset -> ``default``; set -> conservative truthy test.

    Only ``"1"``, ``"true"``, ``"yes"`` and ``"on"`` (case-insensitive)
    enable the flag — the historical engine-store contract, preserved so a
    typo or stray value never silently switches a feature on.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


def env_int(name: str, default: int) -> int:
    """Integer knob; a malformed value warns (naming the variable) and falls
    back instead of crashing every caller downstream."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(f"ignoring non-integer {name}={raw!r}; "
                      f"falling back to {default}", stacklevel=2)
        return default


def env_float(name: str, default: float) -> float:
    """Float knob with the same warn-and-fall-back policy as :func:`env_int`."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(f"ignoring non-numeric {name}={raw!r}; "
                      f"falling back to {default}", stacklevel=2)
        return default


def env_str(name: str, default: str) -> str:
    """String knob: unset or whitespace-only -> ``default``; set -> stripped."""
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def env_choice(name: str, default: str, choices: tuple) -> str:
    """Enumerated knob; a value outside ``choices`` warns (naming the variable
    and the valid values) and falls back to ``default``."""
    raw = env_str(name, default)
    if raw not in choices:
        warnings.warn(f"ignoring invalid {name}={raw!r}; choose from "
                      f"{choices}; falling back to {default!r}", stacklevel=2)
        return default
    return raw


# ---------------------------------------------------------------------------
# NN compute core
# ---------------------------------------------------------------------------

#: Valid values of ``REPRO_NN_BACKEND`` (mirrored by ``F.set_backend``).
NN_BACKENDS = ("fast", "native", "reference")


def nn_backend() -> str:
    """Initial compute backend (``REPRO_NN_BACKEND``): ``fast`` | ``native`` |
    ``reference``.

    Consulted once when :mod:`repro.nn.functional` is imported; after that the
    active backend is process state switched via ``set_backend`` /
    ``use_backend``.  An invalid value warns and falls back to ``fast``.
    """
    return env_choice("REPRO_NN_BACKEND", "fast", NN_BACKENDS)


def nn_threads() -> int:
    """Worker-thread count of the native direct-conv kernels
    (``REPRO_NN_THREADS``; default: CPU count).  Clamped to >= 1; the fast
    and reference backends ignore it."""
    default = os.cpu_count() or 1
    return max(1, env_int("REPRO_NN_THREADS", default))


def nn_native_cache_dir() -> Path:
    """Compiled-kernel cache root: ``$REPRO_NN_NATIVE_CACHE_DIR`` or
    ``~/.cache/repro/native``."""
    override = os.environ.get("REPRO_NN_NATIVE_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "native"


#: Sanitizers the native build knows how to enable.
NN_SANITIZERS = ("address", "undefined")


def nn_native_sanitize() -> tuple:
    """Sanitizers to compile the native kernels with
    (``REPRO_NN_NATIVE_SANITIZE``): a comma-separated subset of
    ``address``/``undefined``; default empty = a production build.

    Unknown names warn (naming the variable and the valid values) and are
    dropped rather than silently ignored or fatal, so a typo degrades to a
    *less* instrumented build instead of breaking the backend.  The result
    is ordered canonically (``NN_SANITIZERS`` order) so equivalent spellings
    share one compile-cache slot.
    """
    raw = env_str("REPRO_NN_NATIVE_SANITIZE", "")
    if not raw:
        return ()
    requested = {item.strip().lower() for item in raw.split(",") if item.strip()}
    unknown = requested - set(NN_SANITIZERS)
    if unknown:
        warnings.warn(
            f"ignoring unknown REPRO_NN_NATIVE_SANITIZE entries "
            f"{sorted(unknown)}; choose from {NN_SANITIZERS}", stacklevel=2)
    return tuple(s for s in NN_SANITIZERS if s in requested)


def cc_override() -> "str | None":
    """The ``$CC`` toolchain override for the native-kernel build, or
    ``None`` when unset/empty (fall back to ``cc``/``gcc``/``clang`` on
    ``PATH``).

    The value is trusted as-is — pointing it at a non-existent binary is
    the supported way to mask the compiler (the no-compiler CI leg does
    exactly that).  Empty and whitespace-only values mean "unset", matching
    the historical ``compiler_command`` semantics.
    """
    raw = os.environ.get("CC", "").strip()
    return raw or None


def ld_preload() -> str:
    """The raw ``LD_PRELOAD`` value (empty when unset).

    Consulted by the native loader before ``dlopen``-ing an
    address-sanitized library: without the ASan runtime preloaded the
    runtime aborts the whole interpreter, so the loader turns that state
    into an ordinary build error (and the usual fast-backend degrade)
    instead.
    """
    return env_str("LD_PRELOAD", "")


def nn_workspace_mb() -> float:
    """Workspace arena cap in MiB (``REPRO_NN_WORKSPACE_MB``, default 256).

    Consulted when a :class:`~repro.nn.workspace.Workspace` is constructed
    (the process-wide default arena is built on first use).
    """
    return env_float("REPRO_NN_WORKSPACE_MB", 256.0)


def nn_quant_cache_enabled() -> bool:
    """Whether quantised weights / GEMM repacks are cached per weight version
    (``REPRO_NN_QUANT_CACHE``, default on)."""
    return os.environ.get("REPRO_NN_QUANT_CACHE", "1") != "0"


def nn_batched_restarts() -> bool:
    """Whether multi-restart attacks fold restarts into the batch dimension
    (``REPRO_NN_BATCHED_RESTARTS``, default on)."""
    return os.environ.get("REPRO_NN_BATCHED_RESTARTS", "1") != "0"


# ---------------------------------------------------------------------------
# Inference sessions and serving
# ---------------------------------------------------------------------------

def infer_fold_bn() -> bool:
    """Default BN-folding policy of compiled inference plans
    (``REPRO_INFER_FOLD_BN``, default on)."""
    return os.environ.get("REPRO_INFER_FOLD_BN", "1") != "0"


def serving_max_batch() -> int:
    """Default micro-batch window of the RPS server
    (``REPRO_SERVING_MAX_BATCH``, default 64)."""
    return max(1, env_int("REPRO_SERVING_MAX_BATCH", 64))


def serving_max_delay_ms() -> float:
    """Default micro-batch fill deadline in milliseconds
    (``REPRO_SERVING_MAX_DELAY_MS``, default 2.0)."""
    return max(0.0, env_float("REPRO_SERVING_MAX_DELAY_MS", 2.0))


#: Valid values of ``REPRO_SERVING_TRANSPORT``.
SERVING_TRANSPORTS = ("shm", "inline")


def serving_workers() -> int:
    """Worker-process count of the serving fleet (``REPRO_SERVING_WORKERS``,
    default 1 = the single-process asyncio dispatcher).  Clamped to >= 1."""
    return max(1, env_int("REPRO_SERVING_WORKERS", 1))


def serving_ring_mb() -> float:
    """Per-direction shared-memory ring capacity in MiB for the fleet's
    tensor transport (``REPRO_SERVING_RING_MB``, default 8; clamped to a
    minimum large enough for one small frame)."""
    return max(0.001, env_float("REPRO_SERVING_RING_MB", 8.0))


def serving_transport() -> str:
    """Fleet tensor transport (``REPRO_SERVING_TRANSPORT``): ``shm`` rings
    (default) or the ``inline`` pickled control-pipe fallback.  An invalid
    value warns and falls back to ``shm``."""
    return env_choice("REPRO_SERVING_TRANSPORT", "shm", SERVING_TRANSPORTS)


def serving_queue_limit() -> int:
    """Maximum in-flight requests per server before ``submit`` sheds load
    with ``RejectedError`` (``REPRO_SERVING_QUEUE_LIMIT``, default 0 =
    unbounded).  Clamped to >= 0."""
    return max(0, env_int("REPRO_SERVING_QUEUE_LIMIT", 0))


def serving_deadline_ms() -> float:
    """Default per-request deadline in milliseconds
    (``REPRO_SERVING_DEADLINE_MS``, default 0 = no deadline).  Clamped to
    >= 0; an explicit ``deadline_ms=`` on ``submit`` always wins."""
    return max(0.0, env_float("REPRO_SERVING_DEADLINE_MS", 0.0))


def serving_heartbeat_s() -> float:
    """Supervisor hang-monitor poll interval in seconds
    (``REPRO_SERVING_HEARTBEAT_S``, default 1.0).  Clamped to a 10 ms floor
    so a zero/negative value cannot spin the monitor thread."""
    return max(0.01, env_float("REPRO_SERVING_HEARTBEAT_S", 1.0))


def serving_hang_timeout_s() -> float:
    """How long a fleet worker may hold pending requests without sending any
    message before the supervisor declares it hung and escalates through the
    respawn path (``REPRO_SERVING_HANG_TIMEOUT_S``, default 30).  Must
    exceed the worst-case micro-batch execution time; clamped to >= 0.1."""
    return max(0.1, env_float("REPRO_SERVING_HANG_TIMEOUT_S", 30.0))


def serving_drain_timeout_s() -> float:
    """Fleet shutdown drain budget in seconds
    (``REPRO_SERVING_DRAIN_TIMEOUT_S``, default 120).  Clamped to >= 1."""
    return max(1.0, env_float("REPRO_SERVING_DRAIN_TIMEOUT_S", 120.0))


def serving_join_timeout_s() -> float:
    """How long the supervisor waits for an exited worker process to join
    before resorting to ``kill()`` (``REPRO_SERVING_JOIN_TIMEOUT_S``,
    default 10).  Clamped to >= 0.1."""
    return max(0.1, env_float("REPRO_SERVING_JOIN_TIMEOUT_S", 10.0))


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

def faults_spec() -> str:
    """The raw ``REPRO_FAULTS`` fault-plan spec (empty = no faults).

    Parsed lazily by :func:`repro.faults.active_plan`; the grammar lives on
    :meth:`repro.faults.FaultPlan.parse`.
    """
    return env_str("REPRO_FAULTS", "")


def faults_seed() -> int:
    """Seed of the deterministic per-site fault streams
    (``REPRO_FAULTS_SEED``, default 0)."""
    return env_int("REPRO_FAULTS_SEED", 0)


# ---------------------------------------------------------------------------
# Durable training
# ---------------------------------------------------------------------------

def ckpt_dir() -> str:
    """Default checkpoint directory of training runs (``REPRO_CKPT_DIR``;
    empty = checkpointing only when ``fit`` receives an explicit
    ``checkpoint=``)."""
    return env_str("REPRO_CKPT_DIR", "")


def ckpt_every_steps() -> int:
    """Mid-epoch checkpoint interval in optimiser steps
    (``REPRO_CKPT_EVERY_STEPS``, default 0 = epoch boundaries only).
    Clamped to >= 0."""
    return max(0, env_int("REPRO_CKPT_EVERY_STEPS", 0))


def ckpt_keep() -> int:
    """Keep-last-K ring size of a checkpoint directory (``REPRO_CKPT_KEEP``,
    default 3).  Clamped to >= 1 — pruning every checkpoint would make
    resume impossible."""
    return max(1, env_int("REPRO_CKPT_KEEP", 3))


def train_sentinel_grad_mult() -> float:
    """Gradient-norm explosion threshold of the divergence sentinel, as a
    multiple of the running median norm (``REPRO_TRAIN_SENTINEL_GRAD_MULT``,
    default 25).  Clamped to >= 1 so the sentinel can never trip on a norm
    at or below the median."""
    return max(1.0, env_float("REPRO_TRAIN_SENTINEL_GRAD_MULT", 25.0))


def train_rollback_budget() -> int:
    """Sentinel rollbacks one ``fit`` may spend before aborting with
    ``DivergenceError`` (``REPRO_TRAIN_ROLLBACK_BUDGET``, default 3;
    0 = abort on the first trip).  Clamped to >= 0."""
    return max(0, env_int("REPRO_TRAIN_ROLLBACK_BUDGET", 3))


# ---------------------------------------------------------------------------
# Engine-store client
# ---------------------------------------------------------------------------

def store_timeout_s() -> float:
    """Socket timeout per store-service frame exchange
    (``REPRO_STORE_TIMEOUT_S``, default 30).  Clamped to >= 0.1 — the store
    protocol never waits unboundedly."""
    return max(0.1, env_float("REPRO_STORE_TIMEOUT_S", 30.0))


def store_retries() -> int:
    """Transient-failure retries per store call on top of the first attempt
    (``REPRO_STORE_RETRIES``, default 2; 0 = single attempt).  Clamped to
    >= 0."""
    return max(0, env_int("REPRO_STORE_RETRIES", 2))


def store_backoff_ms() -> float:
    """Base store-retry backoff in milliseconds (``REPRO_STORE_BACKOFF_MS``,
    default 50); attempt ``k`` sleeps ``base * 2**k`` scaled by seeded
    jitter in ``[0.5, 1.5)``.  Clamped to >= 0."""
    return max(0.0, env_float("REPRO_STORE_BACKOFF_MS", 50.0))


def store_backoff_cap_ms() -> float:
    """Upper bound of one store-retry backoff sleep in milliseconds
    (``REPRO_STORE_BACKOFF_CAP_MS``, default 2000).  Clamped to >= 0."""
    return max(0.0, env_float("REPRO_STORE_BACKOFF_CAP_MS", 2000.0))


def store_breaker_failures() -> int:
    """Consecutive failed store calls that open the circuit breaker
    (``REPRO_STORE_BREAKER_FAILURES``, default 3; 0 disables the breaker).
    Clamped to >= 0."""
    return max(0, env_int("REPRO_STORE_BREAKER_FAILURES", 3))


def store_breaker_reset_s() -> float:
    """How long an open store breaker fast-fails before allowing one
    half-open probe (``REPRO_STORE_BREAKER_RESET_S``, default 30).  Clamped
    to >= 0."""
    return max(0.0, env_float("REPRO_STORE_BREAKER_RESET_S", 30.0))


# ---------------------------------------------------------------------------
# Accelerator evaluation engine
# ---------------------------------------------------------------------------

def engine_workers() -> int:
    """Default worker-process count for sharded ``evaluate_grid``
    (``REPRO_ENGINE_WORKERS``, default 0 = synchronous)."""
    return env_int("REPRO_ENGINE_WORKERS", 0)


def engine_persist() -> bool:
    """Whether engine memo stores are backed by the on-disk cache by default
    (``REPRO_ENGINE_PERSIST``, default off)."""
    return env_flag("REPRO_ENGINE_PERSIST")


def engine_cache_dir() -> Path:
    """Engine store root: ``$REPRO_ENGINE_CACHE_DIR`` or
    ``~/.cache/repro/engine``."""
    override = os.environ.get("REPRO_ENGINE_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "engine"


def engine_store_socket() -> str:
    """Unix-socket path of a shared engine-store service
    (``REPRO_ENGINE_STORE_SOCKET``; empty = use this process's own files).

    When non-empty, every engine persistence load/flush is brokered through
    :mod:`repro.accelerator.store_service` at this address, giving a worker
    fleet (and CI legs on one runner) a single warm cache.
    """
    return env_str("REPRO_ENGINE_STORE_SOCKET", "")
