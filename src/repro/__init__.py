"""Reproduction of "2-in-1 Accelerator: Enabling Random Precision Switch for
Winning Both Adversarial Robustness and Efficiency" (MICRO 2021).

Package layout
--------------
* :mod:`repro.nn`            — numpy autograd neural-network substrate
* :mod:`repro.quantization`  — linear quantizer, precisions, quantised layers
* :mod:`repro.models`        — the six evaluated network architectures
* :mod:`repro.data`          — synthetic dataset substitutes (see DESIGN.md)
* :mod:`repro.attacks`       — FGSM / PGD / CW / AutoAttack / Bandits / E-PGD
* :mod:`repro.defense`       — natural + adversarial training baselines
* :mod:`repro.core`          — the RPS algorithm, evaluation, trade-off, co-design
* :mod:`repro.inference`     — compiled precision plans + inference sessions
* :mod:`repro.serving`       — asyncio micro-batching RPS server + scheduling
* :mod:`repro.accelerator`   — MAC units, dataflows, optimizer, accelerators
* :mod:`repro.experiments`   — harnesses regenerating every table and figure
* :mod:`repro.config`        — every ``REPRO_*`` environment knob, documented
"""

__version__ = "1.0.0"

from . import (accelerator, attacks, config, core, data, defense, inference,
               models, nn, quantization, serving)

__all__ = [
    "__version__",
    "nn",
    "quantization",
    "models",
    "data",
    "attacks",
    "defense",
    "core",
    "inference",
    "serving",
    "accelerator",
    "config",
]
