"""Visitor-based AST lint engine for the repo's cross-cutting invariants.

Six PRs of CHANGES.md prose promise invariants that no tool checks: every
environment read goes through :mod:`repro.config`, library code never
touches NumPy's global RNG stream, workspace buffers are released or reach
a step boundary, nothing constructs threads/sockets at import time in
modules the fork-start serving fleet inherits, and RNG seeds never come
from wall-clock or OS entropy.  This module is the engine that turns those
sentences into machine-checked rules; the rules themselves live in
:mod:`repro.analysis.rules`.

Engine model
------------

* Every ``*.py`` file under the scanned root is parsed once into a
  :class:`FileContext` (AST + source lines + a resolved import map).
* :class:`FileRule` subclasses are called once per file;
  :class:`ProjectRule` subclasses see the whole file set at once (the
  fork-safety rule needs the import *graph*, not one module).
* Findings on a line carrying ``# repro: noqa[rule-name]`` (or a bare
  ``# repro: noqa``) are waived at the engine level, so individual rules
  never reimplement suppression.
* A committed *baseline* (JSON list of finding fingerprints) suppresses
  accepted pre-existing findings without touching the source.  Fingerprints
  hash the (path, rule, offending source text) triple — not line numbers —
  so unrelated edits above a baselined finding don't invalidate it.

The engine deliberately has no dependencies beyond the standard library:
it must be importable (and fast) in CI legs that never import NumPy.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "FileRule",
    "ProjectRule",
    "LintEngine",
    "collect_imports",
    "resolve_name",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str           #: POSIX path relative to the scan root's parent
    line: int           #: 1-based line of the offending node
    col: int            #: 0-based column of the offending node
    rule: str           #: rule slug, e.g. ``config-discipline``
    message: str
    fingerprint: str = ""   #: stable identity for baselines (engine-filled)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule may need about one parsed source file."""

    path: Path                      #: absolute filesystem path
    rel: str                        #: POSIX path used in findings
    module: str                     #: dotted module name (best effort)
    source: str
    lines: List[str]
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(self.rel, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), rule, message)


class Rule:
    """Base class carrying the slug + one-line description (for ``--list-rules``)."""

    name: str = ""
    description: str = ""


class FileRule(Rule):
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(self, files: Dict[str, FileContext]) -> Iterable[Finding]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared import-resolution helpers
# ---------------------------------------------------------------------------

def collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import name to its dotted source.

    ``import numpy as np``              -> ``{"np": "numpy"}``
    ``import numpy.random``             -> ``{"numpy": "numpy"}``
    ``from numpy import random as r``   -> ``{"r": "numpy.random"}``
    ``from numpy.random import rand``   -> ``{"rand": "numpy.random.rand"}``

    Relative imports resolve to their tail (``from ..nn import functional``
    -> ``{"functional": "functional"}``); the rules only match absolute
    stdlib/numpy names, so that lossiness is harmless.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # `import numpy.random` binds the *root* name.
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                dotted = f"{base}.{alias.name}" if base else alias.name
                imports[bound] = dotted
    return imports


def resolve_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.rand`` -> ``"numpy.random.rand"`` (or ``None``).

    Follows Name/Attribute chains only — anything hanging off a call result
    or subscript is dynamic and resolves to ``None`` (never a false match).
    """
    if isinstance(node, ast.Name):
        return imports.get(node.id)
    if isinstance(node, ast.Attribute):
        base = resolve_name(node.value, imports)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def walk_import_time(tree: ast.Module) -> Iterable[ast.AST]:
    """Yield every node executed at *import* time (skips function bodies).

    Module-level statements, class bodies, and anything nested in
    module-level ``if``/``try``/``with``/``for`` run when the module is
    imported; ``def``/``lambda`` bodies do not.
    """
    def visit(node: ast.AST) -> Iterable[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                # The decorator list and defaults DO run at import time.
                if not isinstance(child, ast.Lambda):
                    for dec in child.decorator_list:
                        yield dec
                        yield from visit(dec)
                    for default in (child.args.defaults
                                    + [d for d in child.args.kw_defaults if d]):
                        yield default
                        yield from visit(default)
                continue
            yield child
            yield from visit(child)
    return visit(tree)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Path) -> List[dict]:
    """Load baseline entries; a missing file is an empty baseline."""
    if not Path(path).exists():
        return []
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    return list(data.get("findings", []))


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    entries = [{"fingerprint": f.fingerprint, "path": f.path, "rule": f.rule,
                "message": f.message} for f in findings]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(findings: Sequence[Finding], baseline: Sequence[dict]
                   ) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split ``findings`` into (fresh, suppressed) and report stale entries.

    A baseline entry is *stale* when no current finding matches it — the
    violation was fixed, so the entry should be deleted (CI prints these
    but does not fail on them).
    """
    known = {entry.get("fingerprint") for entry in baseline}
    fresh = [f for f in findings if f.fingerprint not in known]
    suppressed = [f for f in findings if f.fingerprint in known]
    live = {f.fingerprint for f in suppressed}
    stale = [entry for entry in baseline
             if entry.get("fingerprint") not in live]
    return fresh, suppressed, stale


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class LintEngine:
    """Parse a tree of Python files once and run every rule over it."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from .rules import ALL_RULES
            rules = ALL_RULES
        self.rules = list(rules)

    # -- collection --------------------------------------------------------

    def _contexts(self, root: Path) -> Dict[str, FileContext]:
        root = Path(root).resolve()
        if root.is_file():
            paths = [root]
            base = root.parent
        else:
            paths = sorted(p for p in root.rglob("*.py"))
            base = root.parent
        contexts: Dict[str, FileContext] = {}
        for path in paths:
            rel = path.relative_to(base).as_posix()
            module = rel[:-3].replace("/", ".")
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as error:
                # Surfaced as a finding rather than crashing the whole run:
                # one broken file should not hide every other violation.
                ctx = FileContext(path, rel, module, source,
                                  source.splitlines(), ast.Module(body=[],
                                                                  type_ignores=[]))
                ctx.parse_error = error        # type: ignore[attr-defined]
                contexts[module] = ctx
                continue
            ctx = FileContext(path, rel, module, source, source.splitlines(),
                              tree, collect_imports(tree))
            contexts[module] = ctx
        return contexts

    # -- waivers + fingerprints -------------------------------------------

    @staticmethod
    def _waived(finding: Finding, ctx: FileContext) -> bool:
        if not (1 <= finding.line <= len(ctx.lines)):
            return False
        match = _NOQA_RE.search(ctx.lines[finding.line - 1])
        if not match:
            return False
        rules = match.group("rules")
        if rules is None:
            return True                       # bare `# repro: noqa`
        waived = {r.strip() for r in rules.split(",") if r.strip()}
        return finding.rule in waived

    @staticmethod
    def _fingerprint(finding: Finding, ctx: Optional[FileContext],
                     seen: Dict[Tuple[str, str, str], int]) -> str:
        if ctx is not None and 1 <= finding.line <= len(ctx.lines):
            text = ctx.lines[finding.line - 1].strip()
        else:
            text = finding.message
        key = (finding.path, finding.rule, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        raw = f"{finding.path}::{finding.rule}::{text}::{index}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]

    # -- run ---------------------------------------------------------------

    def run(self, root: Path) -> List[Finding]:
        """Lint every ``*.py`` under ``root``; returns waiver-filtered,
        fingerprinted findings sorted by location."""
        contexts = self._contexts(Path(root))
        by_rel = {ctx.rel: ctx for ctx in contexts.values()}
        findings: List[Finding] = []

        for ctx in contexts.values():
            error = getattr(ctx, "parse_error", None)
            if error is not None:
                findings.append(Finding(ctx.rel, error.lineno or 1, 0,
                                        "parse-error", str(error.msg)))
                continue
            for rule in self.rules:
                if isinstance(rule, FileRule):
                    findings.extend(rule.check_file(ctx))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(contexts))

        findings = [f for f in findings
                    if f.path not in by_rel or not self._waived(f, by_rel[f.path])]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        seen: Dict[Tuple[str, str, str], int] = {}
        return [replace(f, fingerprint=self._fingerprint(f, by_rel.get(f.path),
                                                         seen))
                for f in findings]
