"""ctypes ↔ C ABI cross-checker for the native kernel library.

The single most dangerous edit in this repo is changing an exported
prototype in ``conv.c`` without touching ``build.py``: ctypes will happily
marshal the old ``argtypes`` into the new symbol and the kernels read
garbage (or scribble) with no error at the boundary.  PR 5's runtime
``ABI_VERSION`` handshake catches a *stale compiled library*; nothing
catches the two *sources* drifting apart — and the ROADMAP's kernel-codegen
item is about to make C sources machine-generated, multiplying the ways
they can drift.

Three checks, all static (no compiler, no dlopen):

1. **Prototype diff** — every exported (non-``static``) ``repro_*``
   function defined in ``conv.c`` must have a ctypes binding in
   ``build.py`` with *explicit* ``argtypes`` and ``restype`` (ctypes'
   implicit-int defaults are exactly the silent-garbage failure mode),
   matching in arity and in every parameter's width/kind — ``long`` vs
   ``int`` drift on one count argument is a truncation on LP64 and a stack
   smash on LLP64.  Stale bindings (no such export) fail too.
2. **ABI version handshake** — ``#define REPRO_NATIVE_ABI`` in ``conv.c``
   and ``ABI_VERSION`` in ``build.py`` must agree (the runtime check only
   works if the two sides of it were updated together).
3. **Signature digest** — ctypes cannot express ``const``, so const-ness
   drift (a kernel that starts writing through a pointer callers believe
   is read-only) is invisible to check 1.  The canonical signatures —
   const qualifiers included — are hashed and compared against
   ``ABI_SIGNATURE_DIGEST`` in ``build.py``; any prototype change
   therefore forces a reviewed digest refresh (``python -m repro.analysis
   --abi-digest`` prints the new value) alongside the ``ABI_VERSION``
   bump.

The parsers accept source *strings* so tests can mutate a prototype and
assert the diff is caught; the default paths point at the real tree.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .lint import Finding

__all__ = ["CParam", "CSignature", "parse_c_exports", "parse_py_bindings",
           "signature_digest", "check_abi", "C_SOURCE", "PY_SOURCE"]

_NATIVE_DIR = Path(__file__).resolve().parent.parent / "nn" / "native"
C_SOURCE = _NATIVE_DIR / "conv.c"
PY_SOURCE = _NATIVE_DIR / "build.py"
C_REL = "repro/nn/native/conv.c"
PY_REL = "repro/nn/native/build.py"

#: C scalar types the kernels may use, mapped to the ctypes token the
#: binding must declare.  Anything outside this table is itself a finding —
#: a new type must be added here (and thought about) before it can ship.
_SCALAR_TOKENS = {
    "int": "c_int",
    "long": "c_long",
    "long long": "c_longlong",
    "float": "c_float",
    "double": "c_double",
    "size_t": "c_size_t",
    "unsigned char": "c_ubyte",
    "char": "c_char",
}
_POINTER_TOKENS = {base: f"POINTER({token})"
                   for base, token in _SCALAR_TOKENS.items()}
_RETURN_TOKENS = dict(_SCALAR_TOKENS, void="None")


# ---------------------------------------------------------------------------
# C side
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CParam:
    base: str           #: e.g. ``float``
    pointer: int        #: levels of indirection
    const: bool
    name: str

    def canonical(self) -> str:
        qual = "const " if self.const else ""
        return f"{qual}{self.base}{'*' * self.pointer}"

    def ctypes_token(self) -> Optional[str]:
        if self.pointer == 1:
            return _POINTER_TOKENS.get(self.base)
        if self.pointer == 0:
            return _SCALAR_TOKENS.get(self.base)
        return None


@dataclass(frozen=True)
class CSignature:
    name: str
    restype: str        #: e.g. ``void`` / ``int``
    params: Tuple[CParam, ...]
    line: int

    def canonical(self) -> str:
        args = ", ".join(p.canonical() for p in self.params)
        return f"{self.restype} {self.name}({args})"

    def restype_token(self) -> Optional[str]:
        return _RETURN_TOKENS.get(self.restype)


_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_EXPORT_RE = re.compile(
    r"^[ \t]*(?P<head>[A-Za-z_][A-Za-z0-9_ \t]*?)[ \t]+"
    r"(?P<name>repro_\w+)[ \t]*\((?P<args>[^)]*)\)[ \t]*(?:\n[ \t]*)?\{",
    re.MULTILINE | re.DOTALL)
_PARAM_RE = re.compile(
    r"^(?P<quals>(?:(?:const|volatile|restrict)\s+)*)"
    r"(?P<base>[A-Za-z_][A-Za-z0-9_]*(?:\s+[A-Za-z_][A-Za-z0-9_]*)*?)"
    r"\s*(?P<stars>\*+)?\s*(?P<name>[A-Za-z_]\w*)?$")


def _strip_comments(source: str) -> str:
    # Preserve line numbers: replace comments with equivalent newlines.
    def blank(match: re.Match) -> str:
        return "\n" * match.group(0).count("\n")
    return _COMMENT_RE.sub(blank, source)


def _parse_param(text: str) -> Optional[CParam]:
    text = " ".join(text.split())
    if not text or text == "void":
        return None
    match = _PARAM_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable C parameter: {text!r}")
    base = " ".join(match.group("base").split())
    # `unsigned` alone means `unsigned int`.
    if base == "unsigned":
        base = "int"
    return CParam(base=base,
                  pointer=len(match.group("stars") or ""),
                  const="const" in (match.group("quals") or ""),
                  name=match.group("name") or "")


def parse_c_exports(source: Optional[str] = None) -> Dict[str, CSignature]:
    """Exported (non-static) ``repro_*`` function definitions in conv.c."""
    if source is None:
        source = C_SOURCE.read_text()
    text = _strip_comments(source)
    exports: Dict[str, CSignature] = {}
    for match in _EXPORT_RE.finditer(text):
        head = " ".join(match.group("head").split())
        if "static" in head.split():
            continue
        restype = head.removeprefix("extern").strip() or "int"
        params = []
        args = " ".join(match.group("args").split())
        if args:
            for piece in args.split(","):
                param = _parse_param(piece)
                if param is not None:
                    params.append(param)
        line = text.count("\n", 0, match.start()) + 1
        exports[match.group("name")] = CSignature(
            match.group("name"), restype, tuple(params), line)
    return exports


def parse_c_abi_version(source: Optional[str] = None) -> Optional[int]:
    if source is None:
        source = C_SOURCE.read_text()
    match = re.search(r"#define\s+REPRO_NATIVE_ABI\s+(\d+)", source)
    return int(match.group(1)) if match else None


def signature_digest(source: Optional[str] = None) -> str:
    """Order-independent digest of the canonical exported signatures.

    Const qualifiers are part of the canonical form; parameter *names* are
    not (renaming an argument is not an ABI change).
    """
    exports = parse_c_exports(source)
    lines = sorted(sig.canonical() for sig in exports.values())
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Python side
# ---------------------------------------------------------------------------

@dataclass
class PyBinding:
    name: str
    restype: Optional[str] = None       #: token, or None when never set
    argtypes: Optional[List[str]] = None
    line: int = 0


_CTYPES_NAMES = {"c_int", "c_long", "c_longlong", "c_float", "c_double",
                 "c_size_t", "c_ubyte", "c_char", "c_void_p"}


def _token(node: ast.AST, env: Dict[str, str]) -> Optional[str]:
    """Canonical token for a ctypes type expression (or None)."""
    if isinstance(node, ast.Constant) and node.value is None:
        return "None"
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if node.id in _CTYPES_NAMES:
            return node.id
        return None
    if isinstance(node, ast.Attribute):
        if node.attr in _CTYPES_NAMES:
            return node.attr
        return None
    if isinstance(node, ast.Call):
        func = node.func
        fname = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else ""
        if fname == "POINTER" and len(node.args) == 1:
            inner = _token(node.args[0], env)
            return f"POINTER({inner})" if inner else None
        return None
    return None


def parse_py_bindings(source: Optional[str] = None) -> Dict[str, PyBinding]:
    """``lib.<sym>.argtypes/restype`` assignments in build.py, resolved
    through simple local aliases (``f32p = ctypes.POINTER(...)``)."""
    if source is None:
        source = PY_SOURCE.read_text()
    tree = ast.parse(source)

    env: Dict[str, str] = {}
    bindings: Dict[str, PyBinding] = {}

    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        # Alias collection: `f32p = ...`, including tuple unpacking.
        targets = node.targets
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            token = _token(node.value, env)
            if token is not None:
                env[targets[0].id] = token
        elif len(targets) == 1 and isinstance(targets[0], ast.Tuple) \
                and isinstance(node.value, ast.Tuple) \
                and len(targets[0].elts) == len(node.value.elts):
            for t, v in zip(targets[0].elts, node.value.elts):
                if isinstance(t, ast.Name):
                    token = _token(v, env)
                    if token is not None:
                        env[t.id] = token

    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Attribute)
                and target.attr in ("restype", "argtypes")
                and isinstance(target.value, ast.Attribute)):
            continue
        symbol = target.value.attr
        binding = bindings.setdefault(symbol, PyBinding(symbol))
        binding.line = binding.line or node.lineno
        if target.attr == "restype":
            binding.restype = _token(node.value, env) or "<unresolved>"
        else:
            if isinstance(node.value, (ast.List, ast.Tuple)):
                binding.argtypes = [
                    _token(elt, env) or "<unresolved>"
                    for elt in node.value.elts]
            else:
                binding.argtypes = None if isinstance(node.value, ast.Constant) \
                    and node.value.value is None else ["<unresolved>"]
    return bindings


def parse_py_abi_constants(source: Optional[str] = None
                           ) -> Tuple[Optional[int], Optional[str]]:
    """(ABI_VERSION, ABI_SIGNATURE_DIGEST) assignments in build.py."""
    if source is None:
        source = PY_SOURCE.read_text()
    version: Optional[int] = None
    digest: Optional[str] = None
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant):
            if node.targets[0].id == "ABI_VERSION":
                version = node.value.value
            elif node.targets[0].id == "ABI_SIGNATURE_DIGEST":
                digest = node.value.value
    return version, digest


# ---------------------------------------------------------------------------
# The cross-check
# ---------------------------------------------------------------------------

RULE = "abi-check"


def check_abi(c_source: Optional[str] = None,
              py_source: Optional[str] = None) -> List[Finding]:
    """Diff conv.c's exported prototypes against build.py's ctypes layer."""
    if c_source is None:
        c_source = C_SOURCE.read_text()
    if py_source is None:
        py_source = PY_SOURCE.read_text()

    findings: List[Finding] = []

    def c_finding(line: int, message: str) -> None:
        findings.append(Finding(C_REL, line, 0, RULE, message))

    def py_finding(line: int, message: str) -> None:
        findings.append(Finding(PY_REL, line, 0, RULE, message))

    try:
        exports = parse_c_exports(c_source)
    except ValueError as error:
        c_finding(1, f"could not parse exported prototypes: {error}")
        return findings
    bindings = parse_py_bindings(py_source)

    if not exports:
        c_finding(1, "no exported repro_* prototypes found — the parser "
                     "and the source have drifted apart")
        return findings

    for name, sig in sorted(exports.items()):
        binding = bindings.get(name)
        if binding is None:
            c_finding(sig.line,
                      f"exported `{name}` has no ctypes binding in "
                      f"build.py's _bind(); calls would use implicit-int "
                      f"marshalling")
            continue
        if binding.restype is None:
            py_finding(binding.line,
                       f"`{name}` never sets restype; ctypes defaults to "
                       f"int — declare it explicitly "
                       f"({sig.restype_token() or sig.restype})")
        else:
            expected = sig.restype_token()
            if expected is None:
                c_finding(sig.line,
                          f"`{name}` returns `{sig.restype}`, which the "
                          f"ABI checker has no ctypes mapping for")
            elif binding.restype != expected:
                py_finding(binding.line,
                           f"`{name}` restype is {binding.restype}, but "
                           f"conv.c returns `{sig.restype}` ({expected})")
        if binding.argtypes is None:
            py_finding(binding.line,
                       f"`{name}` never sets argtypes; every argument "
                       f"would marshal as implicit int — declare all "
                       f"{len(sig.params)} explicitly")
            continue
        if len(binding.argtypes) != len(sig.params):
            py_finding(binding.line,
                       f"`{name}` declares {len(binding.argtypes)} "
                       f"argtypes but conv.c takes {len(sig.params)} "
                       f"parameters")
            continue
        for index, (param, token) in enumerate(zip(sig.params,
                                                   binding.argtypes)):
            expected = param.ctypes_token()
            if expected is None:
                c_finding(sig.line,
                          f"`{name}` parameter {index} "
                          f"(`{param.canonical()} {param.name}`) has no "
                          f"ctypes mapping known to the ABI checker")
            elif token != expected:
                py_finding(binding.line,
                           f"`{name}` argtypes[{index}] is {token}, but "
                           f"conv.c declares `{param.canonical()} "
                           f"{param.name}` ({expected})")

    for name, binding in sorted(bindings.items()):
        if name not in exports:
            py_finding(binding.line,
                       f"binding for `{name}` has no exported definition "
                       f"in conv.c (stale or misspelled)")

    c_version = parse_c_abi_version(c_source)
    py_version, py_digest = parse_py_abi_constants(py_source)
    if c_version is None:
        c_finding(1, "missing `#define REPRO_NATIVE_ABI` — the runtime "
                     "stale-library handshake is gone")
    elif c_version != py_version:
        py_finding(1, f"ABI_VERSION={py_version} but conv.c defines "
                      f"REPRO_NATIVE_ABI={c_version}; bump them together")

    digest = signature_digest(c_source)
    if py_digest != digest:
        py_finding(1,
                   f"exported prototypes (const-ness included) hash to "
                   f"{digest} but ABI_SIGNATURE_DIGEST is {py_digest!r}; "
                   f"an exported signature changed — bump ABI_VERSION and "
                   f"refresh the digest (python -m repro.analysis "
                   f"--abi-digest)")
    return findings
