"""``python -m repro.analysis`` — run the full static-analysis pass.

Exit codes: 0 clean (baselined findings don't fail), 1 fresh lint/ABI
findings, 2 usage or internal error.  ``--json`` emits one machine-readable
object (CI archives it); the default text output is one
``path:line:col: [rule] message`` line per finding plus a summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from . import DEFAULT_BASELINE, default_root
from .abi import check_abi, signature_digest
from .lint import (Finding, LintEngine, apply_baseline, load_baseline,
                   write_baseline)
from .rules import rule_table


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-invariant static analysis: AST lints + "
                    "ctypes/C ABI cross-check.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file (default: the committed one)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept every current lint finding into the "
                             "baseline and exit 0 (ABI findings are never "
                             "baselinable)")
    parser.add_argument("--no-abi", action="store_true",
                        help="skip the ctypes/C ABI cross-check")
    parser.add_argument("--abi-digest", action="store_true",
                        help="print conv.c's current signature digest "
                             "(for refreshing ABI_SIGNATURE_DIGEST)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(rule_table())
        return 0
    if args.abi_digest:
        print(signature_digest())
        return 0

    roots = args.paths or [default_root()]
    engine = LintEngine()
    findings: List[Finding] = []
    for root in roots:
        if not Path(root).exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
        findings.extend(engine.run(Path(root)))

    try:
        baseline = load_baseline(args.baseline)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(findings, args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    fresh, suppressed, stale = apply_baseline(findings, baseline)
    abi_findings = [] if args.no_abi else check_abi()

    if args.as_json:
        print(json.dumps({
            "findings": [f.as_dict() for f in fresh],
            "abi": [f.as_dict() for f in abi_findings],
            "baselined": len(suppressed),
            "stale_baseline_entries": [e.get("fingerprint") for e in stale],
            "clean": not fresh and not abi_findings,
        }, indent=2))
    else:
        for finding in fresh + abi_findings:
            print(finding.format())
        bits = [f"{len(fresh)} lint finding(s)"]
        if not args.no_abi:
            bits.append(f"{len(abi_findings)} ABI finding(s)")
        if suppressed:
            bits.append(f"{len(suppressed)} baselined")
        if stale:
            bits.append(f"{len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'} (delete them)")
        print(", ".join(bits))

    return 1 if fresh or abi_findings else 0


if __name__ == "__main__":
    sys.exit(main())
