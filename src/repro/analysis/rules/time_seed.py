"""``no-naked-time-seed`` — RNG seeds never come from wall-clock/OS entropy.

Every determinism contract in this repo — bit-identical sharded grids, the
fleet's seeded precision-draw stream, replayable chaos tests — reduces to
one discipline: seeds are explicit values from config, never ambient
entropy.  ``default_rng(time.time())`` *looks* seeded (it passes every
"did you seed it" review) while being exactly as irreproducible as no
seed at all, which is why it gets its own rule instead of relying on
``rng-discipline``.

Flags ``time.time``/``time.time_ns``/``os.urandom``-style entropy anywhere
inside the arguments of a seed sink: ``default_rng(...)``,
``RandomState(...)``, ``SeedSequence(...)``, bit-generator constructors,
``<x>.seed(...)`` calls, and any ``seed=``/``rng_seed=`` keyword.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..lint import FileContext, FileRule, Finding, resolve_name

#: Entropy sources that must not feed a seed.
ENTROPY = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.random",
    "secrets.token_bytes",
    "secrets.randbits",
}

#: Callable names whose arguments are seeds.
SINK_NAMES = {
    "default_rng",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "seed",
}

#: Keyword arguments that are seeds regardless of what is being called.
SEED_KEYWORDS = {"seed", "rng_seed", "random_state"}


def _sink_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in SINK_NAMES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in SINK_NAMES:
        return func.attr
    return None


class TimeSeed(FileRule):
    name = "no-naked-time-seed"
    description = ("RNG seeded from wall-clock or OS entropy "
                   "(time.time()/os.urandom into default_rng/seed)")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            seed_exprs = []
            if _sink_name(node) is not None:
                seed_exprs.extend(node.args)
                seed_exprs.extend(kw.value for kw in node.keywords)
            else:
                seed_exprs.extend(kw.value for kw in node.keywords
                                  if kw.arg in SEED_KEYWORDS)
            for expr in seed_exprs:
                for inner in ast.walk(expr):
                    if isinstance(inner, ast.Call):
                        resolved = resolve_name(inner.func, ctx.imports)
                        if resolved in ENTROPY:
                            yield ctx.finding(
                                inner, self.name,
                                f"`{resolved}()` feeds an RNG seed; seeds "
                                f"must be explicit values (config/seeded "
                                f"streams) or reproducibility is gone")
