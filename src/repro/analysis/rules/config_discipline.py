"""``config-discipline`` — every environment read goes through repro.config.

:mod:`repro.config` is the registry of every runtime knob: typed accessors,
documented defaults, and warn-and-fall-back handling of malformed values.
An ``os.environ``/``os.getenv`` call anywhere else bypasses all of that —
the knob becomes invisible to the README table, silently diverges in
malformed-value behaviour, and (the PR 5 incident) ships with semantics
nobody reviews.  This rule flags any reference to the environment outside
``repro/config.py``, whether reached as an attribute chain or bound via
``from os import environ``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..lint import FileContext, FileRule, Finding, resolve_name

#: Fully-resolved names whose mere *reference* constitutes an env access.
BANNED = {
    "os.environ",
    "os.environb",
    "os.getenv",
    "os.getenvb",
    "os.putenv",
    "os.unsetenv",
}

#: The one module allowed to touch the environment (path suffix match so
#: fixture trees in tests can provide their own ``config.py``).
ALLOWED_SUFFIX = "config.py"


class ConfigDiscipline(FileRule):
    name = "config-discipline"
    description = ("environment access (os.environ / os.getenv) outside "
                   "repro/config.py; add a typed accessor there instead")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel.endswith(ALLOWED_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = resolve_name(node, ctx.imports)
                if resolved in BANNED:
                    yield ctx.finding(
                        node, self.name,
                        f"`{resolved}` outside repro/config.py: route this "
                        f"knob through a typed repro.config accessor")
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if f"os.{alias.name}" in BANNED:
                        yield ctx.finding(
                            node, self.name,
                            f"`from os import {alias.name}` outside "
                            f"repro/config.py: route this knob through a "
                            f"typed repro.config accessor")
