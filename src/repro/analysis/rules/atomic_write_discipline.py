"""``atomic-write-discipline`` — persistence modules write through io_atomic.

The durability PR consolidated every torn-write defence (write-temp in the
destination directory, flush + fsync, atomic rename, optional checksum
envelope) into :mod:`repro.io_atomic`.  A bare ``open(path, "wb")`` followed
by a ``pickle.dump``/``.write`` in one of the persistence modules silently
forfeits all of it: a crash mid-write leaves a torn file that the engine
store would unpickle garbage from, or that a checkpoint resume would trust.
The bare form reads exactly like the safe one, so review misses it — hence a
rule.

Scope: the modules whose whole job is persisting binary state —
``engine_store.py``, ``checkpoint.py``, ``store_service.py``, and
``io_atomic.py`` itself is exempt (it *is* the implementation, and its
``NamedTemporaryFile`` path never calls bare ``open``).

What counts as a finding: any ``open(...)`` call whose mode argument is a
literal string containing ``w``, ``x`` or ``a`` (write/create/append modes;
reads are fine), whether positional or ``mode=``.  Write your bytes with
:func:`repro.io_atomic.atomic_write_bytes` (or the pickle/checksummed
wrappers) instead, or waive a deliberate exception with
``# repro: noqa[atomic-write-discipline]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..lint import FileContext, FileRule, Finding

#: Files whose writes must go through repro.io_atomic (suffix match so
#: fixture trees in tests can mirror the layout).
PERSISTENCE_MODULES = ("engine_store.py", "checkpoint.py", "store_service.py")


def _in_scope(rel: str) -> bool:
    return rel.endswith(PERSISTENCE_MODULES)


def _write_mode(node: ast.Call) -> str:
    """The literal write mode of an ``open()`` call, or ``""``."""
    mode = node.args[1] if len(node.args) > 1 else next(
        (kw.value for kw in node.keywords if kw.arg == "mode"), None)
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str) \
            and any(ch in mode.value for ch in "wxa"):
        return mode.value
    return ""


class AtomicWriteDiscipline(FileRule):
    name = "atomic-write-discipline"
    description = ("bare write-mode open() in a persistence module "
                   "(engine_store/checkpoint/store_service) instead of "
                   "repro.io_atomic")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "open"):
                continue
            mode = _write_mode(node)
            if mode:
                yield ctx.finding(
                    node, self.name,
                    f"bare `open(..., {mode!r})` bypasses the torn-write "
                    f"defences; write through repro.io_atomic "
                    f"(atomic_write_bytes / atomic_write_pickle / "
                    f"atomic_write_checksummed)")
