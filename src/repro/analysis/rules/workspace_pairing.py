"""``workspace-pairing`` — acquired scratch buffers must be discharged.

The :class:`repro.nn.workspace.Workspace` arena is "leak, never corrupt":
a buffer that is acquired and then simply dropped is never *wrong*, it
just silently stops being reused — the allocation-free steady state PR 3
measured decays back to malloc traffic one forgotten ``release`` at a
time (exactly the class of gap the PR 6 stats audit found by hand).

Within one function scope, a name bound from an ``acquire``-like call must
be *discharged*: passed to a ``release`` call, covered by an ``end_step``
boundary in the same function, or it must escape — returned/yielded
(ownership transfers to the caller, guarded by the arena's refcount check),
stored into an object/container, handed to an ``adopt``-style call
(``Tensor.make_from_op`` / ``accumulate_grad`` take ownership), or
captured by a nested function (autograd ``backward`` closures keep their
buffers alive for the graph's lifetime — pairing is then the closure's
contract, not this scope's).  A buffer that does none of these is a drop,
and an ``acquire`` whose result is never even bound cannot be discharged
at all.

The analysis is name-based with alias tracking through plain rebinds
(``staged = xp``) and *view-producing* expressions only
(``out = buf.reshape(...)``, ``col = buf[...]`` — views share the
allocation, so the view escaping keeps the buffer alive; a BinOp/matmul
result is a fresh array and deliberately does NOT alias, which is exactly
how `plan.py`'s dropped staging buffer stays visible).  Scoped per
function; nested functions are their own scopes.  It is deliberately a
*heuristic*: conditional paths are not enumerated (a release on any path
counts), trading soundness for a near-zero false-positive rate on the
real compute core.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..lint import FileContext, FileRule, Finding

#: Call names (attribute or bare) that hand out an arena buffer.
ACQUIRE_NAMES = {"acquire", "acquire_like", "_acquire", "_acquire_like"}
#: Call names that give one back.
RELEASE_NAMES = {"release", "_release"}
#: Call names that transfer ownership of a passed buffer.
ADOPT_NAMES = {"adopt", "append", "add", "put", "extend", "appendleft",
               "accumulate_grad", "make_from_op"}
#: A step boundary discharges every outstanding buffer in the function.
BOUNDARY_NAMES = {"end_step"}
#: ndarray methods whose result is a *view* of the receiver (escape of the
#: view is escape of the buffer).
VIEW_METHODS = {"reshape", "transpose", "view", "ravel", "swapaxes",
                "squeeze"}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _workspaceish(node: ast.AST) -> bool:
    """Does this receiver look like a workspace (not a threading lock)?"""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.Call):
        return _call_name(node) in {"default_workspace"}
    else:
        return False
    lowered = ident.lower()
    return lowered == "ws" or "workspace" in lowered or "arena" in lowered


def _is_acquire(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ACQUIRE_NAMES
    if isinstance(func, ast.Attribute):
        if func.attr in ("acquire_like", "_acquire_like"):
            return True
        # Bare `.acquire(...)` is also how threading locks spell it; only
        # workspace-looking receivers are in scope for this rule.
        return func.attr == "acquire" and _workspaceish(func.value)
    return False


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _view_root(node: ast.AST) -> str:
    """Peel view-producing wrappers down to the viewed name (or '')."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute) and node.attr == "T":
            node = node.value
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in VIEW_METHODS:
            node = node.func.value
        else:
            return ""


def _acquires_in(node: ast.AST) -> List[ast.Call]:
    return [call for call in ast.walk(node)
            if isinstance(call, ast.Call) and _is_acquire(call)]


class _FunctionScope:
    """One function body, nested function definitions excluded."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[ast.AST] = []
        self.captured: Set[str] = set()     # names referenced by nested defs
        for stmt in func.body:
            self._collect(stmt)

    def _collect(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            self.captured |= _names_in(node)
            return
        self.nodes.append(node)
        for child in ast.iter_child_nodes(node):
            self._collect(child)


class WorkspacePairing(FileRule):
    name = "workspace-pairing"
    description = ("workspace buffer acquired but neither released, "
                   "escaping, nor covered by end_step in the function")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    # -- per-function analysis --------------------------------------------

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterable[Finding]:
        scope = _FunctionScope(func)
        acquired: Dict[str, ast.AST] = {}       # name -> acquire call node
        aliases: Dict[str, Set[str]] = {}       # name -> alias group (shared set)
        discharged: Set[str] = set()
        boundary = False
        unbound: List[ast.AST] = []

        def group(name: str) -> Set[str]:
            if name not in aliases:
                aliases[name] = {name}
            return aliases[name]

        def union(a: str, b: str) -> None:
            merged = group(a) | group(b)
            for name in merged:
                aliases[name] = merged

        # Pass 1: bindings, aliases and unbound acquires.  A name is an
        # acquire binding when its assigned value *contains* an acquire
        # call (covers `buf = ws.acquire(s) if ws else np.empty(s)`).
        bound_calls: Set[int] = set()
        for node in scope.nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                value = node.value
                contained = _acquires_in(value)
                if contained:
                    acquired[target] = contained[0]
                    group(target)
                    bound_calls |= {id(c) for c in contained}
                elif isinstance(value, ast.Name):
                    union(target, value.id)
                else:
                    # View of an acquired buffer: the alias keeps the
                    # allocation alive, so its escape is the buffer's.
                    root = _view_root(value)
                    if root:
                        union(target, root)
        for node in scope.nodes:
            if isinstance(node, ast.Call) and _is_acquire(node) \
                    and id(node) not in bound_calls:
                unbound.append(node)

        if not acquired and not unbound:
            return

        # Pass 2: discharges and escapes.
        escaped_unbound: Set[int] = set()
        for node in scope.nodes:
            if isinstance(node, ast.Call):
                cname = _call_name(node)
                if cname in BOUNDARY_NAMES:
                    boundary = True
                elif cname in RELEASE_NAMES:
                    for arg in node.args:
                        discharged |= _names_in(arg) & set(aliases)
                elif cname in ADOPT_NAMES:
                    for arg in node.args:
                        discharged |= _names_in(arg) & set(aliases)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    discharged |= _names_in(value) & set(aliases)
                    escaped_unbound |= {id(c) for c in _acquires_in(value)}
            elif isinstance(node, ast.Assign):
                # Storing into an attribute/subscript/tuple target escapes
                # the buffer into an object or container the caller owns.
                if any(not isinstance(t, ast.Name) for t in node.targets):
                    discharged |= _names_in(node.value) & set(aliases)
                    escaped_unbound |= {id(c)
                                        for c in _acquires_in(node.value)}

        if boundary:
            return

        # Capture by a nested function (an autograd backward closure) keeps
        # the buffer alive past this scope; pairing becomes its contract.
        discharged |= scope.captured & set(aliases)

        # Propagate discharge across alias groups.
        fully_discharged: Set[str] = set()
        for name in acquired:
            if group(name) & discharged:
                fully_discharged.add(name)

        for name, site in acquired.items():
            if name not in fully_discharged:
                yield ctx.finding(
                    site, self.name,
                    f"workspace buffer `{name}` is acquired but neither "
                    f"released, escaping, nor covered by end_step; pair "
                    f"every acquire with release/end_step on all paths")
        for site in unbound:
            if id(site) not in escaped_unbound:
                yield ctx.finding(
                    site, self.name,
                    "acquire result is not bound to a name, so it can "
                    "never be released; bind it (and release it) or use "
                    "a plain np.empty")
