"""``no-unbounded-wait`` — serving/store blocking calls carry finite timeouts.

PR 8's lifecycle-robustness contract is that no request, supervisor thread
or store client ever stalls forever: deadlines bound requests, heartbeats
bound workers, and socket timeouts bound the store protocol.  One naked
``.wait()`` / ``.poll()`` / ``.recv()`` / ``.join()`` (or an explicit
``settimeout(None)``) quietly re-introduces the unbounded stall all of that
machinery exists to kill — and it reads exactly like the bounded version,
so review misses it.  This rule flags every such call in the serving stack
(``src/repro/serving/``) and the store service, the two places where a
stall strands callers.

What counts as unbounded:

* ``x.wait()`` / ``x.poll()`` / ``x.join()`` with no positional argument
  and no ``timeout=`` keyword — or with a literal ``None`` in either spot;
* ``x.recv()`` with no arguments (``multiprocessing.Connection.recv`` has
  no timeout parameter at all — guard it with a bounded ``poll`` and waive
  the recv with ``# repro: noqa[no-unbounded-wait]``; ``socket.recv``
  takes a buffer size and is bounded by the socket timeout);
* ``x.settimeout(None)`` — switching a socket back to blocking mode.

A dynamic timeout expression is trusted (the rule cannot prove it finite);
the point is to catch the *syntactically* unbounded calls that dominate
real stall bugs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..lint import FileContext, FileRule, Finding

#: Methods whose no-timeout form blocks forever.
BLOCKING_METHODS = ("wait", "poll", "join", "recv")

#: Path scope: the serving stack and the store service (suffix/substring
#: match so fixture trees in tests can mirror the layout).
def _in_scope(rel: str) -> bool:
    return "repro/serving/" in rel or rel.endswith("store_service.py")


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class NoUnboundedWait(FileRule):
    name = "no-unbounded-wait"
    description = ("blocking .wait()/.poll()/.recv()/.join()/"
                   "settimeout(None) without a finite timeout in "
                   "repro/serving/ or store_service.py")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            timeout_kw = next((kw.value for kw in node.keywords
                               if kw.arg == "timeout"), None)
            if method == "settimeout":
                if node.args and _is_none(node.args[0]):
                    yield ctx.finding(
                        node, self.name,
                        "`settimeout(None)` makes the socket block forever;"
                        " use a finite timeout from repro.config")
            elif method == "recv":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node, self.name,
                        "`.recv()` with no timeout can stall forever; guard"
                        " it with a bounded `.poll(t)` and waive with"
                        " `# repro: noqa[no-unbounded-wait]`")
            elif method in BLOCKING_METHODS:
                unbounded = (not node.args and timeout_kw is None) or \
                    (node.args and _is_none(node.args[0])) or \
                    _is_none(timeout_kw)
                if unbounded:
                    yield ctx.finding(
                        node, self.name,
                        f"`.{method}()` without a finite timeout can stall "
                        f"forever; pass a bounded timeout (see the "
                        f"repro.config serving/store knobs)")
