"""``rng-discipline`` — no NumPy global-stream RNG calls in library code.

The serving fleet's determinism contract (the full precision-label stream
is a function of ``(seed, submission order, max_batch)``, asserted across
worker counts and respawns) holds only because every draw comes from an
explicitly seeded ``numpy.random.Generator`` plumbed to where it is used.
One ``np.random.shuffle`` in library code couples results to global
interpreter state — whichever module seeded (or forgot to seed) the legacy
stream last — and breaks replay silently.  This rule flags any reference
to ``numpy.random.<fn>`` that is not explicit-generator plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..lint import FileContext, FileRule, Finding, resolve_name

#: numpy.random attributes that ARE the explicit-generator discipline.
ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "RandomState",      # a seeded instance, not the global stream
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


class RngDiscipline(FileRule):
    name = "rng-discipline"
    description = ("numpy global-stream RNG use (np.random.<fn>); plumb a "
                   "seeded np.random.default_rng Generator instead")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = resolve_name(node, ctx.imports)
                if (resolved and resolved.startswith("numpy.random.")
                        and resolved.count(".") == 2):
                    attr = resolved.rsplit(".", 1)[1]
                    if attr not in ALLOWED:
                        yield ctx.finding(
                            node, self.name,
                            f"`{resolved}` draws from the global NumPy "
                            f"stream; use a seeded default_rng Generator "
                            f"(fleet determinism depends on it)")
            elif isinstance(node, ast.ImportFrom) \
                    and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name != "*" and alias.name not in ALLOWED:
                        yield ctx.finding(
                            node, self.name,
                            f"`from numpy.random import {alias.name}` binds "
                            f"a global-stream function; use a seeded "
                            f"default_rng Generator")
