"""``fork-safety`` — no import-time threads/sockets in fleet-worker modules.

:mod:`repro.serving.fleet` forks its workers (the model is inherited, never
pickled), so a child begins life with a copy of *every module the parent
imported*.  A thread started at import time exists only in the parent
after fork — the child inherits a lock that may be held forever, a
"running" thread object that isn't, or a socket FD shared byte-stream and
all.  These bugs surface as rare worker hangs during chaos respawns, the
least debuggable failure mode the fleet has.

This rule computes the transitive *module-level* import closure of the
fleet module (function-local imports don't execute at import time) and
flags any statement in that closure that constructs a thread, lock,
socket, pool or executor at import time.  Class bodies count (they execute
at import); ``def`` bodies don't.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..lint import (FileContext, Finding, ProjectRule, collect_imports,
                    resolve_name, walk_import_time)

#: Fully-resolved callables that must not run at import time in worker
#: modules.  (`multiprocessing.*` constructors are included: building a
#: Pool at import time in a module the fleet imports would fork from a
#: fork.)
BANNED_CALLS = {
    "threading.Thread",
    "threading.Timer",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "threading.local",
    "socket.socket",
    "socket.create_connection",
    "socket.create_server",
    "socket.socketpair",
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "multiprocessing.Queue",
    "multiprocessing.SimpleQueue",
    "multiprocessing.JoinableQueue",
    "multiprocessing.Manager",
    "multiprocessing.Lock",
    "multiprocessing.Event",
    "multiprocessing.Pipe",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
}

#: The fleet module is identified by suffix so test fixture trees
#: (``pkg/serving/fleet.py``) exercise the rule without a full repro tree.
ROOT_SUFFIX = ".serving.fleet"


class ForkSafety(ProjectRule):
    name = "fork-safety"
    description = ("import-time thread/lock/socket/pool construction in a "
                   "module the fork-start fleet workers inherit")

    # -- import closure ----------------------------------------------------

    @staticmethod
    def _module_level_imports(ctx: FileContext) -> List[ast.AST]:
        return [node for node in walk_import_time(ctx.tree)
                if isinstance(node, (ast.Import, ast.ImportFrom))]

    @staticmethod
    def _resolve_targets(node: ast.AST, ctx: FileContext,
                         modules: Set[str]) -> Set[str]:
        """Project-internal modules this import statement loads."""
        found: Set[str] = set()

        def note(dotted: str) -> None:
            if dotted in modules:
                found.add(dotted)

        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                for i in range(1, len(parts) + 1):
                    note(".".join(parts[:i]))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative: resolve against this module's package.
                package = ctx.module.split(".")
                if not ctx.path.name == "__init__.py":
                    package = package[:-1]
                if node.level > 1:
                    package = package[: -(node.level - 1)] or []
                base = ".".join(package)
            else:
                base = node.module or ""
            if node.level and node.module:
                base = f"{base}.{node.module}" if base else node.module
            if base:
                parts = base.split(".")
                for i in range(1, len(parts) + 1):
                    note(".".join(parts[:i]))
            for alias in node.names:
                if alias.name != "*" and base:
                    note(f"{base}.{alias.name}")
        return found

    def _closure(self, files: Dict[str, FileContext]) -> Set[str]:
        modules = set(files)
        roots = [m for m in modules if m.endswith(ROOT_SUFFIX)]
        closure: Set[str] = set()
        frontier = list(roots)
        while frontier:
            module = frontier.pop()
            if module in closure or module not in files:
                continue
            closure.add(module)
            # Importing pkg.sub executes pkg/__init__.py too.
            parts = module.split(".")
            for i in range(1, len(parts)):
                parent = ".".join(parts[:i])
                if parent in modules and parent not in closure:
                    frontier.append(parent)
            ctx = files[module]
            for node in self._module_level_imports(ctx):
                for target in self._resolve_targets(node, ctx, modules):
                    if target not in closure:
                        frontier.append(target)
        return closure

    # -- check -------------------------------------------------------------

    def check_project(self, files: Dict[str, FileContext]
                      ) -> Iterable[Finding]:
        closure = self._closure(files)
        for module in sorted(closure):
            ctx = files[module]
            for node in walk_import_time(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve_name(node.func, ctx.imports)
                if resolved in BANNED_CALLS:
                    yield ctx.finding(
                        node, self.name,
                        f"`{resolved}(...)` runs at import time in a module "
                        f"the fork-start fleet workers inherit; construct "
                        f"it lazily (inside a function) instead")
