"""Repo-specific lint rules (one module per rule).

Each module exposes one :class:`~repro.analysis.lint.Rule` subclass;
``ALL_RULES`` is the engine's default rule set, in the order findings are
documented in the README rule table.
"""

from .config_discipline import ConfigDiscipline
from .rng_discipline import RngDiscipline
from .workspace_pairing import WorkspacePairing
from .fork_safety import ForkSafety
from .time_seed import TimeSeed
from .no_unbounded_wait import NoUnboundedWait
from .atomic_write_discipline import AtomicWriteDiscipline

__all__ = ["ALL_RULES", "rule_table", "ConfigDiscipline", "RngDiscipline",
           "WorkspacePairing", "ForkSafety", "TimeSeed", "NoUnboundedWait",
           "AtomicWriteDiscipline"]

ALL_RULES = (
    ConfigDiscipline(),
    RngDiscipline(),
    WorkspacePairing(),
    ForkSafety(),
    TimeSeed(),
    NoUnboundedWait(),
    AtomicWriteDiscipline(),
)


def rule_table() -> str:
    """``--list-rules`` output: one ``name: description`` line per rule."""
    width = max(len(rule.name) for rule in ALL_RULES)
    return "\n".join(f"{rule.name:<{width}}  {rule.description}"
                     for rule in ALL_RULES)
