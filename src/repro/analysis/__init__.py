"""``repro.analysis`` — repo-invariant static analysis.

Three layers (see ISSUE/README for the workflow):

* :mod:`repro.analysis.lint` — a visitor-based AST lint engine running the
  repo-specific rules in :mod:`repro.analysis.rules` (config discipline,
  RNG discipline, workspace pairing, fork safety, naked time seeds), with
  ``# repro: noqa[rule]`` waivers and a committed fingerprint baseline.
* :mod:`repro.analysis.abi` — the ctypes ↔ C cross-checker that keeps
  ``conv.c``'s exported prototypes and ``build.py``'s ``argtypes`` /
  ``restype`` declarations in lockstep (arity, widths, const-ness digest,
  ABI-version handshake).
* The sanitizer build mode lives with the build machinery itself
  (``REPRO_NN_NATIVE_SANITIZE`` in :mod:`repro.nn.native.build`); CI's
  ``sanitize`` leg runs the native parity suites under it.

``python -m repro.analysis`` runs the whole pass (text or ``--json``,
exit code 1 on findings); ``tests/test_static_analysis.py`` enforces a
clean tree in the fast tier.  This package imports only the standard
library — linting must work on boxes without NumPy.
"""

from .lint import (Finding, FileContext, FileRule, LintEngine, ProjectRule,
                   Rule, apply_baseline, load_baseline, write_baseline)
from .abi import check_abi, signature_digest
from .rules import ALL_RULES, rule_table

__all__ = [
    "Finding",
    "FileContext",
    "FileRule",
    "ProjectRule",
    "Rule",
    "LintEngine",
    "ALL_RULES",
    "rule_table",
    "check_abi",
    "signature_digest",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "DEFAULT_BASELINE",
    "default_root",
]

from pathlib import Path

#: The committed baseline ships inside the package so the CLI and the
#: tier-1 test agree on it regardless of the working directory.
DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")


def default_root() -> Path:
    """The tree the pass scans by default: the installed ``repro`` package."""
    return Path(__file__).resolve().parent.parent
