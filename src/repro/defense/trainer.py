"""Plain (natural) training loop and accuracy evaluation utilities.

Both trainers (this one and :class:`repro.defense.adversarial.
AdversarialTrainer`) share the durable fit loop in :func:`fit_loop`: when a
checkpoint manager resolves (``fit(checkpoint=...)`` or ``REPRO_CKPT_DIR``),
training becomes crash-durable — atomic checkpoints, bit-identical resume,
divergence sentinels with bounded rollback (see :mod:`repro.checkpoint`).
Without one, ``fit`` runs the historical loader loop untouched.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import checkpoint as ckpt
from .. import config as repro_config
from .. import faults
from ..checkpoint import DivergenceError
from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.optim import SGD, MultiStepLR
from ..nn.tensor import Tensor, no_grad
from ..data.loaders import DataLoader

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer", "DivergenceError",
           "evaluate_accuracy", "fit_loop", "global_grad_norm"]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by natural and adversarial training."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    lr_milestones: tuple = ()
    lr_gamma: float = 0.1
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by the trainers."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    epochs_completed: int = 0

    def record(self, loss: float, accuracy: float) -> None:
        self.train_loss.append(loss)
        self.train_accuracy.append(accuracy)
        self.epochs_completed += 1


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                      batch_size: int = 256, session=None) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)`` without building a graph.

    With ``session`` (a :class:`repro.inference.InferenceSession`) the
    evaluation runs through the session's compiled plan at the model's
    current execution precision — the path every repeated-evaluation caller
    (``repro.core``, the experiment harnesses) uses.  Without one, this is
    the plain live-module eval loop, kept as the parity reference.
    """
    if len(x) == 0:
        return 0.0
    if session is not None:
        return session.accuracy(x, y, batch_size=batch_size)
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            logits = model(Tensor(x[start:start + batch_size]))
            correct += int((logits.data.argmax(axis=1)
                            == y[start:start + batch_size]).sum())
            del logits
            nn_workspace.end_step()
    model.train(was_training)
    return correct / len(x)


class Trainer:
    """Standard (non-adversarial) SGD training of a classifier."""

    def __init__(self, model: Module, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.scheduler = (MultiStepLR(self.optimizer, self.config.lr_milestones,
                                      self.config.lr_gamma)
                          if self.config.lr_milestones else None)
        self.rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """One optimisation step on a raw mini-batch."""
        faults.fault_point("train.batch")
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        self.optimizer.step()
        accuracy = float((logits.data.argmax(axis=1) == y).mean())
        metrics = {"loss": loss.item(), "accuracy": accuracy}
        del logits, loss
        nn_workspace.end_step()
        return metrics

    def train_epoch(self, loader: DataLoader) -> Dict[str, float]:
        losses, accuracies = [], []
        for x, y in loader:
            metrics = self.train_batch(x, y)
            losses.append(metrics["loss"])
            accuracies.append(metrics["accuracy"])
        epoch_loss = float(np.mean(losses)) if losses else 0.0
        epoch_accuracy = float(np.mean(accuracies)) if accuracies else 0.0
        self.history.record(epoch_loss, epoch_accuracy)
        if self.scheduler is not None:
            self.scheduler.step()
        return {"loss": epoch_loss, "accuracy": epoch_accuracy}

    # ------------------------------------------------------------------
    # Durable-training hooks (see repro.checkpoint)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict:
        """Subclass-extensible state carried inside training checkpoints."""
        return {}

    def load_extra_state(self, extra: Dict) -> None:
        pass

    def fit(self, x: np.ndarray, y: np.ndarray,
            epochs: Optional[int] = None, resume: bool = False,
            checkpoint=None) -> TrainingHistory:
        """Train for ``epochs`` epochs (durably, if checkpointing resolves).

        ``checkpoint`` may be a :class:`repro.checkpoint.CheckpointManager`
        or a directory path; with neither, ``REPRO_CKPT_DIR`` decides.  When
        no manager resolves, this is the historical in-memory loop,
        byte-identical to pre-durability behavior.  ``resume=True`` restores
        the newest readable checkpoint and continues bit-identically.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        manager = ckpt.resolve_manager(checkpoint)
        if manager is None:
            if resume:
                raise ValueError(
                    "resume=True needs a checkpoint directory: pass "
                    "checkpoint=... or set REPRO_CKPT_DIR")
            loader = DataLoader(x, y, batch_size=self.config.batch_size,
                                shuffle=True, rng=self.rng)
            for _ in range(epochs):
                self.train_epoch(loader)
            return self.history
        return fit_loop(self, x, y, epochs, manager, resume=resume)


# ---------------------------------------------------------------------------
# Shared durable fit loop
# ---------------------------------------------------------------------------

def global_grad_norm(params) -> float:
    """L2 norm over the concatenation of every parameter gradient."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            flat = param.grad.ravel()
            total += float(np.dot(flat, flat))
    return math.sqrt(total)


def fit_loop(trainer, x: np.ndarray, y: np.ndarray, epochs: int,
             manager: "ckpt.CheckpointManager",
             resume: bool = False) -> TrainingHistory:
    """The durable training loop shared by both trainer hierarchies.

    Replays the exact rng call sequence of the legacy ``DataLoader`` path
    (one ``arange`` + ``shuffle`` per epoch on the trainer rng, batches
    sliced in order, no drop-last), so a durable uninterrupted run is
    bit-identical to the historical loop.  On top of that it adds:

    * a checkpoint every ``REPRO_CKPT_EVERY_STEPS`` optimiser steps (0 =
      epoch boundaries only) and at every epoch boundary;
    * resume from the newest readable checkpoint (``resume=True``), which
      restores weights, optimizer scratch state, schedule position, rng
      stream, history, and the mid-epoch permutation + offset;
    * divergence sentinels: a tripping batch rolls the trainer back to the
      last snapshot; a batch that trips twice is skipped deterministically;
      more than ``REPRO_TRAIN_ROLLBACK_BUDGET`` rollbacks raise
      :class:`DivergenceError`.
    """
    cfg = trainer.config
    every = repro_config.ckpt_every_steps()
    budget = repro_config.train_rollback_budget()
    sentinel = ckpt.DivergenceSentinel()
    n = len(x)

    step = 0
    epoch = 0
    perm: Optional[np.ndarray] = None
    start_index = 0
    epoch_losses: List[float] = []
    epoch_accs: List[float] = []
    # Rollback bookkeeping survives rollbacks by design: restoring a
    # snapshot must not forget that the rollback happened.
    rollbacks = 0
    skip: set = set()          # (epoch, start) ordinals skipped for good
    tripped: set = set()       # ordinals that caused one rollback already

    def snapshot() -> Dict:
        payload = ckpt.capture_training_state(trainer)
        payload.update({
            "step": step,
            "epoch": epoch,
            "perm": None if perm is None else perm.copy(),
            "next_start": start_index,
            "epoch_losses": list(epoch_losses),
            "epoch_accs": list(epoch_accs),
            "rollbacks": rollbacks,
            "skip": sorted(skip),
            "tripped": sorted(tripped),
            "sentinel": sentinel.state_dict(),
            "num_examples": n,
        })
        return payload

    def restore(snap: Dict) -> None:
        nonlocal step, epoch, perm, start_index, epoch_losses, epoch_accs
        ckpt.restore_training_state(trainer, snap)
        step = int(snap["step"])
        epoch = int(snap["epoch"])
        perm = None if snap["perm"] is None else np.array(snap["perm"])
        start_index = int(snap["next_start"])
        epoch_losses = list(snap["epoch_losses"])
        epoch_accs = list(snap["epoch_accs"])
        sentinel.load_state_dict(snap["sentinel"])

    if resume:
        payload = manager.load_latest()
        if payload is not None:
            if payload.get("num_examples") != n:
                raise ValueError(
                    f"checkpoint in {manager.directory} was taken from a "
                    f"dataset of {payload.get('num_examples')} examples, "
                    f"not {n}; refusing to resume across datasets")
            restore(payload)
            rollbacks = int(payload["rollbacks"])
            skip = set(tuple(o) for o in payload["skip"])
            tripped = set(tuple(o) for o in payload.get("tripped", []))

    last_snapshot = snapshot()

    while epoch < epochs:
        if perm is None:
            # Same rng call sequence as DataLoader.__iter__ with shuffle=True.
            perm = np.arange(n)
            trainer.rng.shuffle(perm)
            start_index = 0
            epoch_losses = []
            epoch_accs = []
        rolled_back = False
        while start_index < n:
            ordinal = (epoch, start_index)
            if ordinal in skip:
                start_index += cfg.batch_size
                continue
            faults.fault_point("train.data.next")
            batch = perm[start_index:start_index + cfg.batch_size]
            metrics = trainer.train_batch(x[batch], y[batch])
            step += 1
            reason = sentinel.observe(
                metrics["loss"], global_grad_norm(trainer.optimizer.params))
            if reason is not None:
                rollbacks += 1
                if rollbacks > budget:
                    raise DivergenceError(
                        f"training diverged at epoch {epoch} step {step} "
                        f"({reason}) and the rollback budget of {budget} "
                        f"is exhausted")
                warnings.warn(
                    f"divergence sentinel tripped at epoch {epoch} step "
                    f"{step} ({reason}); rolling back to the last "
                    f"checkpoint (rollback {rollbacks}/{budget})",
                    stacklevel=2)
                if ordinal in tripped:
                    # Deterministic recurrence: the replay hit the same wall,
                    # so skip this batch for the rest of the run.
                    skip.add(ordinal)
                else:
                    tripped.add(ordinal)
                restore(last_snapshot)
                rolled_back = True
                break
            epoch_losses.append(metrics["loss"])
            epoch_accs.append(metrics["accuracy"])
            start_index += cfg.batch_size
            if every and step % every == 0:
                last_snapshot = snapshot()
                manager.save(step, last_snapshot)
        if rolled_back:
            continue
        # Epoch boundary: record history exactly like train_epoch does, then
        # persist (the pre-shuffle rng state makes the replayed shuffle of
        # the next epoch identical).
        epoch_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
        epoch_acc = float(np.mean(epoch_accs)) if epoch_accs else 0.0
        trainer.history.record(epoch_loss, epoch_acc)
        if trainer.scheduler is not None:
            trainer.scheduler.step()
        epoch += 1
        perm = None
        start_index = 0
        epoch_losses = []
        epoch_accs = []
        last_snapshot = snapshot()
        manager.save(step, last_snapshot)
    return trainer.history
