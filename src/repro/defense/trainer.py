"""Plain (natural) training loop and accuracy evaluation utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.optim import SGD, MultiStepLR
from ..nn.tensor import Tensor, no_grad
from ..data.loaders import DataLoader

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer", "evaluate_accuracy"]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by natural and adversarial training."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    lr_milestones: tuple = ()
    lr_gamma: float = 0.1
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by the trainers."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    epochs_completed: int = 0

    def record(self, loss: float, accuracy: float) -> None:
        self.train_loss.append(loss)
        self.train_accuracy.append(accuracy)
        self.epochs_completed += 1


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                      batch_size: int = 256, session=None) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)`` without building a graph.

    With ``session`` (a :class:`repro.inference.InferenceSession`) the
    evaluation runs through the session's compiled plan at the model's
    current execution precision — the path every repeated-evaluation caller
    (``repro.core``, the experiment harnesses) uses.  Without one, this is
    the plain live-module eval loop, kept as the parity reference.
    """
    if len(x) == 0:
        return 0.0
    if session is not None:
        return session.accuracy(x, y, batch_size=batch_size)
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            logits = model(Tensor(x[start:start + batch_size]))
            correct += int((logits.data.argmax(axis=1)
                            == y[start:start + batch_size]).sum())
            del logits
            nn_workspace.end_step()
    model.train(was_training)
    return correct / len(x)


class Trainer:
    """Standard (non-adversarial) SGD training of a classifier."""

    def __init__(self, model: Module, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.scheduler = (MultiStepLR(self.optimizer, self.config.lr_milestones,
                                      self.config.lr_gamma)
                          if self.config.lr_milestones else None)
        self.rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """One optimisation step on a raw mini-batch."""
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        self.optimizer.step()
        accuracy = float((logits.data.argmax(axis=1) == y).mean())
        metrics = {"loss": loss.item(), "accuracy": accuracy}
        del logits, loss
        nn_workspace.end_step()
        return metrics

    def train_epoch(self, loader: DataLoader) -> Dict[str, float]:
        losses, accuracies = [], []
        for x, y in loader:
            metrics = self.train_batch(x, y)
            losses.append(metrics["loss"])
            accuracies.append(metrics["accuracy"])
        epoch_loss = float(np.mean(losses)) if losses else 0.0
        epoch_accuracy = float(np.mean(accuracies)) if accuracies else 0.0
        self.history.record(epoch_loss, epoch_accuracy)
        if self.scheduler is not None:
            self.scheduler.step()
        return {"loss": epoch_loss, "accuracy": epoch_accuracy}

    def fit(self, x: np.ndarray, y: np.ndarray,
            epochs: Optional[int] = None) -> TrainingHistory:
        epochs = epochs if epochs is not None else self.config.epochs
        loader = DataLoader(x, y, batch_size=self.config.batch_size,
                            shuffle=True, rng=self.rng)
        for _ in range(epochs):
            self.train_epoch(loader)
        return self.history
