"""Training loops: natural training and the paper's adversarial-training baselines."""

from .adversarial import ADVERSARIAL_METHODS, AdversarialConfig, AdversarialTrainer
from .trainer import Trainer, TrainingConfig, TrainingHistory, evaluate_accuracy

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "evaluate_accuracy",
    "AdversarialConfig",
    "AdversarialTrainer",
    "ADVERSARIAL_METHODS",
]
