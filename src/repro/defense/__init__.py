"""Training loops: natural training and the paper's adversarial-training baselines."""

from .adversarial import ADVERSARIAL_METHODS, AdversarialConfig, AdversarialTrainer
from .trainer import (DivergenceError, Trainer, TrainingConfig,
                      TrainingHistory, evaluate_accuracy, fit_loop)

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "evaluate_accuracy",
    "fit_loop",
    "DivergenceError",
    "AdversarialConfig",
    "AdversarialTrainer",
    "ADVERSARIAL_METHODS",
]
