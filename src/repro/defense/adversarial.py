"""Adversarial training methods used as baselines in the paper (Sec. 4.1).

Four methods are implemented, matching the paper's baseline set:

* **FGSM** adversarial training (Goodfellow et al.) — single-step examples.
* **FGSM-RS** (Wong et al., "Fast is better than free") — random start plus a
  single 1.25·ε step.
* **PGD-7** (Madry et al.) — 7-step PGD inner maximisation.
* **Free** (Shafahi et al.) — replays each mini-batch ``m`` times, reusing and
  updating a persistent perturbation while also updating the weights.

Each method is exposed through :class:`AdversarialTrainer`, which the RPS
trainer in :mod:`repro.core.rps` wraps with its per-iteration random precision
switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import checkpoint as ckpt
from .. import faults
from ..attacks.base import input_gradient
from ..data.loaders import DataLoader
from ..nn import functional as F
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.optim import SGD, MultiStepLR
from ..nn.tensor import Tensor
from .trainer import TrainingConfig, TrainingHistory, fit_loop

__all__ = ["AdversarialConfig", "AdversarialTrainer", "ADVERSARIAL_METHODS"]

ADVERSARIAL_METHODS = ("natural", "fgsm", "fgsm_rs", "pgd", "free")


@dataclass
class AdversarialConfig(TrainingConfig):
    """Training hyper-parameters plus inner-maximisation settings."""

    method: str = "pgd"
    epsilon: float = 8.0 / 255.0
    attack_steps: int = 7          # PGD inner steps (the paper's PGD-7)
    attack_alpha: Optional[float] = None
    free_replays: int = 4          # m in Free adversarial training

    def __post_init__(self) -> None:
        if self.method not in ADVERSARIAL_METHODS:
            raise ValueError(f"unknown adversarial training method {self.method!r}; "
                             f"choose from {ADVERSARIAL_METHODS}")

    @property
    def alpha(self) -> float:
        if self.attack_alpha is not None:
            return self.attack_alpha
        if self.method == "fgsm_rs":
            return 1.25 * self.epsilon
        if self.method == "pgd":
            return max(self.epsilon / 4.0, 2.0 / 255.0)
        return self.epsilon


class AdversarialTrainer:
    """Adversarial training with a pluggable inner maximisation."""

    def __init__(self, model: Module, config: Optional[AdversarialConfig] = None) -> None:
        self.model = model
        self.config = config or AdversarialConfig()
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.scheduler = (MultiStepLR(self.optimizer, self.config.lr_milestones,
                                      self.config.lr_gamma)
                          if self.config.lr_milestones else None)
        self.rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()
        # Persistent perturbation for Free adversarial training.
        self._free_delta: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Inner maximisation
    # ------------------------------------------------------------------
    def generate_adversarial(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Craft training-time adversarial examples with the configured method."""
        cfg = self.config
        if cfg.method == "natural":
            return x
        if cfg.method == "fgsm":
            grad = input_gradient(self.model, x, y)
            return self._project(x, x + cfg.epsilon * np.sign(grad), cfg.epsilon)
        if cfg.method == "fgsm_rs":
            delta = self.rng.uniform(-cfg.epsilon, cfg.epsilon,
                                     size=x.shape).astype(np.float32)
            x_adv = self._project(x, x + delta, cfg.epsilon)
            grad = input_gradient(self.model, x_adv, y)
            return self._project(x, x_adv + cfg.alpha * np.sign(grad), cfg.epsilon)
        if cfg.method == "pgd":
            # Deliberately kept inline rather than delegating to
            # attacks.base.Attack._descend: the trainer's inner maximisation
            # draws its start noise from the trainer's own seeded rng stream
            # (reproducibility of recorded training trajectories), which an
            # Attack instance with its own rng would change.
            delta = self.rng.uniform(-cfg.epsilon, cfg.epsilon,
                                     size=x.shape).astype(np.float32)
            # clamp-to-ball + clamp-to-box folds into one interval clamp.
            lo = np.maximum(x - cfg.epsilon, 0.0).astype(np.float32)
            hi = np.minimum(x + cfg.epsilon, 1.0).astype(np.float32)
            x_adv = np.clip(x + delta, lo, hi)
            for _ in range(cfg.attack_steps):
                grad = input_gradient(self.model, x_adv, y)
                np.sign(grad, out=grad)
                grad *= cfg.alpha
                x_adv += grad
                np.clip(x_adv, lo, hi, out=x_adv)
            return x_adv
        if cfg.method == "free":
            # Handled inside train_batch (needs weight updates per replay).
            raise RuntimeError("Free adversarial training generates examples "
                               "inside train_batch")
        raise ValueError(f"unknown method {cfg.method!r}")

    @staticmethod
    def _project_delta(delta: np.ndarray, epsilon: float) -> np.ndarray:
        return np.clip(delta, -epsilon, epsilon)

    @staticmethod
    def _project(x: np.ndarray, x_adv: np.ndarray,
                 epsilon: Optional[float] = None) -> np.ndarray:
        if epsilon is not None:
            x_adv = np.clip(x_adv, x - epsilon, x + epsilon)
        return np.clip(x_adv, 0.0, 1.0).astype(np.float32)

    # ------------------------------------------------------------------
    # Optimisation steps
    # ------------------------------------------------------------------
    def _weight_step(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        self.optimizer.step()
        accuracy = float((logits.data.argmax(axis=1) == y).mean())
        return {"loss": loss.item(), "accuracy": accuracy}

    def _train_batch_free(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        cfg = self.config
        if self._free_delta is None or self._free_delta.shape != x.shape:
            self._free_delta = np.zeros_like(x)
        metrics: Dict[str, float] = {"loss": 0.0, "accuracy": 0.0}
        for _ in range(cfg.free_replays):
            x_adv = self._project(x, x + self._free_delta)
            # Simultaneously obtain weight and input gradients.
            self.optimizer.zero_grad()
            x_t = Tensor(x_adv, requires_grad=True)
            logits = self.model(x_t)
            loss = F.cross_entropy(logits, y)
            loss.backward()
            self.optimizer.step()
            # Ascend the perturbation with the input gradient of the same pass.
            self._free_delta = self._project_delta(
                self._free_delta + cfg.epsilon * np.sign(x_t.grad), cfg.epsilon)
            metrics["loss"] += loss.item() / cfg.free_replays
            metrics["accuracy"] += float(
                (logits.data.argmax(axis=1) == y).mean()) / cfg.free_replays
        return metrics

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        faults.fault_point("train.batch")
        self.model.train()
        try:
            if self.config.method == "free":
                return self._train_batch_free(x, y)
            x_adv = self.generate_adversarial(x, y)
            return self._weight_step(x_adv, y)
        finally:
            # Step boundary: the batch's forward/backward graphs are dead, so
            # the workspace arena may recycle their scratch buffers.
            nn_workspace.end_step()

    def train_epoch(self, loader: DataLoader) -> Dict[str, float]:
        losses, accuracies = [], []
        for x, y in loader:
            metrics = self.train_batch(x, y)
            losses.append(metrics["loss"])
            accuracies.append(metrics["accuracy"])
        epoch_loss = float(np.mean(losses)) if losses else 0.0
        epoch_accuracy = float(np.mean(accuracies)) if accuracies else 0.0
        self.history.record(epoch_loss, epoch_accuracy)
        if self.scheduler is not None:
            self.scheduler.step()
        return {"loss": epoch_loss, "accuracy": epoch_accuracy}

    # ------------------------------------------------------------------
    # Durable-training hooks (see repro.checkpoint)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict:
        """Free training's persistent perturbation rides in checkpoints so a
        resumed Free run replays the exact same ascent trajectory."""
        return {"free_delta": (None if self._free_delta is None
                               else self._free_delta.copy())}

    def load_extra_state(self, extra: Dict) -> None:
        delta = extra.get("free_delta")
        self._free_delta = None if delta is None else np.array(delta, copy=True)

    def fit(self, x: np.ndarray, y: np.ndarray,
            epochs: Optional[int] = None, resume: bool = False,
            checkpoint=None) -> TrainingHistory:
        """Adversarially train; durable when a checkpoint manager resolves
        (same semantics as :meth:`repro.defense.trainer.Trainer.fit`)."""
        epochs = epochs if epochs is not None else self.config.epochs
        manager = ckpt.resolve_manager(checkpoint)
        if manager is None:
            if resume:
                raise ValueError(
                    "resume=True needs a checkpoint directory: pass "
                    "checkpoint=... or set REPRO_CKPT_DIR")
            loader = DataLoader(x, y, batch_size=self.config.batch_size,
                                shuffle=True, rng=self.rng)
            for _ in range(epochs):
                self.train_epoch(loader)
            return self.history
        return fit_loop(self, x, y, epochs, manager, resume=resume)
