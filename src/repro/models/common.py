"""Shared building blocks for the model zoo.

Every model in :mod:`repro.models` is *quantisation-aware* (convolutions and
fully-connected layers are :class:`QuantConv2d` / :class:`QuantLinear`) and
optionally *switchable-BN-equipped*: when a candidate precision set is passed
at construction time, every normalisation layer becomes a
:class:`SwitchableBatchNorm2d` with one branch per precision — the model
structure required by RPS training (Alg. 1, line 2).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..nn.layers import BatchNorm2d, SwitchableBatchNorm2d
from ..nn.module import Module
from ..quantization import PrecisionSet, QuantConv2d, QuantLinear

__all__ = ["NormFactory", "make_norm_factory", "conv3x3", "conv1x1"]

NormFactory = Callable[[int], Module]


def make_norm_factory(precisions: Optional[PrecisionSet]) -> NormFactory:
    """Return a factory producing BN (no precisions) or SBN (with precisions)."""
    if precisions is None:
        return lambda channels: BatchNorm2d(channels)
    keys = list(precisions.keys)
    return lambda channels: SwitchableBatchNorm2d(channels, precisions=keys)


def conv3x3(in_channels: int, out_channels: int, stride: int = 1,
            rng: Optional[np.random.Generator] = None) -> QuantConv2d:
    return QuantConv2d(in_channels, out_channels, kernel_size=3, stride=stride,
                       padding=1, bias=False, rng=rng)


def conv1x1(in_channels: int, out_channels: int, stride: int = 1,
            rng: Optional[np.random.Generator] = None) -> QuantConv2d:
    return QuantConv2d(in_channels, out_channels, kernel_size=1, stride=stride,
                       padding=0, bias=False, rng=rng)
