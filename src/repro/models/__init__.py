"""Quantisation-aware model zoo covering the paper's six evaluated networks."""

from .alexnet import AlexNet, alexnet
from .preact_resnet import PreActBlock, PreActResNet, preact_resnet18
from .registry import MODEL_BUILDERS, available_models, build_model
from .resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet50
from .vgg import VGG, VGG_CONFIGS, vgg11, vgg16
from .wide_resnet import WideBasicBlock, WideResNet, wide_resnet32

__all__ = [
    "PreActBlock",
    "PreActResNet",
    "preact_resnet18",
    "WideBasicBlock",
    "WideResNet",
    "wide_resnet32",
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet50",
    "AlexNet",
    "alexnet",
    "VGG",
    "VGG_CONFIGS",
    "vgg11",
    "vgg16",
    "MODEL_BUILDERS",
    "build_model",
    "available_models",
]
