"""Model registry: build any evaluated network by name.

The registry maps the six network names used in the paper's evaluation onto
their constructors.  ``build_model`` accepts a ``scale`` argument mapping to
each family's width parameter so tests and benchmarks can use fast, narrow
instances while examples can request larger ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..nn.module import Module
from ..quantization import PrecisionSet
from .alexnet import alexnet
from .preact_resnet import preact_resnet18
from .resnet import resnet18, resnet50
from .vgg import vgg16
from .wide_resnet import wide_resnet32

__all__ = ["MODEL_BUILDERS", "build_model", "available_models"]


def _build_preact_resnet18(num_classes, precisions, scale, seed):
    return preact_resnet18(num_classes=num_classes, width=scale,
                           precisions=precisions, seed=seed)


def _build_wide_resnet32(num_classes, precisions, scale, seed):
    return wide_resnet32(num_classes=num_classes, base_width=max(scale // 2, 4),
                         widen_factor=2, precisions=precisions, seed=seed)


def _build_resnet18(num_classes, precisions, scale, seed):
    return resnet18(num_classes=num_classes, width=scale, precisions=precisions,
                    seed=seed)


def _build_resnet50(num_classes, precisions, scale, seed):
    return resnet50(num_classes=num_classes, width=scale, precisions=precisions,
                    imagenet_stem=False, seed=seed)


def _build_alexnet(num_classes, precisions, scale, seed):
    return alexnet(num_classes=num_classes, width=scale, precisions=precisions,
                   seed=seed)


def _build_vgg16(num_classes, precisions, scale, seed):
    return vgg16(num_classes=num_classes, width=scale, precisions=precisions,
                 seed=seed)


MODEL_BUILDERS: Dict[str, Callable[..., Module]] = {
    "preact_resnet18": _build_preact_resnet18,
    "wide_resnet32": _build_wide_resnet32,
    "resnet18": _build_resnet18,
    "resnet50": _build_resnet50,
    "alexnet": _build_alexnet,
    "vgg16": _build_vgg16,
}


def available_models() -> list:
    return sorted(MODEL_BUILDERS)


def build_model(name: str, num_classes: int = 10,
                precisions: Optional[PrecisionSet] = None, scale: int = 16,
                seed: int = 0) -> Module:
    """Build a registered model.

    ``scale`` sets the base channel width (the canonical networks use 64);
    ``precisions`` equips the model with switchable batch norm for RPS.
    """
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_BUILDERS[name](num_classes, precisions, scale, seed)
