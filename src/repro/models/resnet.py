"""Post-activation ResNets (ResNet-18 / ResNet-50) — the ImageNet backbones."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import AdaptiveAvgPool2d, MaxPool2d, ReLU
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, QuantConv2d, QuantLinear
from .common import conv1x1, conv3x3, make_norm_factory

__all__ = ["BasicBlock", "Bottleneck", "ResNet", "resnet18", "resnet50"]


class BasicBlock(Module):
    """Standard two-conv residual block (expansion 1)."""

    expansion = 1

    def __init__(self, in_channels: int, channels: int, stride: int,
                 norm_factory, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = conv3x3(in_channels, channels, stride=stride, rng=rng)
        self.bn1 = norm_factory(channels)
        self.conv2 = conv3x3(channels, out_channels, stride=1, rng=rng)
        self.bn2 = norm_factory(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.down_conv: Optional[QuantConv2d] = conv1x1(
                in_channels, out_channels, stride=stride, rng=rng)
            self.down_bn = norm_factory(out_channels)
        else:
            self.down_conv = None
            self.down_bn = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return self.relu(out + identity)


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 residual block (expansion 4), used by ResNet-50."""

    expansion = 4

    def __init__(self, in_channels: int, channels: int, stride: int,
                 norm_factory, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = conv1x1(in_channels, channels, stride=1, rng=rng)
        self.bn1 = norm_factory(channels)
        self.conv2 = conv3x3(channels, channels, stride=stride, rng=rng)
        self.bn2 = norm_factory(channels)
        self.conv3 = conv1x1(channels, out_channels, stride=1, rng=rng)
        self.bn3 = norm_factory(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.down_conv: Optional[QuantConv2d] = conv1x1(
                in_channels, out_channels, stride=stride, rng=rng)
            self.down_bn = norm_factory(out_channels)
        else:
            self.down_conv = None
            self.down_bn = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return self.relu(out + identity)


class ResNet(Module):
    """Configurable ResNet supporting both CIFAR-style and ImageNet-style stems."""

    def __init__(self, block_type: type, blocks_per_stage: Sequence[int],
                 width: int = 64, num_classes: int = 10, in_channels: int = 3,
                 imagenet_stem: bool = False,
                 precisions: Optional[PrecisionSet] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        norm_factory = make_norm_factory(precisions)

        if imagenet_stem:
            self.stem = QuantConv2d(in_channels, width, kernel_size=7, stride=2,
                                    padding=3, bias=False, rng=rng)
            self.stem_pool: Optional[MaxPool2d] = MaxPool2d(2, 2)
        else:
            self.stem = conv3x3(in_channels, width, stride=1, rng=rng)
            self.stem_pool = None
        self.stem_bn = norm_factory(width)
        self.relu = ReLU()

        blocks: List[Module] = []
        current = width
        for stage, num_blocks in enumerate(blocks_per_stage):
            channels = width * (2 ** stage)
            for block_index in range(num_blocks):
                stride = 2 if (stage > 0 and block_index == 0) else 1
                blocks.append(block_type(current, channels, stride,
                                         norm_factory, rng=rng))
                current = channels * block_type.expansion
        self.blocks = ModuleList(blocks)
        self.pool = AdaptiveAvgPool2d(1)
        self.fc = QuantLinear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        if self.stem_pool is not None:
            out = self.stem_pool(out)
        for block in self.blocks:
            out = block(out)
        out = self.pool(out)
        return self.fc(out.flatten(1))


def resnet18(num_classes: int = 10, width: int = 64,
             precisions: Optional[PrecisionSet] = None,
             imagenet_stem: bool = False, in_channels: int = 3,
             seed: int = 0) -> ResNet:
    return ResNet(BasicBlock, (2, 2, 2, 2), width=width, num_classes=num_classes,
                  in_channels=in_channels, imagenet_stem=imagenet_stem,
                  precisions=precisions, seed=seed)


def resnet50(num_classes: int = 20, width: int = 64,
             precisions: Optional[PrecisionSet] = None,
             imagenet_stem: bool = True, in_channels: int = 3,
             seed: int = 0) -> ResNet:
    return ResNet(Bottleneck, (3, 4, 6, 3), width=width, num_classes=num_classes,
                  in_channels=in_channels, imagenet_stem=imagenet_stem,
                  precisions=precisions, seed=seed)
