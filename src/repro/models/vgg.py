"""VGG-style networks (accelerator workload and small-scale classifier)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..nn.layers import AdaptiveAvgPool2d, MaxPool2d, ReLU
from ..nn.module import Module, Sequential
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, QuantConv2d, QuantLinear
from .common import make_norm_factory

__all__ = ["VGG", "vgg11", "vgg16", "VGG_CONFIGS"]

#: Layer plans: integers are conv output channels (relative to width/64), "M" is max-pool.
VGG_CONFIGS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG with batch norm; channel counts scale with ``width`` (64 = canonical)."""

    def __init__(self, plan: Sequence[Union[int, str]], num_classes: int = 10,
                 width: int = 64, in_channels: int = 3,
                 precisions: Optional[PrecisionSet] = None,
                 max_pools: Optional[int] = None, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        norm = make_norm_factory(precisions)
        scale = width / 64.0
        layers: List[Module] = []
        current = in_channels
        pools_used = 0
        for item in plan:
            if item == "M":
                if max_pools is not None and pools_used >= max_pools:
                    continue
                layers.append(MaxPool2d(2))
                pools_used += 1
                continue
            channels = max(int(round(int(item) * scale)), 4)
            layers.append(QuantConv2d(current, channels, kernel_size=3, stride=1,
                                      padding=1, bias=False, rng=rng))
            layers.append(norm(channels))
            layers.append(ReLU())
            current = channels
        self.features = Sequential(*layers)
        self.pool = AdaptiveAvgPool2d(1)
        self.fc = QuantLinear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.pool(out).flatten(1)
        return self.fc(out)


def vgg11(num_classes: int = 10, width: int = 16,
          precisions: Optional[PrecisionSet] = None, in_channels: int = 3,
          max_pools: Optional[int] = 3, seed: int = 0) -> VGG:
    return VGG(VGG_CONFIGS["vgg11"], num_classes=num_classes, width=width,
               in_channels=in_channels, precisions=precisions,
               max_pools=max_pools, seed=seed)


def vgg16(num_classes: int = 10, width: int = 16,
          precisions: Optional[PrecisionSet] = None, in_channels: int = 3,
          max_pools: Optional[int] = 3, seed: int = 0) -> VGG:
    return VGG(VGG_CONFIGS["vgg16"], num_classes=num_classes, width=width,
               in_channels=in_channels, precisions=precisions,
               max_pools=max_pools, seed=seed)
