"""Wide ResNet (Zagoruyko & Komodakis) — the paper's second CIFAR backbone."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.layers import AdaptiveAvgPool2d, ReLU
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, QuantLinear
from .common import conv1x1, conv3x3, make_norm_factory

__all__ = ["WideBasicBlock", "WideResNet", "wide_resnet32"]


class WideBasicBlock(Module):
    """Pre-activation wide basic block."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 norm_factory, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.bn1 = norm_factory(in_channels)
        self.conv1 = conv3x3(in_channels, out_channels, stride=stride, rng=rng)
        self.bn2 = norm_factory(out_channels)
        self.conv2 = conv3x3(out_channels, out_channels, stride=1, rng=rng)
        self.relu = ReLU()
        self.shortcut = (conv1x1(in_channels, out_channels, stride=stride, rng=rng)
                         if stride != 1 or in_channels != out_channels else None)

    def forward(self, x: Tensor) -> Tensor:
        pre = self.relu(self.bn1(x))
        shortcut = self.shortcut(pre) if self.shortcut is not None else x
        out = self.conv1(pre)
        out = self.conv2(self.relu(self.bn2(out)))
        return out + shortcut


class WideResNet(Module):
    """WRN-d-k: three groups of wide basic blocks on CIFAR-sized inputs.

    ``depth`` follows the usual 6n+4 convention; the paper's WideResNet-32 is
    instantiated with ``depth=32`` (n = 4 blocks per group) and
    ``widen_factor=10`` at full scale.  Pass ``base_width`` / ``widen_factor``
    small for quick runs.
    """

    def __init__(self, depth: int = 32, widen_factor: int = 10,
                 base_width: int = 16, num_classes: int = 10,
                 in_channels: int = 3,
                 precisions: Optional[PrecisionSet] = None,
                 seed: int = 0) -> None:
        super().__init__()
        if depth < 10:
            raise ValueError("depth must be >= 10 (6n + 4 with n >= 1)")
        n = (depth - 4) // 6
        rng = np.random.default_rng(seed)
        norm_factory = make_norm_factory(precisions)
        widths = [base_width, base_width * widen_factor,
                  2 * base_width * widen_factor, 4 * base_width * widen_factor]

        self.stem = conv3x3(in_channels, widths[0], stride=1, rng=rng)
        blocks: List[Module] = []
        current = widths[0]
        for group, group_width in enumerate(widths[1:]):
            for block_index in range(n):
                stride = 2 if (group > 0 and block_index == 0) else 1
                blocks.append(WideBasicBlock(current, group_width, stride,
                                             norm_factory, rng=rng))
                current = group_width
        self.blocks = ModuleList(blocks)
        self.final_bn = norm_factory(current)
        self.relu = ReLU()
        self.pool = AdaptiveAvgPool2d(1)
        self.fc = QuantLinear(current, num_classes, rng=rng)
        self.num_classes = num_classes
        self.depth = depth
        self.widen_factor = widen_factor

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.relu(self.final_bn(out))
        out = self.pool(out)
        return self.fc(out.flatten(1))


def wide_resnet32(num_classes: int = 10, widen_factor: int = 10,
                  base_width: int = 16,
                  precisions: Optional[PrecisionSet] = None,
                  depth: int = 32, in_channels: int = 3,
                  seed: int = 0) -> WideResNet:
    """The paper's WideResNet-32 (shrink ``base_width``/``widen_factor`` for tests)."""
    return WideResNet(depth=depth, widen_factor=widen_factor,
                      base_width=base_width, num_classes=num_classes,
                      in_channels=in_channels, precisions=precisions, seed=seed)
