"""Pre-activation ResNet (He et al., 2016) — the paper's CIFAR backbone.

The paper follows Wong et al. and uses PreActResNet-18 for CIFAR-10/100 and
SVHN.  The constructor exposes ``width`` and ``blocks_per_stage`` so the same
architecture can be instantiated at laptop scale for the reproduction's
synthetic datasets while keeping the canonical configuration available.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.layers import AdaptiveAvgPool2d, ReLU
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, QuantConv2d, QuantLinear
from .common import conv1x1, conv3x3, make_norm_factory

__all__ = ["PreActBlock", "PreActResNet", "preact_resnet18"]


class PreActBlock(Module):
    """Pre-activation residual block: BN -> ReLU -> conv, twice."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 norm_factory, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.bn1 = norm_factory(in_channels)
        self.conv1 = conv3x3(in_channels, out_channels, stride=stride, rng=rng)
        self.bn2 = norm_factory(out_channels)
        self.conv2 = conv3x3(out_channels, out_channels, stride=1, rng=rng)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Optional[QuantConv2d] = conv1x1(
                in_channels, out_channels, stride=stride, rng=rng)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        pre = self.relu(self.bn1(x))
        shortcut = self.shortcut(pre) if self.shortcut is not None else x
        out = self.conv1(pre)
        out = self.conv2(self.relu(self.bn2(out)))
        return out + shortcut


class PreActResNet(Module):
    """Pre-activation ResNet for small (CIFAR-sized) inputs."""

    def __init__(self, blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
                 width: int = 64, num_classes: int = 10,
                 in_channels: int = 3,
                 precisions: Optional[PrecisionSet] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        norm_factory = make_norm_factory(precisions)
        widths = [width * (2 ** i) for i in range(len(blocks_per_stage))]

        self.stem = conv3x3(in_channels, widths[0], stride=1, rng=rng)
        blocks: List[Module] = []
        current = widths[0]
        for stage, (num_blocks, stage_width) in enumerate(zip(blocks_per_stage, widths)):
            for block_index in range(num_blocks):
                stride = 2 if (stage > 0 and block_index == 0) else 1
                blocks.append(PreActBlock(current, stage_width, stride,
                                          norm_factory, rng=rng))
                current = stage_width
        self.blocks = ModuleList(blocks)
        self.final_bn = norm_factory(current)
        self.relu = ReLU()
        self.pool = AdaptiveAvgPool2d(1)
        self.fc = QuantLinear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.relu(self.final_bn(out))
        out = self.pool(out)
        return self.fc(out.flatten(1))


def preact_resnet18(num_classes: int = 10, width: int = 64,
                    precisions: Optional[PrecisionSet] = None,
                    blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
                    in_channels: int = 3, seed: int = 0) -> PreActResNet:
    """The paper's PreActResNet-18 (use a small ``width`` for quick runs)."""
    return PreActResNet(blocks_per_stage=blocks_per_stage, width=width,
                        num_classes=num_classes, in_channels=in_channels,
                        precisions=precisions, seed=seed)
