"""AlexNet-style network (accelerator workload and small-scale classifier)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.layers import AdaptiveAvgPool2d, Dropout, MaxPool2d, ReLU
from ..nn.module import Module, Sequential
from ..nn.tensor import Tensor
from ..quantization import PrecisionSet, QuantConv2d, QuantLinear
from .common import make_norm_factory

__all__ = ["AlexNet", "alexnet"]


class AlexNet(Module):
    """A batch-norm AlexNet variant scaled by ``width``.

    The canonical AlexNet (width=64) is used as an accelerator workload via
    :mod:`repro.models.layer_specs`; the runnable numpy model defaults to a
    narrow configuration suitable for the synthetic datasets.
    """

    def __init__(self, num_classes: int = 10, width: int = 16,
                 in_channels: int = 3,
                 precisions: Optional[PrecisionSet] = None,
                 dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        norm = make_norm_factory(precisions)
        w = width
        self.features = Sequential(
            QuantConv2d(in_channels, w, kernel_size=3, stride=1, padding=1,
                        bias=False, rng=rng),
            norm(w), ReLU(), MaxPool2d(2),
            QuantConv2d(w, 2 * w, kernel_size=3, stride=1, padding=1,
                        bias=False, rng=rng),
            norm(2 * w), ReLU(), MaxPool2d(2),
            QuantConv2d(2 * w, 4 * w, kernel_size=3, stride=1, padding=1,
                        bias=False, rng=rng),
            norm(4 * w), ReLU(),
            QuantConv2d(4 * w, 4 * w, kernel_size=3, stride=1, padding=1,
                        bias=False, rng=rng),
            norm(4 * w), ReLU(),
        )
        self.pool = AdaptiveAvgPool2d(1)
        self.dropout = Dropout(dropout, rng=rng)
        self.fc1 = QuantLinear(4 * w, 8 * w, rng=rng)
        self.relu = ReLU()
        self.fc2 = QuantLinear(8 * w, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.pool(out).flatten(1)
        out = self.relu(self.fc1(self.dropout(out)))
        return self.fc2(out)


def alexnet(num_classes: int = 10, width: int = 16,
            precisions: Optional[PrecisionSet] = None,
            in_channels: int = 3, seed: int = 0) -> AlexNet:
    return AlexNet(num_classes=num_classes, width=width, in_channels=in_channels,
                   precisions=precisions, seed=seed)
