"""Core of the reproduction: the RPS algorithm, evaluation protocols, the
instant robustness-efficiency trade-off, and the algorithm/hardware co-design
façade."""

from .codesign import CoDesignReport, TwoInOneSystem
from .evaluation import (
    TransferabilityResult,
    natural_accuracy,
    robust_accuracy,
    rps_robust_accuracy,
    transferability_matrix,
)
from .rps import RPSConfig, RPSInference, RPSTrainer
from .tradeoff import OperatingPoint, TradeoffController, TradeoffCurve

__all__ = [
    "RPSConfig",
    "RPSTrainer",
    "RPSInference",
    "natural_accuracy",
    "robust_accuracy",
    "rps_robust_accuracy",
    "transferability_matrix",
    "TransferabilityResult",
    "OperatingPoint",
    "TradeoffCurve",
    "TradeoffController",
    "CoDesignReport",
    "TwoInOneSystem",
]
