"""End-to-end algorithm/accelerator co-design façade.

``TwoInOneSystem`` wires together the two halves of the paper: an RPS-trained
model (algorithm side) and the 2-in-1 Accelerator model (hardware side).  It
is the object the quickstart example builds — train, evaluate robustness,
and obtain the hardware efficiency of deploying the same precision set on the
proposed accelerator, all behind one API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator.accelerators.two_in_one import TwoInOneAccelerator
from ..accelerator.workload import LayerShape, network_layers
from ..attacks.base import Attack
from ..data.datasets import SyntheticImageDataset
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization import PrecisionSet
from .evaluation import rps_robust_accuracy
from .rps import RPSConfig, RPSInference, RPSTrainer
from .tradeoff import TradeoffController, TradeoffCurve

__all__ = ["CoDesignReport", "TwoInOneSystem"]


@dataclass
class CoDesignReport:
    """Joint algorithm + hardware summary for one deployment configuration."""

    natural_accuracy: float
    robust_accuracy: Optional[float]
    average_fps: float
    average_energy: float
    precision_keys: List[object] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "natural_accuracy": self.natural_accuracy,
            "robust_accuracy": self.robust_accuracy,
            "average_fps": self.average_fps,
            "average_energy": self.average_energy,
            "precisions": self.precision_keys,
        }


class TwoInOneSystem:
    """The complete 2-in-1 co-design: RPS model + precision-scalable accelerator."""

    def __init__(self, model: Module, precision_set: PrecisionSet,
                 accelerator: Optional[TwoInOneAccelerator] = None,
                 workload: str = "resnet18", workload_dataset: str = "cifar10",
                 seed: int = 0) -> None:
        self.model = model
        self.precision_set = precision_set
        self.accelerator = accelerator or TwoInOneAccelerator()
        self.workload_layers: List[LayerShape] = network_layers(workload,
                                                                workload_dataset)
        self.seed = seed
        #: One compiled-plan cache for the whole system: RPS inference, the
        #: robustness report and the trade-off curve all execute through it.
        self.session = InferenceSession(model)
        self.inference = RPSInference(model, precision_set, seed=seed,
                                      session=self.session)

    # ------------------------------------------------------------------
    def train(self, dataset: SyntheticImageDataset,
              config: Optional[RPSConfig] = None) -> RPSTrainer:
        """RPS-train the system's model on a dataset and return the trainer."""
        config = config or RPSConfig(precision_set=self.precision_set)
        if config.precision_set != self.precision_set:
            raise ValueError("trainer precision set must match the system's")
        trainer = RPSTrainer(self.model, config)
        trainer.fit(dataset.x_train, dataset.y_train)
        return trainer

    # ------------------------------------------------------------------
    def report(self, x: np.ndarray, y: np.ndarray,
               attack: Optional[Attack] = None) -> CoDesignReport:
        """Evaluate accuracy (and robustness) plus hardware efficiency."""
        natural = self.inference.accuracy(x, y)
        robust = None
        if attack is not None:
            robust = rps_robust_accuracy(self.model, attack, x, y,
                                         self.precision_set, seed=self.seed,
                                         session=self.session)
        hardware = self.accelerator.rps_average_metrics(self.workload_layers,
                                                        self.precision_set)
        return CoDesignReport(
            natural_accuracy=natural,
            robust_accuracy=robust,
            average_fps=hardware["average_fps"],
            average_energy=hardware["average_energy"],
            precision_keys=list(self.precision_set.keys),
        )

    def tradeoff_curve(self, x: np.ndarray, y: np.ndarray, attack: Attack,
                       caps: Sequence[Optional[int]] = (None, 12, 8)
                       ) -> TradeoffCurve:
        """Regenerate the Fig. 11-style robustness/efficiency curve."""
        controller = TradeoffController(self.model, self.precision_set,
                                        attack=attack, seed=self.seed,
                                        session=self.session)
        return controller.build_curve(x, y, accelerator=self.accelerator,
                                      layers=self.workload_layers, caps=caps)
