"""Robustness evaluation protocols used throughout the paper's Section 4.

Three protocols are provided:

* :func:`natural_accuracy` — clean accuracy at a fixed precision.
* :func:`robust_accuracy` — accuracy on adversarial examples when the attack
  is generated at one precision and the model is evaluated at another
  (the transferability protocol behind Fig. 1).
* :func:`rps_robust_accuracy` — the deployment protocol of Tabs. 1-6: the
  adversary samples a random attack precision from the same candidate set
  (the paper's default threat model, Sec. 4.1) and the defender samples a
  random inference precision per input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..attacks.base import Attack
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization import FULL_PRECISION, Precision, PrecisionSet, set_model_precision
from .rps import RPSInference

__all__ = [
    "natural_accuracy",
    "robust_accuracy",
    "rps_robust_accuracy",
    "transferability_matrix",
    "TransferabilityResult",
]


def _as_precision(value: Union[int, Precision, None]) -> Precision:
    if value is None:
        return FULL_PRECISION
    if isinstance(value, Precision):
        return value
    return Precision(int(value))


def natural_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                     precision: Union[int, Precision, None] = None,
                     session: Optional[InferenceSession] = None) -> float:
    """Clean accuracy with the model quantised to ``precision``.

    Evaluation runs through a compiled :class:`InferenceSession` plan; pass
    ``session`` to reuse plans across repeated calls (e.g. sweeping
    precisions over a fixed model).
    """
    session = session or InferenceSession(model)
    return session.accuracy(x, y, _as_precision(precision))


def robust_accuracy(model: Module, attack: Attack, x: np.ndarray, y: np.ndarray,
                    attack_precision: Union[int, Precision, None] = None,
                    inference_precision: Union[int, Precision, None] = None,
                    session: Optional[InferenceSession] = None) -> float:
    """Accuracy under attack with independent attack/inference precisions.

    The attack is generated against the model quantised to
    ``attack_precision``; the resulting adversarial examples are then
    evaluated with the model quantised to ``inference_precision``.  Equal
    precisions give the white-box diagonal of Fig. 1; unequal precisions give
    the transfer entries.

    Attack generation needs gradients and therefore still runs on the live
    module path (``set_model_precision``); only the defender's evaluation
    goes through the compiled session.
    """
    session = session or InferenceSession(model)
    set_model_precision(model, _as_precision(attack_precision))
    result = attack.run(model, x, y)
    return session.accuracy(result.x_adv, y, _as_precision(inference_precision))


def rps_robust_accuracy(model: Module, attack: Attack, x: np.ndarray,
                        y: np.ndarray, precision_set: PrecisionSet,
                        seed: int = 0, attack_batch: int = 64,
                        session: Optional[InferenceSession] = None) -> float:
    """Robust accuracy under the paper's RPS threat model.

    The adversary draws a random attack precision per batch from the same
    candidate set as the defender (Sec. 4.1's simplifying assumption); the
    defender draws a random inference precision per input via
    :class:`RPSInference` (compiled-session execution).
    """
    rng = np.random.default_rng(seed)
    inference = RPSInference(model, precision_set, seed=seed + 1,
                             session=session)
    correct = 0
    for start in range(0, len(x), attack_batch):
        x_batch = x[start:start + attack_batch]
        y_batch = y[start:start + attack_batch]
        attack_precision = precision_set.sample(rng)
        set_model_precision(model, attack_precision)
        result = attack.run(model, x_batch, y_batch)
        predictions = inference.predict(result.x_adv, per_sample=True)
        correct += int((predictions == y_batch).sum())
    return correct / len(x) if len(x) else 0.0


@dataclass
class TransferabilityResult:
    """Robust-accuracy matrix across (attack precision, inference precision)."""

    precisions: List[int]
    matrix: np.ndarray            # matrix[i, j]: attack at i, inference at j

    def diagonal_mean(self) -> float:
        return float(np.mean(np.diag(self.matrix)))

    def off_diagonal_mean(self) -> float:
        mask = ~np.eye(len(self.precisions), dtype=bool)
        return float(self.matrix[mask].mean())

    def transfer_gap(self) -> float:
        """How much harder transferred attacks are than matched-precision ones."""
        return self.off_diagonal_mean() - self.diagonal_mean()

    def as_dict(self) -> Dict[str, object]:
        return {"precisions": list(self.precisions),
                "matrix": self.matrix.tolist()}


def transferability_matrix(model: Module, attack: Attack, x: np.ndarray,
                           y: np.ndarray,
                           precisions: PrecisionSet) -> TransferabilityResult:
    """Reproduce the Fig. 1 protocol: cross every attack precision with every
    inference precision and record the robust accuracy.

    One :class:`InferenceSession` serves the whole inner loop: every
    inference precision compiles once and the remaining (attack, inference)
    cells are plan-cache hits.
    """
    session = InferenceSession(model)
    bits = precisions.bit_widths
    matrix = np.zeros((len(bits), len(bits)), dtype=np.float64)
    for i, attack_bits in enumerate(bits):
        set_model_precision(model, Precision(attack_bits))
        result = attack.run(model, x, y)
        for j, infer_bits in enumerate(bits):
            matrix[i, j] = session.accuracy(result.x_adv, y,
                                            Precision(infer_bits))
    return TransferabilityResult(precisions=bits, matrix=matrix)
