"""Instant robustness-efficiency trade-off controller (Sec. 2.5 / Fig. 11).

A trained RPS model can trade robustness for efficiency at run time, with no
retraining, by shrinking the inference precision set (lower precisions =
cheaper but less of the randomisation benefit at the high end) or collapsing
to a single static low precision (cheapest, least robust).  The controller
below enumerates those operating points and, given an accelerator model,
attaches the average energy/throughput of each point so the Fig. 11 curve can
be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..attacks.base import Attack
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization import Precision, PrecisionSet
from .evaluation import natural_accuracy, robust_accuracy, rps_robust_accuracy
from .rps import RPSInference

__all__ = ["OperatingPoint", "TradeoffCurve", "TradeoffController"]


@dataclass
class OperatingPoint:
    """One run-time configuration of the RPS system."""

    label: str
    precision_set: Optional[PrecisionSet]       # None = static precision
    static_precision: Optional[Precision] = None
    robust_accuracy: Optional[float] = None
    natural_accuracy: Optional[float] = None
    average_energy: Optional[float] = None
    average_fps: Optional[float] = None

    @property
    def is_static(self) -> bool:
        return self.precision_set is None

    def energy_efficiency(self) -> Optional[float]:
        if self.average_energy in (None, 0.0):
            return None
        return 1.0 / self.average_energy


@dataclass
class TradeoffCurve:
    """The ordered list of operating points (most robust first)."""

    points: List[OperatingPoint] = field(default_factory=list)

    def labels(self) -> List[str]:
        return [p.label for p in self.points]

    def is_monotone_tradeoff(self) -> bool:
        """True when robustness falls while efficiency rises along the curve."""
        robustness = [p.robust_accuracy for p in self.points
                      if p.robust_accuracy is not None]
        energy = [p.average_energy for p in self.points
                  if p.average_energy is not None]
        robust_ok = all(a >= b - 1e-9 for a, b in zip(robustness, robustness[1:]))
        energy_ok = all(a >= b - 1e-9 for a, b in zip(energy, energy[1:]))
        return robust_ok and energy_ok

    def as_rows(self) -> List[Dict[str, object]]:
        return [{
            "configuration": p.label,
            "robust_accuracy": p.robust_accuracy,
            "natural_accuracy": p.natural_accuracy,
            "average_energy": p.average_energy,
            "average_fps": p.average_fps,
        } for p in self.points]


class TradeoffController:
    """Enumerate and score the run-time operating points of an RPS system."""

    def __init__(self, model: Module, full_set: PrecisionSet,
                 attack: Optional[Attack] = None, seed: int = 0,
                 session: Optional[InferenceSession] = None) -> None:
        self.model = model
        self.full_set = full_set
        self.attack = attack
        self.seed = seed
        # One compiled-plan cache serves every operating point: restricted
        # RPS sets and static points reuse the same per-precision plans.
        # Built lazily: efficiency-only controllers pass model=None.
        self._session = session

    @property
    def session(self) -> InferenceSession:
        if self._session is None:
            self._session = InferenceSession(self.model)
        return self._session

    # ------------------------------------------------------------------
    def operating_points(self, caps: Sequence[Optional[int]] = (None, 12, 8),
                         include_static_lowest: bool = True) -> List[OperatingPoint]:
        """Build the paper's Fig. 11 configurations.

        ``caps`` lists maximum bit-widths for the restricted RPS sets
        (``None`` keeps the full set); a final static-lowest-precision point
        is appended when ``include_static_lowest`` is set.
        """
        points: List[OperatingPoint] = []
        for cap in caps:
            subset = self.full_set if cap is None else self.full_set.restrict(cap)
            low = subset.lowest().symmetric_bits
            high = subset.highest().symmetric_bits
            points.append(OperatingPoint(
                label=f"RPS {low}~{high}-bit", precision_set=subset))
        if include_static_lowest:
            lowest = self.full_set.lowest()
            points.append(OperatingPoint(
                label=f"static {lowest.symmetric_bits}-bit",
                precision_set=None, static_precision=lowest))
        return points

    # ------------------------------------------------------------------
    def score_robustness(self, points: Sequence[OperatingPoint],
                         x: np.ndarray, y: np.ndarray) -> None:
        """Fill in natural / robust accuracy for every operating point."""
        if self.attack is None:
            raise ValueError("an attack must be provided to score robustness")
        for point in points:
            if point.is_static:
                precision = point.static_precision
                point.natural_accuracy = natural_accuracy(
                    self.model, x, y, precision, session=self.session)
                point.robust_accuracy = robust_accuracy(
                    self.model, self.attack, x, y,
                    attack_precision=precision, inference_precision=precision,
                    session=self.session)
            else:
                inference = RPSInference(self.model, point.precision_set,
                                         seed=self.seed, session=self.session)
                point.natural_accuracy = inference.accuracy(x, y)
                point.robust_accuracy = rps_robust_accuracy(
                    self.model, self.attack, x, y, point.precision_set,
                    seed=self.seed, session=self.session)

    def score_efficiency(self, points: Sequence[OperatingPoint], accelerator,
                         layers) -> None:
        """Fill in average energy / FPS using an accelerator model.

        Every :class:`~repro.accelerator.accelerators.base.Accelerator`
        scores an RPS point in one batched engine pass
        (``rps_average_metrics``), so overlapping precision sets across
        operating points become cache hits.
        """
        for point in points:
            if point.is_static:
                perf = accelerator.evaluate_network(layers, point.static_precision)
                point.average_energy = perf.total_energy
                point.average_fps = perf.throughput_fps
            else:
                metrics = accelerator.rps_average_metrics(layers,
                                                          point.precision_set)
                point.average_energy = metrics["average_energy"]
                point.average_fps = metrics["average_fps"]

    # ------------------------------------------------------------------
    def build_curve(self, x: np.ndarray, y: np.ndarray, accelerator=None,
                    layers=None,
                    caps: Sequence[Optional[int]] = (None, 12, 8)) -> TradeoffCurve:
        points = self.operating_points(caps=caps)
        self.score_robustness(points, x, y)
        if accelerator is not None and layers is not None:
            self.score_efficiency(points, accelerator, layers)
        return TradeoffCurve(points=points)
