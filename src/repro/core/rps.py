"""Random Precision Switch (RPS): the paper's core algorithm (Alg. 1).

RPS has two halves:

* **RPS training** — adversarial training in which every iteration (i) draws a
  precision ``q`` uniformly from the candidate set, (ii) quantises the model
  to ``q`` bits (weights and activations), (iii) generates the adversarial
  examples *at that precision*, and (iv) updates the weights through the
  quantised forward/backward pass.  Switchable batch normalisation keeps one
  set of BN statistics per precision so the per-precision activation
  statistics stay separated.

* **RPS inference** — for every incoming input, a precision is drawn at
  random from the inference set and the model is quantised to it before
  prediction.  Because adversarial examples transfer poorly between
  precisions (Sec. 2.3 / Fig. 1), the random switch breaks most attacks that
  were generated at any single precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..defense.adversarial import AdversarialConfig, AdversarialTrainer
from ..defense.trainer import TrainingHistory
from ..data.loaders import DataLoader
from ..nn import workspace as nn_workspace
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..quantization import (
    DEFAULT_RPS_SET,
    FULL_PRECISION,
    Precision,
    PrecisionSet,
    set_model_precision,
)

__all__ = ["RPSConfig", "RPSTrainer", "RPSInference"]


@dataclass
class RPSConfig(AdversarialConfig):
    """Adversarial-training hyper-parameters plus the RPS candidate set."""

    precision_set: PrecisionSet = field(default_factory=lambda: DEFAULT_RPS_SET)
    #: Also run a fraction of iterations at full precision, which stabilises
    #: early training of very small models; 0.0 reproduces Alg. 1 exactly.
    full_precision_fraction: float = 0.0


class RPSTrainer(AdversarialTrainer):
    """Adversarial training with an in-situ random precision switch.

    The model must have been built with switchable batch norm branches for
    every precision in ``config.precision_set`` (pass the set to the model
    constructor); otherwise the trainer raises at construction time.
    """

    def __init__(self, model: Module, config: Optional[RPSConfig] = None) -> None:
        config = config or RPSConfig()
        super().__init__(model, config)
        self.config: RPSConfig = config
        self._validate_sbn(model, config.precision_set)
        self.precision_history: List[Precision] = []

    @staticmethod
    def _validate_sbn(model: Module, precision_set: PrecisionSet) -> None:
        from ..nn.layers import SwitchableBatchNorm2d

        sbn_layers = [m for m in model.modules()
                      if isinstance(m, SwitchableBatchNorm2d)]
        if not sbn_layers:
            raise ValueError(
                "RPS training requires switchable batch normalisation; build the "
                "model with the same precision set (models accept `precisions=`)")
        missing = [key for key in precision_set.keys
                   if key not in sbn_layers[0].available_keys()]
        if missing:
            raise ValueError(f"model SBN branches missing precisions {missing}")

    # ------------------------------------------------------------------
    def sample_training_precision(self) -> Precision:
        """Line 5 of Alg. 1: draw the iteration's precision."""
        if (self.config.full_precision_fraction > 0.0
                and self.rng.random() < self.config.full_precision_fraction):
            return FULL_PRECISION
        return self.config.precision_set.sample(self.rng)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        precision = self.sample_training_precision()
        self.precision_history.append(precision)
        set_model_precision(self.model, precision)
        return super().train_batch(x, y)


class RPSInference:
    """RPS inference: per-input random precision selection (Alg. 1, lines 14-19)."""

    def __init__(self, model: Module,
                 precision_set: Optional[PrecisionSet] = None,
                 seed: int = 0) -> None:
        self.model = model
        self.precision_set = precision_set or DEFAULT_RPS_SET
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def restrict(self, max_bits: int) -> "RPSInference":
        """Return a new engine whose inference set is capped at ``max_bits``.

        This is the instant robustness-efficiency trade-off knob of Sec. 2.5:
        no retraining is involved, only the sampled set changes.
        """
        return RPSInference(self.model, self.precision_set.restrict(max_bits),
                            seed=int(self.rng.integers(0, 2 ** 31)))

    def sample_precision(self) -> Precision:
        return self.precision_set.sample(self.rng)

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, per_sample: bool = True,
                batch_size: int = 256) -> np.ndarray:
        """Predict labels, drawing a fresh precision per sample (or per batch).

        Per-sample switching is the strongest (and default) configuration;
        per-batch switching models a deployment that amortises the switch
        over a batch.
        """
        was_training = self.model.training
        self.model.eval()
        predictions = np.empty(len(x), dtype=np.int64)
        try:
            if per_sample:
                assignments = np.array([
                    self.rng.integers(0, len(self.precision_set))
                    for _ in range(len(x))])
                for index, precision in enumerate(self.precision_set):
                    selected = np.flatnonzero(assignments == index)
                    if selected.size == 0:
                        continue
                    set_model_precision(self.model, precision)
                    with no_grad():
                        for start in range(0, selected.size, batch_size):
                            chunk = selected[start:start + batch_size]
                            logits = self.model(Tensor(x[chunk]))
                            predictions[chunk] = logits.data.argmax(axis=1)
                            del logits
                            nn_workspace.end_step()
            else:
                for start in range(0, len(x), batch_size):
                    precision = self.sample_precision()
                    set_model_precision(self.model, precision)
                    with no_grad():
                        logits = self.model(Tensor(x[start:start + batch_size]))
                    predictions[start:start + batch_size] = logits.data.argmax(axis=1)
                    del logits
                    nn_workspace.end_step()
        finally:
            self.model.train(was_training)
        return predictions

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 per_sample: bool = True) -> float:
        if len(x) == 0:
            return 0.0
        predictions = self.predict(x, per_sample=per_sample)
        return float((predictions == np.asarray(y)).mean())

    # ------------------------------------------------------------------
    def expected_bit_operations(self) -> float:
        """Average bit-serial work per MAC under uniform precision sampling.

        Used by the trade-off controller to convert an inference precision set
        into a relative efficiency figure without invoking the accelerator
        model (which provides the calibrated numbers for Fig. 11).
        """
        ops = [p.bit_operations_per_mac() for p in self.precision_set]
        return float(np.mean(ops))
