"""Random Precision Switch (RPS): the paper's core algorithm (Alg. 1).

RPS has two halves:

* **RPS training** — adversarial training in which every iteration (i) draws a
  precision ``q`` uniformly from the candidate set, (ii) quantises the model
  to ``q`` bits (weights and activations), (iii) generates the adversarial
  examples *at that precision*, and (iv) updates the weights through the
  quantised forward/backward pass.  Switchable batch normalisation keeps one
  set of BN statistics per precision so the per-precision activation
  statistics stay separated.

* **RPS inference** — for every incoming input, a precision is drawn at
  random from the inference set and the model is quantised to it before
  prediction.  Because adversarial examples transfer poorly between
  precisions (Sec. 2.3 / Fig. 1), the random switch breaks most attacks that
  were generated at any single precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..defense.adversarial import AdversarialConfig, AdversarialTrainer
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization import (
    DEFAULT_RPS_SET,
    FULL_PRECISION,
    Precision,
    PrecisionSet,
    set_model_precision,
)

__all__ = ["RPSConfig", "RPSTrainer", "RPSInference"]


@dataclass
class RPSConfig(AdversarialConfig):
    """Adversarial-training hyper-parameters plus the RPS candidate set."""

    precision_set: PrecisionSet = field(default_factory=lambda: DEFAULT_RPS_SET)
    #: Also run a fraction of iterations at full precision, which stabilises
    #: early training of very small models; 0.0 reproduces Alg. 1 exactly.
    full_precision_fraction: float = 0.0


class RPSTrainer(AdversarialTrainer):
    """Adversarial training with an in-situ random precision switch.

    The model must have been built with switchable batch norm branches for
    every precision in ``config.precision_set`` (pass the set to the model
    constructor); otherwise the trainer raises at construction time.
    """

    def __init__(self, model: Module, config: Optional[RPSConfig] = None) -> None:
        config = config or RPSConfig()
        super().__init__(model, config)
        self.config: RPSConfig = config
        self._validate_sbn(model, config.precision_set)
        self.precision_history: List[Precision] = []

    @staticmethod
    def _validate_sbn(model: Module, precision_set: PrecisionSet) -> None:
        from ..nn.layers import SwitchableBatchNorm2d

        sbn_layers = [m for m in model.modules()
                      if isinstance(m, SwitchableBatchNorm2d)]
        if not sbn_layers:
            raise ValueError(
                "RPS training requires switchable batch normalisation; build the "
                "model with the same precision set (models accept `precisions=`)")
        missing = [key for key in precision_set.keys
                   if key not in sbn_layers[0].available_keys()]
        if missing:
            raise ValueError(f"model SBN branches missing precisions {missing}")

    # ------------------------------------------------------------------
    def sample_training_precision(self) -> Precision:
        """Line 5 of Alg. 1: draw the iteration's precision."""
        if (self.config.full_precision_fraction > 0.0
                and self.rng.random() < self.config.full_precision_fraction):
            return FULL_PRECISION
        return self.config.precision_set.sample(self.rng)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        precision = self.sample_training_precision()
        self.precision_history.append(precision)
        set_model_precision(self.model, precision)
        return super().train_batch(x, y)

    # ------------------------------------------------------------------
    # Durable-training hooks (see repro.checkpoint)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict:
        """The recorded precision schedule joins the checkpoint so a resumed
        RPS run keeps the full per-iteration precision trace (the draws
        themselves replay from the shared rng stream)."""
        extra = super().extra_state()
        extra["precision_history"] = list(self.precision_history)
        return extra

    def load_extra_state(self, extra: Dict) -> None:
        super().load_extra_state(extra)
        self.precision_history = list(extra.get("precision_history", []))


class RPSInference:
    """RPS inference: per-input random precision selection (Alg. 1, lines 14-19).

    Execution runs through an :class:`~repro.inference.InferenceSession`:
    every sampled precision resolves to a compiled plan (pre-quantised,
    BN-folded weights) instead of re-configuring the live training module via
    ``set_model_precision``.  Pass ``session`` to share one plan cache across
    engines (e.g. the restricted engines of the trade-off controller sample
    from subsets of the same plans).
    """

    def __init__(self, model: Module,
                 precision_set: Optional[PrecisionSet] = None,
                 seed: int = 0, session: Optional[InferenceSession] = None,
                 fold_bn: Optional[bool] = None) -> None:
        self.model = model
        self.precision_set = precision_set or DEFAULT_RPS_SET
        self.rng = np.random.default_rng(seed)
        if (session is not None and fold_bn is not None
                and session.fold_bn != bool(fold_bn)):
            raise ValueError(
                f"fold_bn={fold_bn} contradicts the supplied session's "
                f"fold_bn={session.fold_bn}; pass one or the other")
        self.session = session or InferenceSession(model, fold_bn=fold_bn)

    # ------------------------------------------------------------------
    def restrict(self, max_bits: int) -> "RPSInference":
        """Return a new engine whose inference set is capped at ``max_bits``.

        This is the instant robustness-efficiency trade-off knob of Sec. 2.5:
        no retraining is involved, only the sampled set changes (the compiled
        plans are shared through the common session).
        """
        return RPSInference(self.model, self.precision_set.restrict(max_bits),
                            seed=int(self.rng.integers(0, 2 ** 31)),
                            session=self.session)

    def sample_precision(self) -> Precision:
        return self.precision_set.sample(self.rng)

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, per_sample: bool = True,
                batch_size: int = 256) -> np.ndarray:
        """Predict labels, drawing a fresh precision per sample (or per batch).

        Per-sample switching is the strongest (and default) configuration;
        per-batch switching models a deployment that amortises the switch
        over a batch.  The random draws are identical to the historical
        implementation (same generator, same call sequence), so seeded runs
        reproduce the recorded evaluation trajectories.
        """
        if per_sample:
            assignments = [int(self.rng.integers(0, len(self.precision_set)))
                           for _ in range(len(x))]
            return self.session.predict_assigned(
                x, [self.precision_set[i] for i in assignments],
                batch_size=batch_size)
        predictions = np.empty(len(x), dtype=np.int64)
        for start in range(0, len(x), batch_size):
            precision = self.sample_precision()
            predictions[start:start + batch_size] = self.session.predict(
                x[start:start + batch_size], precision, batch_size=batch_size)
        return predictions

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 per_sample: bool = True) -> float:
        if len(x) == 0:
            return 0.0
        predictions = self.predict(x, per_sample=per_sample)
        return float((predictions == np.asarray(y)).mean())

    # ------------------------------------------------------------------
    def expected_bit_operations(self) -> float:
        """Average bit-serial work per MAC under uniform precision sampling.

        Used by the trade-off controller to convert an inference precision set
        into a relative efficiency figure without invoking the accelerator
        model (which provides the calibrated numbers for Fig. 11).
        """
        ops = [p.bit_operations_per_mac() for p in self.precision_set]
        return float(np.mean(ops))
