"""Precision descriptors and candidate precision sets.

The paper treats a "precision" as the common bit-width applied to both
weights and activations of every layer (Sec. 4.1: "a linear quantizer for
quantizing weights/activations to the same precision"), and RPS draws one
precision per iteration (training) or per input (inference) from a candidate
set such as 4–16 bit.  This module centralises the representation of those
choices so the algorithm side (quantized modules, RPS controllers) and the
accelerator side (per-precision latency/energy) speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

__all__ = ["Precision", "PrecisionSet", "FULL_PRECISION", "DEFAULT_RPS_SET"]


@dataclass(frozen=True, order=True)
class Precision:
    """Bit-widths for one execution precision.

    ``weight_bits`` and ``act_bits`` are usually equal (the paper's setting),
    but asymmetric precisions (e.g. 4-bit × 2-bit, Sec. 3.2.1) are supported
    because the accelerator schedule handles them.
    ``None`` bits denote full precision (no quantisation).
    """

    weight_bits: Optional[int]
    act_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.act_bits is None and self.weight_bits is not None:
            object.__setattr__(self, "act_bits", self.weight_bits)
        for bits in (self.weight_bits, self.act_bits):
            if bits is not None and not (1 <= bits <= 32):
                raise ValueError(f"bit-width must be in [1, 32], got {bits}")

    @property
    def is_full_precision(self) -> bool:
        return self.weight_bits is None

    @property
    def key(self) -> Union[str, int]:
        """Hashable key used for SBN branches and result tables."""
        if self.is_full_precision:
            return "fp"
        if self.weight_bits == self.act_bits:
            return int(self.weight_bits)
        return f"{self.weight_bits}w{self.act_bits}a"

    @property
    def symmetric_bits(self) -> int:
        """The single bit-width when weights and activations match."""
        if self.is_full_precision:
            raise ValueError("full precision has no fixed bit-width")
        if self.weight_bits != self.act_bits:
            raise ValueError("precision is asymmetric")
        return int(self.weight_bits)

    def bit_operations_per_mac(self) -> int:
        """Number of 1-bit x 1-bit operations in one MAC at this precision."""
        if self.is_full_precision:
            return 32 * 32
        return int(self.weight_bits) * int(self.act_bits)

    def __str__(self) -> str:
        if self.is_full_precision:
            return "FP32"
        return f"{self.weight_bits}bx{self.act_bits}b"


FULL_PRECISION = Precision(None)


class PrecisionSet:
    """An ordered set of candidate precisions for RPS training/inference."""

    def __init__(self, precisions: Iterable[Union[int, Precision]]) -> None:
        resolved: List[Precision] = []
        for p in precisions:
            resolved.append(p if isinstance(p, Precision) else Precision(int(p)))
        if not resolved:
            raise ValueError("precision set must not be empty")
        seen = set()
        unique: List[Precision] = []
        for p in resolved:
            if p.key not in seen:
                seen.add(p.key)
                unique.append(p)
        self._precisions: List[Precision] = unique

    # ------------------------------------------------------------------
    @classmethod
    def from_range(cls, low: int, high: int, step: int = 1) -> "PrecisionSet":
        """Construct e.g. 4–16 bit (the paper's default RPS set)."""
        if low > high:
            raise ValueError("low must not exceed high")
        return cls(range(low, high + 1, step))

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Precision]:
        return iter(self._precisions)

    def __len__(self) -> int:
        return len(self._precisions)

    def __contains__(self, item: Union[int, Precision]) -> bool:
        precision = item if isinstance(item, Precision) else Precision(int(item))
        return any(p.key == precision.key for p in self._precisions)

    def __getitem__(self, index: int) -> Precision:
        return self._precisions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrecisionSet):
            return NotImplemented
        return [p.key for p in self] == [p.key for p in other]

    def __repr__(self) -> str:
        return f"PrecisionSet({[str(p) for p in self._precisions]})"

    # ------------------------------------------------------------------
    @property
    def keys(self) -> List[Union[str, int]]:
        return [p.key for p in self._precisions]

    @property
    def bit_widths(self) -> List[int]:
        return [p.symmetric_bits for p in self._precisions]

    def sample(self, rng: np.random.Generator) -> Precision:
        """Draw one precision uniformly at random (the RPS switch)."""
        index = int(rng.integers(0, len(self._precisions)))
        return self._precisions[index]

    def lowest(self) -> Precision:
        return min(self._precisions, key=lambda p: p.bit_operations_per_mac())

    def highest(self) -> Precision:
        return max(self._precisions, key=lambda p: p.bit_operations_per_mac())

    def restrict(self, max_bits: int) -> "PrecisionSet":
        """Return the subset with symmetric bit-width <= ``max_bits``.

        Used by the instant robustness-efficiency trade-off (Sec. 2.5 /
        Fig. 11): shrinking the inference set to lower precisions trades
        robustness for average efficiency without retraining.
        """
        subset = [p for p in self._precisions if p.symmetric_bits <= max_bits]
        if not subset:
            raise ValueError(f"no precision in the set is <= {max_bits} bits")
        return PrecisionSet(subset)


#: The paper's default RPS candidate set (Sec. 4.2: "4~16-bit by default").
DEFAULT_RPS_SET = PrecisionSet.from_range(4, 16)
