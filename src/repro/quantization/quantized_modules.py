"""Quantisation-aware layers and model-level precision switching.

``QuantConv2d`` / ``QuantLinear`` behave exactly like their ``repro.nn``
counterparts at full precision; when an execution :class:`Precision` is
assigned they fake-quantise both their weights and their input activations
with the linear quantizer before computing the layer, which is the
quantisation model used throughout the paper (same bit-width for weights and
activations, per Sec. 4.1).

Quantised *weights* are cached per ``(precision, weight version)``: weights
only change when an optimizer steps (which bumps the parameter version), so
attack inner loops, evaluation sweeps and random-precision switching reuse
the rounded weights — and the conv layer's GEMM repack of them — instead of
re-quantising every forward.  The straight-through-estimator backward is
rebuilt per forward from the cached pass mask, so gradients are identical to
an uncached run.  ``REPRO_NN_QUANT_CACHE=0`` disables the cache.

``set_model_precision`` is the single entry point used by RPS training,
RPS inference and the attack implementations: it walks a model, assigns the
execution precision to every quantisation-aware layer and flips every
:class:`SwitchableBatchNorm2d` to the matching branch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import config
from ..nn import functional as F
from ..nn.layers import Conv2d, Linear, SwitchableBatchNorm2d
from ..nn.module import Module
from ..nn.tensor import Tensor, is_grad_enabled
from ..nn.workspace import default_workspace
from .linear_quantizer import QuantizerConfig, fake_quantize, quantize_with_mask
from .precision import FULL_PRECISION, Precision

__all__ = [
    "QuantConv2d",
    "QuantLinear",
    "set_model_precision",
    "get_model_precision",
    "quantized_layers",
]


def _cache_enabled() -> bool:
    return config.nn_quant_cache_enabled()


class _QuantMixin:
    """Shared precision bookkeeping for quantisation-aware layers."""

    def _init_quant(self) -> None:
        self.precision: Precision = FULL_PRECISION
        # precision.key -> [(id(data), version), w_q data, pass mask, gemm repack]
        self._wq_cache = {}

    def set_precision(self, precision: Precision) -> None:
        self.precision = precision

    # ------------------------------------------------------------------
    def _quantized_weight_entry(self, precision: Precision) -> list:
        weight = self.weight
        tag = (id(weight.data), weight.version)
        entry = self._wq_cache.get(precision.key)
        if entry is None or entry[0] != tag or not _cache_enabled():
            cfg = QuantizerConfig(bits=int(precision.weight_bits), symmetric=True)
            data, mask = quantize_with_mask(weight.data, cfg)
            entry = [tag, data, mask, None]
            self._wq_cache[precision.key] = entry
        return entry

    def _quantized_weight(self, precision: Precision,
                          entry: Optional[list] = None) -> Tensor:
        """Quantised-weight tensor, with an STE node when gradients flow."""
        weight = self.weight
        if entry is None:
            entry = self._quantized_weight_entry(precision)
        data, mask = entry[1], entry[2]
        if not (is_grad_enabled() and weight.requires_grad):
            return Tensor(data)

        def backward(grad_out: np.ndarray) -> None:
            weight.accumulate_grad(grad_out * mask, owned=True)

        return Tensor.make_from_op(data, (weight,), backward)

    def _activation_config(self, precision: Precision) -> QuantizerConfig:
        return QuantizerConfig(bits=int(precision.act_bits), symmetric=True)


class QuantConv2d(Conv2d, _QuantMixin):
    """Conv2d whose weights and input activations are fake-quantised."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(in_channels, out_channels, kernel_size, stride=stride,
                         padding=padding, bias=bias, rng=rng)
        self._init_quant()

    def forward(self, x: Tensor) -> Tensor:
        precision = self.precision
        if precision.is_full_precision:
            return super().forward(x)
        ws = default_workspace()
        x_q = fake_quantize(x, self._activation_config(precision), workspace=ws)
        entry = self._quantized_weight_entry(precision)
        w_q = self._quantized_weight(precision, entry)
        gemm = gemm_bwd = None
        if F.get_backend() in ("fast", "native"):
            # One pre-quantised pack per (precision, weight version) serves
            # both the BLAS GEMM and the native microkernel (which lane-pads
            # it on the fly; a no-op at lane-aligned widths).
            if entry[3] is None:
                entry[3] = F.pack_gemm_weights(w_q.data)
            gemm, gemm_bwd = entry[3]
        return F.conv2d(x_q, w_q, self.bias, stride=self.stride,
                        padding=self.padding, workspace=ws, gemm_weight=gemm,
                        gemm_weight_bwd=gemm_bwd)


class QuantLinear(Linear, _QuantMixin):
    """Linear layer whose weights and input activations are fake-quantised."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(in_features, out_features, bias=bias, rng=rng)
        self._init_quant()

    def forward(self, x: Tensor) -> Tensor:
        precision = self.precision
        if precision.is_full_precision:
            return super().forward(x)
        x_q = fake_quantize(x, self._activation_config(precision),
                            workspace=default_workspace())
        w_q = self._quantized_weight(precision)
        return F.linear(x_q, w_q, self.bias)


def quantized_layers(model: Module) -> List[Module]:
    """Return every quantisation-aware layer in ``model`` (depth-first)."""
    return [m for m in model.modules() if isinstance(m, (QuantConv2d, QuantLinear))]


def set_model_precision(model: Module, precision: Precision) -> None:
    """Switch the whole model to ``precision``.

    Assigns the precision to every quantisation-aware layer and selects the
    matching switchable-batch-norm branch (falling back to the full-precision
    branch when the model has no branch for that bit-width, which keeps plain
    BN models usable).
    """
    for module in model.modules():
        if isinstance(module, (QuantConv2d, QuantLinear)):
            module.set_precision(precision)
        elif isinstance(module, SwitchableBatchNorm2d):
            key = precision.key
            if key in module.available_keys():
                module.switch_to(key)
            else:
                module.switch_to("fp")


def get_model_precision(model: Module) -> Optional[Precision]:
    """Return the common precision of the model's quantised layers.

    Returns ``None`` for a model without quantisation-aware layers, and raises
    if layers disagree (which would indicate a partially-switched model).
    """
    layers = quantized_layers(model)
    if not layers:
        return None
    precisions = {layer.precision.key for layer in layers}
    if len(precisions) > 1:
        raise RuntimeError(f"model layers hold mixed precisions: {sorted(map(str, precisions))}")
    return layers[0].precision
