"""Linear (uniform affine) quantizer with a straight-through estimator.

Follows the quantizer of Jacob et al. (CVPR 2018), the reference the paper
cites for its 8-bit linear quantizer: a tensor ``x`` is mapped to the integer
grid ``round(x / scale)`` clamped to the representable range, then de-quantised
back to ``q * scale``.  During training the rounding is non-differentiable, so
the backward pass uses the straight-through estimator (STE): gradients flow
unchanged through the rounding but are masked where the value saturated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor
from ..nn.workspace import Workspace, acquire_like as _acquire_like

__all__ = ["QuantizerConfig", "quantize_array", "quantize_with_mask",
           "fake_quantize", "compute_quant_scale", "quantize_data_into",
           "LinearQuantizer"]


@dataclass
class QuantizerConfig:
    """Configuration of a linear quantizer.

    ``symmetric`` quantisation maps to the signed range [-(2^(b-1)-1),
    2^(b-1)-1] (used for weights); asymmetric maps to [0, 2^b - 1] with a zero
    point (used for activations after ReLU).  ``per_channel`` enables one
    scale per output channel for weights.
    """

    bits: int
    symmetric: bool = True
    per_channel: bool = False
    channel_axis: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")

    @property
    def qmin(self) -> int:
        if self.symmetric:
            return -(2 ** (self.bits - 1) - 1)
        return 0

    @property
    def qmax(self) -> int:
        if self.symmetric:
            return 2 ** (self.bits - 1) - 1
        return 2 ** self.bits - 1


def _compute_scale(x: np.ndarray, config: QuantizerConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Return (scale, zero_point) arrays broadcastable against ``x``."""
    if config.per_channel:
        axes = tuple(i for i in range(x.ndim) if i != config.channel_axis)
        x_min = x.min(axis=axes, keepdims=True)
        x_max = x.max(axis=axes, keepdims=True)
    else:
        x_min = np.asarray(x.min())
        x_max = np.asarray(x.max())

    if config.symmetric:
        max_abs = np.maximum(np.abs(x_min), np.abs(x_max))
        scale = max_abs / max(config.qmax, 1)
        zero_point = np.zeros_like(scale)
    else:
        span = x_max - x_min
        scale = span / max(config.qmax - config.qmin, 1)
        zero_point = x_min

    scale = np.where(scale <= 1e-12, 1e-12, scale)
    return scale.astype(np.float32), zero_point.astype(np.float32)


def compute_quant_scale(x: np.ndarray, config: QuantizerConfig
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Public ``(scale, zero_point)`` of the linear quantizer for ``x``.

    Exactly the range computation used by :func:`fake_quantize` /
    :func:`quantize_with_mask`, exposed so inference plans can precompute the
    scale once and stream the elementwise quantisation through
    :func:`quantize_data_into` with bit-identical results.
    """
    return _compute_scale(x, config)


def quantize_data_into(src: np.ndarray, dst: np.ndarray, scale: np.ndarray,
                       qmin: int, qmax: int) -> np.ndarray:
    """Symmetric quantise-dequantise ``src`` into ``dst`` (data only, no STE).

    Performs the identical elementwise op sequence of the symmetric-scalar
    :func:`fake_quantize` forward (divide, rint, clip, multiply), so results
    are bitwise equal to the live training path; ``dst`` may be any
    broadcast-compatible view (e.g. the interior of a padded staging buffer).
    """
    np.divide(src, scale, out=dst)
    np.rint(dst, out=dst)
    np.clip(dst, qmin, qmax, out=dst)
    np.multiply(dst, scale, out=dst)
    return dst


def quantize_array(x: np.ndarray, config: QuantizerConfig,
                   scale: Optional[np.ndarray] = None,
                   zero_point: Optional[np.ndarray] = None) -> np.ndarray:
    """Quantise ``x`` to the integer grid and de-quantise back (numpy only)."""
    if scale is None or zero_point is None:
        scale, zero_point = _compute_scale(x, config)
    q = np.round((x - zero_point) / scale)
    q = np.clip(q, config.qmin, config.qmax)
    return (q * scale + zero_point).astype(np.float32)


def quantize_with_mask(x: np.ndarray, config: QuantizerConfig
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise-dequantise ``x`` and return ``(data, pass_mask)``.

    ``pass_mask`` marks values inside the representable range (the clipped
    STE mask).  Bitwise identical to :func:`fake_quantize`'s forward; used
    by the quantized-weight cache so a cached entry can rebuild the STE
    backward without recomputing the rounding.
    """
    scale, zero_point = _compute_scale(x, config)
    if config.symmetric and not config.per_channel:
        q = np.round(x / scale)
        clipped = np.clip(q, config.qmin, config.qmax)
        data = (clipped * scale).astype(np.float32)
    else:
        q = np.round((x - zero_point) / scale)
        clipped = np.clip(q, config.qmin, config.qmax)
        data = (clipped * scale + zero_point).astype(np.float32)
    return data, q == clipped


def fake_quantize(x: Tensor, config: QuantizerConfig,
                  workspace: Optional[Workspace] = None) -> Tensor:
    """Differentiable fake quantisation of a tensor using the STE.

    Forward: one-pass scale/round/clip quantise-dequantise written into
    workspace scratch (layout-preserving, so channels-last activations stay
    channels-last).  Backward: pass gradients straight through where the
    value fell inside the representable range, zero where it saturated (the
    standard clipped STE).
    """
    from ..nn.tensor import is_grad_enabled

    scale, zero_point = _compute_scale(x.data, config)
    symmetric_scalar = config.symmetric and not config.per_channel
    need_grad = is_grad_enabled() and x.requires_grad

    q = _acquire_like(workspace, x.data)
    if symmetric_scalar:
        # zero_point is identically 0 here; skipping it avoids two full-array
        # temporaries on the hot activation-quantisation path.
        np.divide(x.data, scale, out=q)
    else:
        np.subtract(x.data, zero_point, out=q)
        np.divide(q, scale, out=q)
    np.rint(q, out=q)

    if need_grad:
        out = _acquire_like(workspace, x.data)
        np.clip(q, config.qmin, config.qmax, out=out)
        pass_mask = _acquire_like(workspace, x.data, dtype=bool)
        np.equal(q, out, out=pass_mask)
    else:
        np.clip(q, config.qmin, config.qmax, out=q)
        out = q
    np.multiply(out, scale, out=out)
    if not symmetric_scalar:
        out += zero_point

    if not need_grad:
        return Tensor.make_from_op(out, (x,), lambda grad_out: None)

    def backward(grad_out: np.ndarray) -> None:
        # ``grad_out`` (this node's grad) is never read again after this
        # backward, so the STE mask is applied in place and the array is
        # adopted — no temporary.
        np.multiply(grad_out, pass_mask, out=grad_out)
        x.accumulate_grad(grad_out, owned=True)

    return Tensor.make_from_op(out, (x,), backward)


class LinearQuantizer:
    """Stateful linear quantizer with optional running-range calibration.

    For activations, using the instantaneous min/max of every batch makes the
    quantisation grid jitter between batches; a short exponential moving
    average (``ema_momentum``) stabilises it, matching common practice for the
    Jacob et al. quantizer.  For weights the range is recomputed every call
    (weights change slowly and per-call ranges are exact).
    """

    def __init__(self, config: QuantizerConfig, ema_momentum: Optional[float] = None) -> None:
        self.config = config
        self.ema_momentum = ema_momentum
        self._running_min: Optional[np.ndarray] = None
        self._running_max: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._running_min = None
        self._running_max = None

    def _updated_range(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x_min, x_max = np.asarray(x.min()), np.asarray(x.max())
        if self.ema_momentum is None:
            return x_min, x_max
        if self._running_min is None:
            self._running_min, self._running_max = x_min, x_max
        else:
            m = self.ema_momentum
            self._running_min = (1 - m) * self._running_min + m * x_min
            self._running_max = (1 - m) * self._running_max + m * x_max
        return self._running_min, self._running_max

    def __call__(self, x: Tensor) -> Tensor:
        cfg = self.config
        x_min, x_max = self._updated_range(x.data)
        if cfg.symmetric:
            max_abs = max(abs(float(x_min)), abs(float(x_max)))
            scale = np.float32(max(max_abs / max(cfg.qmax, 1), 1e-12))
            zero_point = np.float32(0.0)
        else:
            scale = np.float32(max((float(x_max) - float(x_min)) / max(cfg.qmax - cfg.qmin, 1), 1e-12))
            zero_point = np.float32(x_min)

        q = np.round((x.data - zero_point) / scale)
        saturate = (q < cfg.qmin) | (q > cfg.qmax)
        q = np.clip(q, cfg.qmin, cfg.qmax)
        out_data = (q * scale + zero_point).astype(np.float32)
        mask = ~saturate

        def backward(grad_out: np.ndarray) -> None:
            x.accumulate_grad(grad_out * mask)

        return Tensor.make_from_op(out_data, (x,), backward)
