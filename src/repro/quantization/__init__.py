"""Linear quantisation substrate: precisions, quantizers, quantised layers."""

from .linear_quantizer import (
    LinearQuantizer,
    QuantizerConfig,
    fake_quantize,
    quantize_array,
)
from .precision import DEFAULT_RPS_SET, FULL_PRECISION, Precision, PrecisionSet
from .quantized_modules import (
    QuantConv2d,
    QuantLinear,
    get_model_precision,
    quantized_layers,
    set_model_precision,
)

__all__ = [
    "Precision",
    "PrecisionSet",
    "FULL_PRECISION",
    "DEFAULT_RPS_SET",
    "QuantizerConfig",
    "LinearQuantizer",
    "fake_quantize",
    "quantize_array",
    "QuantConv2d",
    "QuantLinear",
    "set_model_precision",
    "get_model_precision",
    "quantized_layers",
]
