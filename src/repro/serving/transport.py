"""Shared-memory tensor transport for the multi-process serving fleet.

Moving request/response tensors between the fleet supervisor and its worker
processes through :mod:`multiprocessing`'s pickling path costs a serialize +
copy + deserialize round per hop.  :class:`TensorRing` replaces that with a
single-producer / single-consumer **byte ring over one
``multiprocessing.shared_memory`` segment**: the producer memcpys the tensor
payload into the ring and sends only a tiny descriptor (start counter, frame
length, dtype, shape) over the control pipe; the consumer copies the payload
straight out of shared memory.

Design notes, all pinned by ``tests/test_fleet_transport.py``:

* **Counters, not shared pointers.**  ``head`` (next write position) and
  ``tail`` (freed up to) are monotonically increasing absolute byte counters
  private to the *writer*; the physical offset is ``counter % capacity``.
  The reader learns frame positions from descriptors and reports consumption
  back through the control channel (:meth:`free_to`), so no mutable state is
  shared inside the segment and no cross-process lock exists.
* **Frames may wrap.**  A frame crossing the physical end of the segment is
  written in two slices; the reader reassembles.  No space is wasted on
  end-of-buffer padding.
* **Torn writes are detected, not trusted.**  Every frame carries a header
  (magic, sequence number, payload length, CRC32 of the payload) and a
  trailer echoing the sequence number.  A reader that sees a mismatched
  magic/seq/length/trailer/CRC gets :class:`RingDataError` — the fleet then
  falls back to the pickled in-band path for that tensor instead of serving
  corrupt bytes.
* **Graceful degradation.**  :meth:`write` returns ``None`` (instead of
  blocking or raising) when the frame would not fit — because the tensor is
  bigger than the whole ring or because unconsumed frames occupy it.  The
  caller falls back to sending the tensor inline through the control pipe,
  so a full or undersized ring degrades to exactly the pre-fleet transport.
"""

from __future__ import annotations

import struct
import zlib
from multiprocessing import shared_memory
from typing import Optional, Sequence, Tuple

import numpy as np

from ..faults import fault_point

__all__ = ["RingDataError", "TensorRing", "FrameDescriptor"]

#: ``(start_counter, frame_bytes, dtype_str, shape)`` — everything a reader
#: needs to recover one tensor from the ring.
FrameDescriptor = Tuple[int, int, str, Tuple[int, ...]]

_MAGIC = 0x52494E47                      # "RING"
_HEADER = struct.Struct("<IIQQ")         # magic, crc32(payload), seq, nbytes
_TRAILER = struct.Struct("<Q")           # seq again: torn-write canary


class RingDataError(RuntimeError):
    """A frame failed validation (torn write, reuse race, or corruption)."""


class TensorRing:
    """Single-producer single-consumer tensor ring over one shm segment.

    One side constructs with :meth:`create` (owning the segment name and the
    unlink responsibility); under the fleet's fork start method the other
    side simply inherits the object and uses :meth:`read` — attaching by
    name (:meth:`attach`) exists for spawn-style setups and tests.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owner: bool) -> None:
        self._shm = shm
        self.capacity = int(capacity)
        self.owner = owner
        self.head = 0                    # writer: absolute bytes written
        self.tail = 0                    # writer: absolute bytes freed
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, capacity: int, name: Optional[str] = None) -> "TensorRing":
        capacity = int(capacity)
        if capacity < _HEADER.size + _TRAILER.size + 1:
            raise ValueError(f"ring capacity {capacity} is too small for "
                             f"a single frame header")
        shm = shared_memory.SharedMemory(create=True, size=capacity, name=name)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "TensorRing":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    # Byte plumbing (wrap-aware)
    # ------------------------------------------------------------------
    def _copy_in(self, counter: int, data) -> None:
        buf = self._shm.buf
        view = memoryview(data)
        offset = counter % self.capacity
        first = min(len(view), self.capacity - offset)
        buf[offset:offset + first] = view[:first]
        if len(view) > first:
            buf[:len(view) - first] = view[first:]

    def _copy_out(self, counter: int, nbytes: int) -> bytes:
        buf = self._shm.buf
        offset = counter % self.capacity
        first = min(nbytes, self.capacity - offset)
        if nbytes <= first:
            return bytes(buf[offset:offset + nbytes])
        return bytes(buf[offset:offset + first]) + bytes(buf[:nbytes - first])

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def write(self, seq: int, array: np.ndarray) -> Optional[FrameDescriptor]:
        """Frame ``array`` into the ring; ``None`` when it does not fit.

        ``seq`` must be unique among in-flight frames (the fleet uses the
        request sequence number); it is embedded in header and trailer so
        the reader can detect torn or stale frames.
        """
        array = np.ascontiguousarray(array)
        payload = array.view(np.uint8).reshape(-1) if array.size else \
            np.empty(0, np.uint8)
        nbytes = array.nbytes
        total = _HEADER.size + nbytes + _TRAILER.size
        if total > self.capacity:
            return None                  # oversized: caller goes inline
        if self.head + total - self.tail > self.capacity:
            return None                  # full: caller goes inline
        crc = zlib.crc32(payload)
        # Fault seam: a firing ``corrupt`` spec flips a byte *after* the CRC
        # was computed, modelling a torn/bit-flipped write the reader must
        # catch — exactly what the checksum exists for.  (No-op — and no
        # copy — without an active plan.)
        if nbytes:
            payload = fault_point("transport.ring.write", payload)
        start = self.head
        self._copy_in(start, _HEADER.pack(_MAGIC, crc, seq, nbytes))
        if nbytes:
            self._copy_in(start + _HEADER.size, payload)
        self._copy_in(start + _HEADER.size + nbytes, _TRAILER.pack(seq))
        self.head = start + total
        return (start, total, array.dtype.str, tuple(array.shape))

    def free_to(self, counter: int) -> None:
        """Writer-side bookkeeping: the reader consumed up to ``counter``."""
        if counter > self.tail:
            self.tail = counter

    @property
    def used_bytes(self) -> int:
        return self.head - self.tail

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def read(self, descriptor: FrameDescriptor, seq: int) -> np.ndarray:
        """Recover (and copy out) the tensor of one frame descriptor.

        Raises :class:`RingDataError` when any integrity check fails; the
        returned array owns its memory (no view into the segment survives).
        """
        start, total, dtype_str, shape = descriptor
        magic, crc, frame_seq, nbytes = _HEADER.unpack(
            self._copy_out(start, _HEADER.size))
        if magic != _MAGIC:
            raise RingDataError(f"bad frame magic 0x{magic:08x} at {start}")
        if frame_seq != seq:
            raise RingDataError(f"frame seq {frame_seq} != expected {seq}")
        if _HEADER.size + nbytes + _TRAILER.size != total:
            raise RingDataError(f"frame length {nbytes} disagrees with "
                                f"descriptor total {total}")
        payload = self._copy_out(start + _HEADER.size, nbytes)
        # Fault seam: corrupt the copied-out bytes *before* verification —
        # models reading a frame the producer is concurrently overwriting.
        if nbytes:
            payload = fault_point("transport.ring.read", payload)
        (trailer_seq,) = _TRAILER.unpack(
            self._copy_out(start + _HEADER.size + nbytes, _TRAILER.size))
        if trailer_seq != seq:
            raise RingDataError(f"torn frame: trailer seq {trailer_seq} != "
                                f"{seq}")
        if zlib.crc32(payload) != crc:
            raise RingDataError(f"frame {seq} payload failed its checksum")
        # The .copy() drops the (bytes-backed, read-only) buffer aliasing so
        # no view into transient transport memory escapes to callers.
        return np.frombuffer(payload, dtype=np.dtype(dtype_str)) \
            .reshape(shape).copy()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, unlink: Optional[bool] = None) -> None:
        """Release the mapping; the owning side also unlinks the segment.

        Idempotent.  After the owner closes, :meth:`attach` with the old
        name raises ``FileNotFoundError`` — the leak check the fleet tests
        pin for every segment it ever created.
        """
        if self._closed:
            return
        self._closed = True
        unlink = self.owner if unlink is None else unlink
        try:
            self._shm.close()
        finally:
            if unlink:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "TensorRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def roundtrip_equals_pickle(array: np.ndarray) -> bool:
    """Reference helper: ring round-trip must match a pickle round-trip
    bit-for-bit (used by the transport tests as the identity oracle)."""
    import pickle

    ring = TensorRing.create(array.nbytes + 64)
    try:
        descriptor = ring.write(0, array)
        if descriptor is None:
            return False
        via_ring = ring.read(descriptor, 0)
        via_pickle = pickle.loads(pickle.dumps(array, protocol=5))
        return (via_ring.dtype == via_pickle.dtype
                and via_ring.shape == via_pickle.shape
                and via_ring.tobytes() == via_pickle.tobytes())
    finally:
        ring.close()
