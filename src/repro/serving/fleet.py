"""Multi-process RPS serving fleet: precision-sharded worker pool.

:class:`RPSServer` batches well, but executes every plan on one worker
thread of one process — the wrong shape for the ROADMAP's heavy-traffic
target.  :class:`FleetServer` is the process-pool tier above it:

* **N worker processes**, each owning its own
  :class:`~repro.inference.InferenceSession` (plans, quantised-weight caches
  and workspace arenas are per-process, so workers never contend),
* **precision-affinity sharding** — the supervisor draws each request's
  precision from the seeded stream *at submission* (same stream as
  ``RPSServer``) and routes it to the worker that owns that precision.
  Plans are compiled per precision, so affinity maximises plan-cache and
  micro-batch locality: a worker only ever executes the precisions it owns,
* **shared-memory tensor transport** — input/output tensors move through
  per-worker :class:`~repro.serving.transport.TensorRing` segments instead
  of the pickling pipe; only tiny descriptors travel in control messages.
  Full/oversized rings (and torn frames) degrade per-tensor to the inline
  pickled path,
* **a supervising respawn loop** — worker death (crash, OOM-kill, SIGKILL)
  is detected as EOF on the worker's control pipe; the supervisor forks a
  replacement and *requeues every in-flight request of the dead worker in
  original submission order*, so every accepted future resolves (drop-free,
  the ``RPSServer`` shutdown-drain guarantee held fleet-wide).

Determinism contract (pinned by ``tests/test_fleet.py`` and the chaos
suite): the precision-draw stream lives in the **supervisor**, so it is a
pure function of (seed, submission order) — worker count, worker death and
respawns never consume or reorder draws.  Label-level determinism
additionally needs deterministic micro-batch *composition*, because
activation-quantiser ranges are batch-global: with ``max_delay_ms=0``
batches are cut purely by count (every ``max_batch`` requests of one
precision, plus a final drain flush), which makes the full result stream a
pure function of (seed, submission order, ``max_batch``) — identical across
``workers=1/2/4`` and across a respawn.  With a non-zero delay, batch cuts
become timing-dependent (the usual latency/throughput trade).

Request-lifecycle robustness (pinned by ``tests/test_lifecycle.py`` and the
CI fault matrix): every accepted request carries an optional **deadline** —
expired requests are dropped from their micro-batch before execution and
resolve with :class:`~repro.serving.errors.DeadlineExceeded`; ``submit``
**sheds load** with :class:`~repro.serving.errors.RejectedError` once
in-flight requests hit ``queue_limit``; a supervisor **hang monitor**
escalates workers that hold pending requests without sending anything for
``hang_timeout_s`` (SIGSTOP, a wedged syscall, an injected hang) through the
same respawn/requeue path as death; and a torn/corrupt ring frame in either
direction is **retried once inline** (the pickled-pipe path has no ring CRC
to fail) instead of failing the batch.  All of it is exercised through the
named :func:`repro.faults.fault_point` sites ``fleet.worker.recv`` /
``fleet.worker.exec`` / ``fleet.worker.send``.

The fleet uses the ``fork`` start method: workers inherit the live model
(weights included) without pickling, and a respawned worker re-inherits the
supervisor's current state.  This is a Linux-first design, like the rest of
the native stack.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import config, faults
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization.precision import Precision, PrecisionSet
from .errors import DeadlineExceeded, RejectedError
from .scheduler import PrecisionSchedule, plan_precision_schedule
from .transport import RingDataError, TensorRing

__all__ = ["FleetConfig", "FleetServer", "FleetError", "WorkerCrashError",
           "RemoteExecutionError", "DeadlineExceeded", "RejectedError"]


class FleetError(RuntimeError):
    """Supervisor-side fleet failure (drain timeout, bad lifecycle call)."""


class WorkerCrashError(FleetError):
    """A worker died more times than ``max_restarts`` allows; the in-flight
    requests of its final incarnation fail with this."""


class RemoteExecutionError(RuntimeError):
    """A worker-side exception that could not be pickled back verbatim."""


@dataclass
class FleetConfig:
    """Tuning knobs of the process-pool serving tier."""

    #: Worker processes (``REPRO_SERVING_WORKERS``; 1 is a degenerate but
    #: valid fleet — useful as the determinism baseline).
    workers: int = field(default_factory=config.serving_workers)
    #: Per-precision micro-batch cut (same knob as the asyncio server).
    max_batch: int = field(default_factory=config.serving_max_batch)
    #: Max time a buffered request waits for its batch to fill.  ``0``
    #: switches to deterministic count-only batch cuts (see module docs).
    max_delay_ms: float = field(default_factory=config.serving_max_delay_ms)
    #: Seed of the supervisor-side precision draw stream.
    seed: int = 0
    #: Per-direction shared-memory ring capacity (MiB).
    ring_mb: float = field(default_factory=config.serving_ring_mb)
    #: ``shm`` rings or the ``inline`` pickled-pipe fallback.
    transport: str = field(default_factory=config.serving_transport)
    #: Respawn budget per worker slot before its in-flight requests fail.
    max_restarts: int = 3
    #: Optional (C, H, W) of incoming requests: lets workers warm their
    #: affinity precisions' compiled plans at spawn instead of first use.
    input_shape: Optional[Tuple[int, ...]] = None
    #: How many recent request latencies the stats window keeps.
    latency_window: int = 16384
    #: How long ``close()`` waits for the fleet-wide drain before failing
    #: the stragglers (``REPRO_SERVING_DRAIN_TIMEOUT_S``).
    drain_timeout_s: float = field(
        default_factory=config.serving_drain_timeout_s)
    #: In-flight request cap before ``submit`` sheds with ``RejectedError``
    #: (``REPRO_SERVING_QUEUE_LIMIT``; 0 = unbounded).
    queue_limit: int = field(default_factory=config.serving_queue_limit)
    #: Default per-request deadline in ms (``REPRO_SERVING_DEADLINE_MS``;
    #: 0 = none).  ``submit(..., deadline_ms=)`` overrides per request.
    deadline_ms: float = field(default_factory=config.serving_deadline_ms)
    #: Hang-monitor poll interval / worker idle-heartbeat period
    #: (``REPRO_SERVING_HEARTBEAT_S``).
    heartbeat_s: float = field(default_factory=config.serving_heartbeat_s)
    #: Silence budget before a worker holding pending requests is declared
    #: hung and escalated (``REPRO_SERVING_HANG_TIMEOUT_S``).  Must exceed
    #: the worst-case micro-batch execution time.
    hang_timeout_s: float = field(
        default_factory=config.serving_hang_timeout_s)
    #: How long an exited worker process may take to ``join`` before the
    #: supervisor gives up waiting (``REPRO_SERVING_JOIN_TIMEOUT_S``).
    join_timeout_s: float = field(
        default_factory=config.serving_join_timeout_s)


class _PendingRequest:
    __slots__ = ("seq", "x", "precision", "future", "enqueued_at",
                 "deadline", "inline_retry")

    def __init__(self, seq: int, x: np.ndarray, precision: Precision,
                 future: Future, enqueued_at: float,
                 deadline: Optional[float] = None) -> None:
        self.seq = seq
        self.x = x
        self.precision = precision
        self.future = future
        self.enqueued_at = enqueued_at
        #: Absolute ``time.monotonic()`` expiry, or None (no deadline).
        self.deadline = deadline
        #: Set after a torn/corrupt ring frame: the re-send bypasses the
        #: rings in both directions (the inline path has no CRC to fail).
        self.inline_retry = False


_STOP = object()


class _WorkerHandle:
    """Supervisor-side state of one worker slot incarnation."""

    __slots__ = ("slot", "generation", "process", "conn", "req_ring",
                 "resp_ring", "resp_consumed", "pending", "outbox",
                 "sender", "listener", "restarts", "drain_requested",
                 "flush_requested", "drained", "exited", "last_seen",
                 "plan_keys")

    def __init__(self, slot: int, generation: int, restarts: int) -> None:
        self.slot = slot
        self.generation = generation
        self.restarts = restarts
        self.process = None
        self.conn = None
        self.req_ring: Optional[TensorRing] = None
        self.resp_ring: Optional[TensorRing] = None
        self.resp_consumed = 0           # bytes we read from resp_ring
        self.pending: "OrderedDict[int, _PendingRequest]" = OrderedDict()
        self.outbox: "queue.Queue" = queue.Queue()
        self.sender: Optional[threading.Thread] = None
        self.listener: Optional[threading.Thread] = None
        self.drain_requested = False
        self.flush_requested = False
        self.drained = False
        self.exited = False
        #: ``time.monotonic()`` of the last message (any kind) from this
        #: worker; the hang monitor compares it against ``hang_timeout_s``.
        self.last_seen = time.monotonic()
        #: Plan-cache keys the worker last reported after a ``warm``.
        self.plan_keys: Optional[List[object]] = None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _pack_exception(error: BaseException) -> Tuple[Optional[bytes], str]:
    try:
        return pickle.dumps(error), repr(error)
    except Exception:
        return None, repr(error)


def _unpack_exception(payload: Optional[bytes], text: str) -> BaseException:
    if payload is not None:
        try:
            error = pickle.loads(payload)
            if isinstance(error, BaseException):
                return error
        except Exception:
            pass
    return RemoteExecutionError(text)


def _worker_main(slot: int, model: Module, cfg: FleetConfig, conn,
                 req_ring: Optional[TensorRing],
                 resp_ring: Optional[TensorRing],
                 warm_precisions: Sequence[Precision]) -> None:
    """Worker loop: buffer per precision, flush by count/delay/drain.

    Runs in a forked child; exits via ``os._exit`` so no inherited atexit
    hooks (engine flushes, benchmark recorders) fire from worker processes.
    Sends ``("hb",)`` heartbeats while idle so the supervisor's hang monitor
    can tell "waiting for traffic" from "wedged"; an injected
    :class:`~repro.faults.FaultError` exits with its own code so the
    supervisor's ordinary respawn path absorbs it like any crash.
    """
    exit_code = 0
    try:
        session = InferenceSession(model)
        if cfg.input_shape is not None and warm_precisions:
            session.warm(warm_precisions, (1, *cfg.input_shape))
        max_delay = max(0.0, float(cfg.max_delay_ms)) / 1000.0
        hb_interval = max(0.01, float(cfg.heartbeat_s))
        last_hb = time.monotonic()
        # precision.key -> [precision, [(seq, x, deadline, inline), ...],
        #                   batch_cut_at]
        buffers: "OrderedDict[object, list]" = OrderedDict()
        req_consumed = 0                 # bytes consumed from req_ring

        def flush(buf) -> None:
            precision, items, _ = buf
            buf[1] = []
            buf[2] = None
            now = time.monotonic()
            expired_seqs: List[int] = []
            live = []
            for item in items:
                if item[2] is not None and item[2] <= now:
                    expired_seqs.append(item[0])
                else:
                    live.append(item)
            items = live
            if expired_seqs:
                conn.send(("expired", expired_seqs, req_consumed))
            if not items:
                return
            seqs = [item[0] for item in items]
            inline_reply = any(item[3] for item in items)
            try:
                faults.fault_point("fleet.worker.exec")
                batch = np.stack([item[1] for item in items])
                labels = session.predict(batch, precision).astype(np.int64)
            except Exception as error:
                payload, text = _pack_exception(error)
                conn.send(("err", seqs, payload, text, req_consumed))
                return
            faults.fault_point("fleet.worker.send")
            descriptor = None
            if resp_ring is not None and not inline_reply:
                descriptor = resp_ring.write(seqs[0], labels)
            out = ("ring", descriptor) if descriptor is not None \
                else ("inline", labels)
            conn.send(("done", seqs, out, len(seqs), req_consumed))

        while True:
            timeout = hb_interval
            if max_delay > 0.0:
                deadlines = [buf[2] for buf in buffers.values() if buf[1]]
                if deadlines:
                    timeout = min(timeout, max(
                        0.0, min(deadlines) - time.monotonic()))
            if conn.poll(timeout):
                message = conn.recv()  # repro: noqa[no-unbounded-wait] — poll-guarded
                faults.fault_point("fleet.worker.recv")
                kind = message[0]
                if kind == "req":
                    (_, seq, precision, payload, resp_free, deadline,
                     resp_inline) = message
                    if resp_ring is not None:
                        resp_ring.free_to(resp_free)
                    try:
                        if payload[0] == "ring":
                            descriptor = payload[1]
                            x = req_ring.read(descriptor, seq)
                            req_consumed = max(req_consumed,
                                               descriptor[0] + descriptor[1])
                        else:
                            x = payload[1]
                    except RingDataError:
                        # Torn/corrupt request frame.  The frame's extent is
                        # known from the (pipe-delivered) descriptor, so
                        # consume it and ask the supervisor to re-send this
                        # request inline — the pickled path has no ring CRC
                        # to fail a second time.
                        req_consumed = max(req_consumed,
                                           descriptor[0] + descriptor[1])
                        conn.send(("retry", [seq], req_consumed))
                        continue
                    buf = buffers.get(precision.key)
                    if buf is None:
                        buf = buffers[precision.key] = [precision, [], None]
                    buf[1].append((seq, x, deadline, resp_inline))
                    if buf[2] is None and max_delay > 0.0:
                        buf[2] = time.monotonic() + max_delay
                    if len(buf[1]) >= cfg.max_batch:
                        flush(buf)
                elif kind == "flush":
                    _, resp_free = message
                    if resp_ring is not None:
                        resp_ring.free_to(resp_free)
                    for buf in buffers.values():
                        if buf[1]:
                            flush(buf)
                elif kind == "warm":
                    _, precisions = message
                    if cfg.input_shape is not None and precisions:
                        session.warm(precisions, (1, *cfg.input_shape))
                    conn.send(("plans", session.cached_plan_keys))
                elif kind == "drain":
                    _, _final, resp_free = message
                    if resp_ring is not None:
                        resp_ring.free_to(resp_free)
                    for buf in buffers.values():
                        if buf[1]:
                            flush(buf)
                    conn.send(("drained", req_consumed))
                    break
            else:
                now = time.monotonic()
                for buf in buffers.values():
                    if buf[1] and buf[2] is not None and buf[2] <= now:
                        flush(buf)
                if now - last_hb >= hb_interval:
                    conn.send(("hb",))
                    last_hb = now
    except (EOFError, OSError, KeyboardInterrupt):
        exit_code = 1                    # supervisor vanished mid-recv/send
    except faults.FaultError:
        exit_code = 3                    # injected crash: respawn absorbs it
    except BaseException:
        exit_code = 2                    # startup/systematic failure
        import traceback
        traceback.print_exc()
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(exit_code)


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

class FleetServer:
    """Precision-sharded multi-process serving fleet (see module docs).

    Synchronous API: :meth:`submit` returns a
    :class:`concurrent.futures.Future` resolving to the predicted label.
    ``RPSServer(workers=N)`` wraps this class behind the existing asyncio
    interface.
    """

    def __init__(self, model: Module, precision_set: PrecisionSet,
                 fleet_config: Optional[FleetConfig] = None) -> None:
        self.model = model
        self.precision_set = precision_set
        self.config = fleet_config or FleetConfig()
        if self.config.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if self.config.transport not in config.SERVING_TRANSPORTS:
            raise ValueError(f"unknown transport {self.config.transport!r}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:        # pragma: no cover - non-Linux
            raise FleetError(
                "the serving fleet requires the fork start method "
                "(Linux); use RPSServer(workers=1) here") from error
        self.rng = np.random.default_rng(self.config.seed)
        self._cond = threading.Condition()
        self._slots: List[Optional[_WorkerHandle]] = []
        self._affinity: Dict[object, int] = {}
        self._started = False
        self._closing = False
        self._next_seq = 0
        # --- metrics (all guarded by _cond's lock) ---
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)
        self._batch_sizes: Deque[int] = deque(maxlen=self.config.latency_window)
        self._precision_counts: Dict[object, int] = {}
        self._completed = 0
        self._failed = 0
        self._respawns = 0
        self._shed = 0
        self._deadline_expired = 0
        self._hangs = 0
        self._ring_retries = 0
        self._ring_frames = 0
        self._inline_fallbacks = 0
        self._started_at: Optional[float] = None
        self._last_done_at: Optional[float] = None
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetServer":
        with self._cond:
            if self._started:
                return self
            if self._closing:
                raise FleetError("fleet already closed; build a new one")
            self._rebuild_affinity()
            self._slots = [None] * self.config.workers
            for slot in range(self.config.workers):
                self._spawn_locked(slot, restarts=0)
            self._started = True
            self._started_at = time.perf_counter()
            self._monitor = threading.Thread(target=self._monitor_loop,
                                             daemon=True,
                                             name="fleet-hang-monitor")
            self._monitor.start()
        return self

    def close(self) -> None:
        """Drain every accepted request fleet-wide, then stop all workers.

        Drop-free drain guarantee: ``submit`` rejects once ``close`` has
        begun; each worker receives its drain sentinel *behind* every
        already-routed request, flushes its partial batches and exits; a
        worker that dies mid-drain is respawned, its in-flight requests
        requeued, and the drain re-sent — so every accepted future resolves
        before ``close`` returns (with its label, or exceptionally after
        ``max_restarts`` crashes).
        """
        with self._cond:
            if not self._started:
                return
            self._closing = True
            for handle in self._slots:
                if handle is not None and not handle.exited:
                    handle.drain_requested = True
                    handle.outbox.put(("drain",))
            deadline = time.monotonic() + self.config.drain_timeout_s
            while not all(h is None or h.exited for h in self._slots):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._force_stop_locked()
                    raise FleetError(
                        f"fleet drain timed out after "
                        f"{self.config.drain_timeout_s:.0f}s")
                self._cond.wait(timeout=min(remaining, 0.5))
            self._started = False
            self._monitor_stop.set()

    def _force_stop_locked(self) -> None:
        for handle in self._slots:
            if handle is None:
                continue
            for request in handle.pending.values():
                if not request.future.done():
                    request.future.set_exception(
                        FleetError("fleet drain timed out"))
            handle.pending.clear()
            handle.outbox.put(_STOP)
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
            try:
                handle.conn.close()
            except Exception:
                pass
            for ring in (handle.req_ring, handle.resp_ring):
                if ring is not None:
                    ring.close()
            handle.exited = True
        self._started = False
        self._monitor_stop.set()

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Spawning / respawning
    # ------------------------------------------------------------------
    def _rebuild_affinity(self) -> None:
        """Precision -> worker slot, round-robin over the set's order.

        One precision never spans two workers (plan-cache locality and the
        determinism contract both depend on it); a worker may own several
        precisions when the set is larger than the fleet.
        """
        self._affinity = {p.key: i % self.config.workers
                          for i, p in enumerate(self.precision_set)}

    def _warm_precisions_for(self, slot: int) -> List[Precision]:
        return [p for p in self.precision_set
                if self._affinity.get(p.key) == slot]

    def _spawn_locked(self, slot: int, restarts: int) -> _WorkerHandle:
        old = self._slots[slot] if self._slots[slot] is not None else None
        generation = 0 if old is None else old.generation + 1
        handle = _WorkerHandle(slot, generation, restarts)
        sup_conn, wrk_conn = self._ctx.Pipe(duplex=True)
        handle.conn = sup_conn
        if self.config.transport == "shm":
            capacity = max(4096, int(self.config.ring_mb * (1 << 20)))
            handle.req_ring = TensorRing.create(capacity)
            handle.resp_ring = TensorRing.create(capacity)
        handle.process = self._ctx.Process(
            target=_worker_main,
            args=(slot, self.model, self.config, wrk_conn, handle.req_ring,
                  handle.resp_ring, self._warm_precisions_for(slot)),
            daemon=True, name=f"rps-fleet-{slot}-g{generation}")
        handle.process.start()
        # Close the supervisor's copy of the worker end right away: EOF on
        # sup_conn is the death signal, and it only fires once every copy
        # of wrk_conn is gone.
        wrk_conn.close()
        handle.sender = threading.Thread(target=self._sender_loop,
                                         args=(handle,), daemon=True,
                                         name=f"fleet-send-{slot}")
        handle.listener = threading.Thread(target=self._listener_loop,
                                           args=(handle,), daemon=True,
                                           name=f"fleet-recv-{slot}")
        self._slots[slot] = handle
        handle.sender.start()
        handle.listener.start()
        return handle

    def _respawn_locked(self, dead: _WorkerHandle) -> None:
        """Replace a dead worker and requeue its in-flight requests.

        Requeueing preserves original submission order, and results only
        ever resolve from a ``done`` message, so re-executing a batch the
        dead worker had finished-but-not-reported is invisible to callers.
        """
        pending = dead.pending
        dead.pending = OrderedDict()
        self._respawns += 1
        handle = self._spawn_locked(dead.slot, restarts=dead.restarts + 1)
        handle.pending = pending
        handle.drain_requested = dead.drain_requested
        handle.flush_requested = dead.flush_requested
        now = time.monotonic()
        for seq, request in list(pending.items()):
            if request.deadline is not None and request.deadline <= now:
                # Already expired while its worker was dying: resolving it
                # here beats re-executing a batch nobody is waiting for.
                pending.pop(seq)
                self._deadline_expired += 1
                if not request.future.done():
                    request.future.set_exception(DeadlineExceeded(
                        f"request {seq} missed its deadline during a "
                        f"worker respawn"))
                continue
            handle.outbox.put(("req", request))
        if handle.flush_requested:
            # A flush issued before the crash may have died with the worker;
            # conservatively re-flush behind the requeued requests so no
            # flush-waiter hangs (see the flush() determinism caveat).
            handle.outbox.put(("flush",))
        if handle.drain_requested:
            handle.outbox.put(("drain",))

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        if handle.process is not None:
            handle.process.join(timeout=self.config.join_timeout_s)
        handle.outbox.put(_STOP)
        with self._cond:
            if handle.exited:
                return
            try:
                handle.conn.close()
            except Exception:
                pass
            for ring in (handle.req_ring, handle.resp_ring):
                if ring is not None:
                    ring.close()
            if handle.drained and not handle.pending:
                handle.exited = True            # clean post-drain exit
            elif handle.restarts >= self.config.max_restarts:
                error = WorkerCrashError(
                    f"fleet worker {handle.slot} died "
                    f"{handle.restarts + 1} times (max_restarts="
                    f"{self.config.max_restarts}); failing its "
                    f"{len(handle.pending)} in-flight request(s)")
                for request in handle.pending.values():
                    self._failed += 1
                    if not request.future.done():
                        request.future.set_exception(error)
                handle.pending.clear()
                handle.exited = True
            else:
                handle.exited = True
                self._respawn_locked(handle)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Hang monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        """Escalate workers that hold pending requests in silence.

        A dead worker announces itself as EOF on its pipe; a *hung* one
        (SIGSTOP, wedged syscall, injected hang) just goes quiet.  Idle
        workers heartbeat, so "pending requests + nothing heard for
        ``hang_timeout_s``" means stuck — kill the process and let the
        ordinary exit path respawn it and requeue its in-flight requests.
        """
        while not self._monitor_stop.wait(self.config.heartbeat_s):
            now = time.monotonic()
            victims: List[_WorkerHandle] = []
            with self._cond:
                for handle in self._slots:
                    if handle is None or handle.exited:
                        continue
                    if handle.pending and \
                            now - handle.last_seen > self.config.hang_timeout_s:
                        self._hangs += 1
                        handle.last_seen = now   # one escalation per hang
                        victims.append(handle)
            for handle in victims:
                if handle.process is not None and handle.process.is_alive():
                    handle.process.kill()

    # ------------------------------------------------------------------
    # Sender / listener threads
    # ------------------------------------------------------------------
    def _sender_loop(self, handle: _WorkerHandle) -> None:
        while True:
            item = handle.outbox.get()
            if item is _STOP:
                return
            try:
                if item[0] == "req":
                    request: _PendingRequest = item[1]
                    descriptor = None
                    if handle.req_ring is not None and \
                            not request.inline_retry:
                        descriptor = handle.req_ring.write(request.seq,
                                                           request.x)
                    if descriptor is not None:
                        payload = ("ring", descriptor)
                    else:
                        payload = ("inline", request.x)
                    with self._cond:
                        if descriptor is not None:
                            self._ring_frames += 1
                        else:
                            self._inline_fallbacks += 1
                    handle.conn.send(("req", request.seq, request.precision,
                                      payload, handle.resp_consumed,
                                      request.deadline, request.inline_retry))
                elif item[0] == "warm":
                    handle.conn.send(("warm", item[1]))
                elif item[0] == "flush":
                    handle.conn.send(("flush", handle.resp_consumed))
                else:                        # drain
                    handle.conn.send(("drain", True, handle.resp_consumed))
            except (OSError, ValueError, BrokenPipeError):
                # Worker died (or conn closed): everything unsent stays in
                # `pending`, the respawn path re-primes a fresh outbox.
                return

    def _listener_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                if not handle.conn.poll(0.5):
                    continue
                message = handle.conn.recv()  # repro: noqa[no-unbounded-wait] — poll-guarded
            except (EOFError, OSError, ValueError):
                break
            handle.last_seen = time.monotonic()
            kind = message[0]
            if kind == "hb":
                continue
            if kind == "done":
                self._on_done(handle, message)
            elif kind == "err":
                self._on_error(handle, message)
            elif kind == "expired":
                self._on_expired(handle, message)
            elif kind == "retry":
                self._on_retry(handle, message)
            elif kind == "plans":
                with self._cond:
                    handle.plan_keys = message[1]
                    self._cond.notify_all()
            elif kind == "drained":
                with self._cond:
                    if handle.req_ring is not None:
                        handle.req_ring.free_to(message[1])
                    handle.drained = True
                    self._cond.notify_all()
        self._on_worker_exit(handle)

    def _on_done(self, handle: _WorkerHandle, message) -> None:
        _, seqs, out, batch_size, req_consumed = message
        try:
            if out[0] == "ring":
                labels = handle.resp_ring.read(out[1], seqs[0])
                handle.resp_consumed = max(handle.resp_consumed,
                                           out[1][0] + out[1][1])
            else:
                labels = out[1]
        except RingDataError:
            # Response frame torn/corrupt.  The worker already dropped the
            # batch from its buffers, but the requests are still pending
            # here — re-send them forced inline (no ring CRC on that path);
            # the worker re-executes and replies inline, and results still
            # only ever resolve from a clean ``done``.
            handle.resp_consumed = max(handle.resp_consumed,
                                       out[1][0] + out[1][1])
            self._retry_inline(handle, seqs)
            return
        done_at = time.perf_counter()
        with self._cond:
            if handle.req_ring is not None:
                handle.req_ring.free_to(req_consumed)
            self._last_done_at = done_at
            self._batch_sizes.append(int(batch_size))
            for seq, label in zip(seqs, labels):
                request = handle.pending.pop(seq, None)
                if request is None or request.future.done():
                    continue
                self._latencies.append(done_at - request.enqueued_at)
                self._completed += 1
                key = request.precision.key
                self._precision_counts[key] = \
                    self._precision_counts.get(key, 0) + 1
                request.future.set_result(int(label))
            self._cond.notify_all()

    def _on_error(self, handle: _WorkerHandle, message) -> None:
        _, seqs, payload, text, req_consumed = message
        error = _unpack_exception(payload, text)
        with self._cond:
            if handle.req_ring is not None:
                handle.req_ring.free_to(req_consumed)
        self._resolve_error(handle, seqs, error)

    def _on_expired(self, handle: _WorkerHandle, message) -> None:
        """Worker dropped these requests from a micro-batch: deadline hit."""
        _, seqs, req_consumed = message
        with self._cond:
            if handle.req_ring is not None:
                handle.req_ring.free_to(req_consumed)
            for seq in seqs:
                request = handle.pending.pop(seq, None)
                if request is None or request.future.done():
                    continue
                self._deadline_expired += 1
                request.future.set_exception(DeadlineExceeded(
                    f"request {seq} missed its deadline before execution"))
            self._cond.notify_all()

    def _on_retry(self, handle: _WorkerHandle, message) -> None:
        """Worker could not read a request frame: re-send it inline."""
        _, seqs, req_consumed = message
        with self._cond:
            if handle.req_ring is not None:
                handle.req_ring.free_to(req_consumed)
        self._retry_inline(handle, seqs)

    def _retry_inline(self, handle: _WorkerHandle, seqs) -> None:
        with self._cond:
            for seq in seqs:
                request = handle.pending.get(seq)
                if request is None or request.future.done():
                    continue
                self._ring_retries += 1
                request.inline_retry = True
                handle.outbox.put(("req", request))
            self._cond.notify_all()

    def _resolve_error(self, handle: _WorkerHandle, seqs,
                       error: BaseException) -> None:
        with self._cond:
            for seq in seqs:
                request = handle.pending.pop(seq, None)
                if request is None or request.future.done():
                    continue
                self._failed += 1
                request.future.set_exception(error)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def draw_precision(self) -> Precision:
        """Supervisor-side RPS draw (deterministic in submission order)."""
        return self.precision_set.sample(self.rng)

    def submit(self, x: np.ndarray,
               deadline_ms: Optional[float] = None) -> Future:
        """Route one (C, H, W) input; resolves to the predicted label.

        ``deadline_ms`` (default: the ``deadline_ms`` config knob; 0/None =
        no deadline) bounds how stale the request may be when its
        micro-batch executes — expired requests are dropped pre-execution
        and resolve with :class:`DeadlineExceeded`.  When in-flight
        requests are at ``queue_limit`` the request is shed instead of
        queued: the returned future fails with :class:`RejectedError`
        without consuming a precision draw, so the label stream of the
        *accepted* requests stays deterministic.
        """
        with self._cond:
            if not self._started or self._closing:
                raise RuntimeError("fleet is not accepting requests; "
                                   "call start() / build a new fleet")
            limit = self.config.queue_limit
            if limit > 0:
                inflight = sum(len(h.pending) for h in self._slots
                               if h is not None)
                if inflight >= limit:
                    self._shed += 1
                    future: Future = Future()
                    future.set_exception(RejectedError(
                        f"request shed: {inflight} in-flight requests at "
                        f"queue_limit={limit}"))
                    return future
            if deadline_ms is None:
                deadline_ms = self.config.deadline_ms
            deadline = (time.monotonic() + deadline_ms / 1000.0
                        if deadline_ms else None)
            precision = self.draw_precision()
            seq = self._next_seq
            self._next_seq += 1
            handle = self._slots[self._affinity[precision.key]]
            if handle.exited:
                raise WorkerCrashError(
                    f"worker {handle.slot} (owning precision "
                    f"{precision.key!r}) exhausted its restart budget")
            request = _PendingRequest(seq, np.asarray(x, dtype=np.float32),
                                      precision, Future(),
                                      time.perf_counter(), deadline=deadline)
            handle.pending[seq] = request
            handle.outbox.put(("req", request))
            return request.future

    def submit_many(self, xs: Sequence[np.ndarray],
                    deadline_ms: Optional[float] = None) -> List[Future]:
        return [self.submit(x, deadline_ms=deadline_ms) for x in xs]

    def flush(self) -> None:
        """Flush every partial micro-batch fleet-wide without draining.

        Queued behind all already-routed requests per worker, so every
        request submitted before ``flush()`` resolves without waiting for
        ``close()`` — the round barrier of count-cut (``max_delay_ms=0``)
        serving and the fleet benchmark.  Flush points chosen at
        deterministic submission-order positions keep batch composition
        (and therefore labels) deterministic; after a worker crash the
        flush is conservatively re-sent behind the requeued requests, so
        composition identity across a crash is only guaranteed for the
        drain-aligned case.
        """
        with self._cond:
            if not self._started:
                return
            for handle in self._slots:
                if handle is not None and not handle.exited:
                    handle.flush_requested = True
                    handle.outbox.put(("flush",))

    def inflight(self) -> int:
        """Requests accepted but not yet resolved (chaos-test hook)."""
        with self._cond:
            return sum(len(h.pending) for h in self._slots if h is not None)

    def worker_pids(self) -> List[Optional[int]]:
        with self._cond:
            return [h.process.pid if h is not None and h.process is not None
                    else None for h in self._slots]

    # ------------------------------------------------------------------
    # Precision-set scheduling
    # ------------------------------------------------------------------
    def swap_precision_set(self, new_set: PrecisionSet) -> None:
        """Hot-swap the RPS draw set fleet-wide.

        In-flight requests keep the precision (and worker) they were routed
        with; subsequent submissions draw from ``new_set`` and route through
        the rebuilt affinity map.  When the fleet knows its ``input_shape``,
        each worker is sent a ``warm`` message for its newly-owned
        precisions — queued FIFO behind already-routed requests, ahead of
        later ones — so the first request per new precision no longer pays
        the plan build (the PR 6 follow-on; the build latency would
        otherwise trip tight deadlines).  Workers without a known shape
        still compile lazily on first batch.
        """
        with self._cond:
            self.precision_set = new_set
            self._rebuild_affinity()
            if self.config.input_shape is None or not self._started:
                return
            for slot, handle in enumerate(self._slots):
                if handle is None or handle.exited:
                    continue
                owned = self._warm_precisions_for(slot)
                if owned:
                    handle.outbox.put(("warm", owned))

    def plan_keys(self) -> Dict[int, Optional[List[object]]]:
        """Per-slot plan-cache keys last reported by a ``warm`` ack
        (``None`` until a worker has acked one) — pre-warm introspection
        for tests and operators."""
        with self._cond:
            return {h.slot: (list(h.plan_keys)
                             if h.plan_keys is not None else None)
                    for h in self._slots if h is not None}

    def apply_precision_schedule(self, accelerator, layers,
                                 caps: Sequence[Optional[int]] = (None, 12, 8),
                                 min_fps: Optional[float] = None,
                                 objective: str = "energy",
                                 ) -> Tuple[PrecisionSchedule,
                                            List[PrecisionSchedule]]:
        """Re-plan the live precision set fleet-wide from engine metrics.

        Identical semantics to ``RPSServer.apply_precision_schedule``; with
        ``REPRO_ENGINE_STORE_SOCKET`` pointing at a shared store service the
        scoring pass warm-starts from the fleet-wide cache.
        """
        chosen, candidates = plan_precision_schedule(
            accelerator, layers, self.precision_set, caps=caps,
            min_fps=min_fps, objective=objective)
        self.swap_precision_set(chosen.precision_set)
        return chosen, candidates

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Fleet-wide latency/throughput/batching/fault counters."""
        with self._cond:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            elapsed = ((self._last_done_at or time.perf_counter())
                       - (self._started_at or time.perf_counter()))
            return {
                "workers": self.config.workers,
                "completed": self._completed,
                "failed": self._failed,
                "respawns": self._respawns,
                "shed": self._shed,
                "deadline_expired": self._deadline_expired,
                "hangs": self._hangs,
                "throughput_rps": (self._completed / elapsed if elapsed > 0
                                   else 0.0),
                "latency_p50_ms": (float(np.percentile(latencies, 50)) * 1e3
                                   if latencies.size else None),
                "latency_p99_ms": (float(np.percentile(latencies, 99)) * 1e3
                                   if latencies.size else None),
                "mean_batch_size": (float(np.mean(self._batch_sizes))
                                    if self._batch_sizes else 0.0),
                "precision_counts": dict(sorted(
                    self._precision_counts.items(),
                    key=lambda kv: str(kv[0]))),
                "active_precisions": list(self.precision_set.keys),
                "transport": {
                    "kind": self.config.transport,
                    "ring_frames": self._ring_frames,
                    "inline_fallbacks": self._inline_fallbacks,
                    "ring_retries": self._ring_retries,
                },
            }
