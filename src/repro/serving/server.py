"""Asyncio micro-batching server for RPS inference.

The paper's deployment story is a stream of single-input requests, each
executed at a randomly drawn precision (Alg. 1, lines 14-19).  Serving that
stream naively — one forward per request, re-configuring the model each time
— wastes almost all of the hardware's batch efficiency.  :class:`RPSServer`
implements the standard micro-batching architecture on top of
:class:`repro.inference.InferenceSession`:

* every request draws its precision *at submission time* from a seeded
  generator (deterministic in submission order, the property the tests pin),
* a dispatcher coroutine coalesces queued requests into windows of up to
  ``max_batch`` requests, waiting at most ``max_delay_ms`` for the window to
  fill (the classic latency/throughput knob),
* each window is grouped by drawn precision and every group executes as one
  batched forward through the session's compiled plan for that precision,
  on a single worker thread (numpy releases the GIL inside BLAS, so the
  event loop stays responsive while a batch computes).

The active precision set can be **hot-swapped** under live traffic — either
directly (:meth:`swap_precision_set`) or from accelerator metrics via
:meth:`apply_precision_schedule`, which scores candidate sets with the
evaluation engine's cached ``rps_average_metrics`` (Sec. 2.5's instant
trade-off, driven by measured hardware numbers).  In-flight requests keep the
precision they drew; only later submissions see the new set.

With ``workers > 1`` (or ``REPRO_SERVING_WORKERS``) the server stops
dispatching locally altogether and fronts a
:class:`repro.serving.fleet.FleetServer`: submissions route to precision-
sharded worker *processes* over shared-memory rings, while this class keeps
its asyncio surface (``submit`` awaits the fleet future) and its drain and
seeded-draw-determinism contracts — the fleet enforces both supervisor-side.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import config
from ..faults import fault_point
from ..inference import InferenceSession
from ..nn.module import Module
from ..quantization.precision import Precision, PrecisionSet
from .errors import DeadlineExceeded, RejectedError
from .scheduler import PrecisionSchedule, plan_precision_schedule

__all__ = ["ServingConfig", "RPSServer"]


@dataclass
class ServingConfig:
    """Tuning knobs of the micro-batching dispatcher."""

    #: Maximum requests coalesced into one dispatch window.
    max_batch: int = field(default_factory=config.serving_max_batch)
    #: Maximum time (ms) a queued request waits for its window to fill.
    max_delay_ms: float = field(default_factory=config.serving_max_delay_ms)
    #: Seed of the per-request precision draw.
    seed: int = 0
    #: How many recent request latencies the stats window keeps.
    latency_window: int = 16384
    #: In-flight request cap before ``submit`` sheds with ``RejectedError``
    #: (``REPRO_SERVING_QUEUE_LIMIT``; 0 = unbounded).
    queue_limit: int = field(default_factory=config.serving_queue_limit)
    #: Default per-request deadline in ms (``REPRO_SERVING_DEADLINE_MS``;
    #: 0 = none).  ``submit(..., deadline_ms=)`` overrides per request.
    deadline_ms: float = field(default_factory=config.serving_deadline_ms)
    #: Optional (C, H, W) of incoming requests: enables eager plan
    #: pre-warming (at fleet spawn and on precision-set swaps).  When None
    #: the shape is learned from the first submitted request.
    input_shape: Optional[Tuple[int, ...]] = None


class _Request:
    __slots__ = ("x", "precision", "future", "enqueued_at", "deadline")

    def __init__(self, x: np.ndarray, precision: Precision,
                 future: "asyncio.Future", enqueued_at: float,
                 deadline: Optional[float] = None) -> None:
        self.x = x
        self.precision = precision
        self.future = future
        self.enqueued_at = enqueued_at
        #: Absolute ``time.monotonic()`` expiry, or None (no deadline).
        self.deadline = deadline


_STOP = object()


class RPSServer:
    """Micro-batching RPS inference server over one compiled session."""

    def __init__(self, model: Module, precision_set: PrecisionSet,
                 serving_config: Optional[ServingConfig] = None,
                 session: Optional[InferenceSession] = None,
                 workers: Optional[int] = None) -> None:
        self.model = model
        self.precision_set = precision_set
        self.config = serving_config or ServingConfig()
        self.workers = config.serving_workers() if workers is None \
            else max(1, int(workers))
        self.session = session or InferenceSession(model)
        self.rng = np.random.default_rng(self.config.seed)
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._fleet = None               # FleetServer when workers > 1
        self._drained_fleet_stats: Optional[Dict[str, object]] = None
        self._running = False
        # --- metrics ---
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)
        self._batch_sizes: Deque[int] = deque(maxlen=self.config.latency_window)
        self._precision_counts: Dict[object, int] = {}
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._deadline_expired = 0
        self._inflight = 0
        self._input_shape: Optional[Tuple[int, ...]] = self.config.input_shape
        self._started_at: Optional[float] = None
        self._last_done_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the dispatcher; warm the plans for the current set."""
        if self._running:
            return
        if self.workers > 1:
            # Process-pool mode: the fleet owns dispatching, sharding and
            # the precision-draw stream (same seed, same sample sequence).
            from .fleet import FleetConfig, FleetServer

            self._fleet = FleetServer(
                self.model, self.precision_set,
                FleetConfig(workers=self.workers,
                            max_batch=self.config.max_batch,
                            max_delay_ms=self.config.max_delay_ms,
                            seed=self.config.seed,
                            latency_window=self.config.latency_window,
                            queue_limit=self.config.queue_limit,
                            deadline_ms=self.config.deadline_ms,
                            input_shape=self.config.input_shape))
            await asyncio.get_running_loop().run_in_executor(
                None, self._fleet.start)
            self._running = True
            self._started_at = time.perf_counter()
            return
        self._queue = asyncio.Queue()
        # One worker thread serialises session access (plan execution swaps
        # module forwards); BLAS releases the GIL so the loop stays live.
        self._executor = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="rps-serve")
        self._running = True
        self._started_at = time.perf_counter()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop())

    async def stop(self) -> None:
        """Drain queued requests, then stop the dispatcher.

        Drain guarantee: ``submit`` rejects once ``stop`` has begun, and
        the stop sentinel is enqueued *behind* every already-accepted
        request, so the FIFO dispatcher serves all of them (and their
        futures resolve) before the loop exits — no queue entry is ever
        dropped.  ``tests/test_serving.py`` pins this with a stress test.
        """
        if not self._running:
            return
        self._running = False
        if self._fleet is not None:
            # The fleet's close() blocks on the fleet-wide drain; run it off
            # the event loop so in-flight futures can resolve meanwhile.
            fleet, self._fleet = self._fleet, None
            await asyncio.get_running_loop().run_in_executor(None,
                                                             fleet.close)
            self._drained_fleet_stats = fleet.stats()
            return
        await self._queue.put(_STOP)
        await self._dispatcher
        self._dispatcher = None
        self._executor.shutdown(wait=True)
        self._executor = None

    async def close(self) -> None:
        """Deployment-facing name for the drain-and-stop sequence.

        Delegates (rather than aliasing) so a subclass overriding
        :meth:`stop` keeps its teardown on both entry points.
        """
        await self.stop()

    async def __aenter__(self) -> "RPSServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def draw_precision(self) -> Precision:
        """Per-request RPS draw (deterministic in submission order)."""
        return self.precision_set.sample(self.rng)

    async def submit(self, x: np.ndarray,
                     deadline_ms: Optional[float] = None) -> int:
        """Serve one input of shape (C, H, W); returns the predicted label.

        The request's precision is drawn here, at submission time, so a
        seeded server assigns the same precision sequence to the same
        submission order regardless of how batches later coalesce.

        ``deadline_ms`` (default: the ``deadline_ms`` config knob; 0/None =
        none) bounds request staleness: a request whose deadline passes
        before its micro-batch executes is dropped pre-execution and raises
        :class:`DeadlineExceeded` here.  With in-flight requests at
        ``queue_limit`` the request is shed — :class:`RejectedError`,
        without consuming a precision draw.
        """
        if not self._running:
            raise RuntimeError("server is not running; call start() first")
        if self._fleet is not None:
            return await asyncio.wrap_future(
                self._fleet.submit(x, deadline_ms=deadline_ms))
        limit = self.config.queue_limit
        if limit > 0 and self._inflight >= limit:
            self._shed += 1
            raise RejectedError(f"request shed: {self._inflight} in-flight "
                                f"requests at queue_limit={limit}")
        if deadline_ms is None:
            deadline_ms = self.config.deadline_ms
        deadline = (time.monotonic() + deadline_ms / 1000.0
                    if deadline_ms else None)
        loop = asyncio.get_running_loop()
        request = _Request(np.asarray(x, dtype=np.float32),
                           self.draw_precision(), loop.create_future(),
                           time.perf_counter(), deadline=deadline)
        if self._input_shape is None:
            self._input_shape = tuple(request.x.shape)
        self._inflight += 1
        await self._queue.put(request)
        return await request.future

    async def submit_many(self, xs: Sequence[np.ndarray],
                          deadline_ms: Optional[float] = None) -> List[int]:
        """Submit a burst of requests concurrently and await all results."""
        return list(await asyncio.gather(
            *(self.submit(x, deadline_ms=deadline_ms) for x in xs)))

    # ------------------------------------------------------------------
    # Precision-set scheduling
    # ------------------------------------------------------------------
    def swap_precision_set(self, new_set: PrecisionSet) -> None:
        """Hot-swap the RPS inference set under live traffic.

        Requests already queued keep the precision they drew; subsequent
        submissions draw from ``new_set``.  Compiled plans for overlapping
        precisions stay cached in the session (per worker in fleet mode);
        plans for genuinely new precisions are **pre-warmed eagerly** when
        the input shape is known (configured or learned from traffic) —
        queued FIFO on the single worker thread behind in-flight batches —
        so the first request per new precision skips the plan-build latency
        spike (which would otherwise trip tight deadlines).
        """
        self.precision_set = new_set
        if self._fleet is not None:
            self._fleet.swap_precision_set(new_set)
            return
        if self._executor is not None and self._input_shape is not None:
            self._executor.submit(self.session.warm, list(new_set),
                                  (1, *self._input_shape))

    def apply_precision_schedule(self, accelerator, layers,
                                 caps: Sequence[Optional[int]] = (None, 12, 8),
                                 min_fps: Optional[float] = None,
                                 objective: str = "energy",
                                 ) -> Tuple[PrecisionSchedule,
                                            List[PrecisionSchedule]]:
        """Re-schedule the serving precision set from accelerator metrics.

        Scores ``caps`` with the evaluation engine's cached
        ``rps_average_metrics`` (see :func:`plan_precision_schedule`) and
        swaps to the winner.  Safe to call between requests on the event
        loop: the swap is a single attribute assignment.
        """
        chosen, candidates = plan_precision_schedule(
            accelerator, layers, self.precision_set, caps=caps,
            min_fps=min_fps, objective=objective)
        self.swap_precision_set(chosen.precision_set)
        return chosen, candidates

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        cfg = self.config
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            window: List[_Request] = [item]
            deadline = loop.time() + cfg.max_delay_ms / 1000.0
            while len(window) < cfg.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 max(remaining, 0.0))
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                window.append(nxt)
            await self._run_window(window)

    async def _run_window(self, window: List[_Request]) -> None:
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        live: List[_Request] = []
        for request in window:
            # Deadline check happens at the last moment before execution:
            # expired requests are dropped from the micro-batch (their slot
            # is not worth the batch-global quantiser work) and resolve
            # exceptionally instead of silently.
            if request.deadline is not None and request.deadline <= now:
                self._deadline_expired += 1
                self._inflight -= 1
                if not request.future.done():
                    request.future.set_exception(DeadlineExceeded(
                        "request missed its deadline before execution"))
                continue
            live.append(request)
        if not live:
            return
        groups: Dict[object, Tuple[Precision, List[_Request]]] = {}
        for request in live:
            entry = groups.get(request.precision.key)
            if entry is None:
                entry = groups[request.precision.key] = (request.precision, [])
            entry[1].append(request)
        self._batch_sizes.append(len(live))
        for precision, requests in groups.values():
            try:
                # Everything request-shaped stays inside the try: a
                # malformed input (e.g. mismatched (C, H, W) across a
                # coalesced group) must fail that group's futures, never
                # kill the dispatcher and strand every later waiter.
                fault_point("server.dispatch")
                batch = np.stack([r.x for r in requests])
                labels = await loop.run_in_executor(
                    self._executor,
                    lambda b=batch, p=precision: self.session.predict(b, p))
            except Exception as error:  # surface to every waiter
                for request in requests:
                    # Failed requests are counted separately and excluded
                    # from the latency window, so p50/p99/throughput always
                    # describe successfully served traffic only.
                    self._failed += 1
                    self._inflight -= 1
                    if not request.future.done():
                        request.future.set_exception(error)
                continue
            done = time.perf_counter()
            self._last_done_at = done
            key = precision.key
            self._precision_counts[key] = (self._precision_counts.get(key, 0)
                                           + len(requests))
            for request, label in zip(requests, labels):
                self._latencies.append(done - request.enqueued_at)
                self._completed += 1
                self._inflight -= 1
                if not request.future.done():
                    request.future.set_result(int(label))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Latency percentiles, throughput and batching behaviour so far.

        ``failed`` counts requests whose future resolved exceptionally;
        they are excluded from ``completed`` and from every latency /
        throughput figure.  In fleet mode this is the fleet's own stats
        dict (which additionally reports respawns and transport counters),
        kept available after ``stop()`` drained the fleet.
        """
        if self._fleet is not None:
            return self._fleet.stats()
        if self._drained_fleet_stats is not None:
            return dict(self._drained_fleet_stats)
        latencies = np.asarray(self._latencies, dtype=np.float64)
        elapsed = ((self._last_done_at or time.perf_counter())
                   - (self._started_at or time.perf_counter()))
        return {
            "completed": self._completed,
            "failed": self._failed,
            "shed": self._shed,
            "deadline_expired": self._deadline_expired,
            "throughput_rps": (self._completed / elapsed if elapsed > 0
                               else 0.0),
            "latency_p50_ms": (float(np.percentile(latencies, 50)) * 1e3
                               if latencies.size else None),
            "latency_p99_ms": (float(np.percentile(latencies, 99)) * 1e3
                               if latencies.size else None),
            "mean_batch_size": (float(np.mean(self._batch_sizes))
                                if self._batch_sizes else 0.0),
            "precision_counts": dict(sorted(self._precision_counts.items(),
                                            key=lambda kv: str(kv[0]))),
            "active_precisions": list(self.precision_set.keys),
        }
