"""Caller-visible request-lifecycle errors shared by both serving layers.

These resolve *futures* (or raise synchronously from ``submit``) — they are
part of the serving API contract, not internal plumbing, so they live in
their own module importable without pulling in the fleet.
"""

from __future__ import annotations

__all__ = ["DeadlineExceeded", "RejectedError"]


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired before execution; it was dropped from
    its micro-batch and never ran."""


class RejectedError(RuntimeError):
    """The server shed this request at submission: in-flight requests were
    at ``REPRO_SERVING_QUEUE_LIMIT`` (see ``serving_queue_limit``)."""
