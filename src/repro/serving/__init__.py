"""Async micro-batching serving layer for RPS inference.

Builds the ROADMAP's "serve ``rps_average_metrics`` behind an async API"
item on top of :mod:`repro.inference`: :class:`RPSServer` coalesces incoming
single-input requests into per-precision micro-batches executed through
compiled plans, and :func:`plan_precision_schedule` picks the serving
precision set from the evaluation engine's cached accelerator metrics.
"""

from .scheduler import PrecisionSchedule, plan_precision_schedule
from .server import RPSServer, ServingConfig

__all__ = [
    "PrecisionSchedule",
    "RPSServer",
    "ServingConfig",
    "plan_precision_schedule",
]
