"""Async micro-batching serving layer for RPS inference.

Builds the ROADMAP's "serve ``rps_average_metrics`` behind an async API"
item on top of :mod:`repro.inference`: :class:`RPSServer` coalesces incoming
single-input requests into per-precision micro-batches executed through
compiled plans, and :func:`plan_precision_schedule` picks the serving
precision set from the evaluation engine's cached accelerator metrics.

:mod:`repro.serving.fleet` scales the same contract across worker
*processes*: :class:`FleetServer` shards requests by drawn precision over N
workers (each owning its own plan cache), moves tensors through
:class:`~repro.serving.transport.TensorRing` shared-memory rings, and
survives worker death by respawning and requeueing in-flight requests.
``RPSServer(workers=N)`` delegates to it transparently.
"""

from .errors import DeadlineExceeded, RejectedError
from .fleet import (FleetConfig, FleetError, FleetServer,
                    RemoteExecutionError, WorkerCrashError)
from .scheduler import PrecisionSchedule, plan_precision_schedule
from .server import RPSServer, ServingConfig
from .transport import RingDataError, TensorRing

__all__ = [
    "DeadlineExceeded",
    "FleetConfig",
    "FleetError",
    "FleetServer",
    "PrecisionSchedule",
    "RPSServer",
    "RejectedError",
    "RemoteExecutionError",
    "RingDataError",
    "ServingConfig",
    "TensorRing",
    "WorkerCrashError",
    "plan_precision_schedule",
]
