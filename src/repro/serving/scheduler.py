"""Run-time RPS precision-set scheduling backed by accelerator metrics.

The instant robustness-efficiency trade-off of Sec. 2.5 says a deployed RPS
system can shrink its inference precision set at run time — no retraining —
to trade robustness for throughput/energy.  This module turns that knob into
a scheduling decision for the serving layer: candidate precision sets (the
full set restricted to a list of bit-width caps) are scored with
``Accelerator.rps_average_metrics``, which runs through the persistent,
process-sharded evaluation engine, so under live traffic every re-schedule
after the first is a cache hit (disk-warm across processes when
``REPRO_ENGINE_PERSIST`` is on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..quantization.precision import PrecisionSet

__all__ = ["PrecisionSchedule", "plan_precision_schedule"]


@dataclass
class PrecisionSchedule:
    """One scored candidate inference precision set."""

    cap: Optional[int]                # max bit-width (None = full set)
    precision_set: PrecisionSet
    average_fps: float
    average_energy: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "cap": self.cap,
            "precisions": list(self.precision_set.keys),
            "average_fps": self.average_fps,
            "average_energy": self.average_energy,
        }


def plan_precision_schedule(accelerator, layers, full_set: PrecisionSet,
                            caps: Sequence[Optional[int]] = (None, 12, 8),
                            min_fps: Optional[float] = None,
                            objective: str = "energy",
                            ) -> Tuple[PrecisionSchedule, List[PrecisionSchedule]]:
    """Choose the inference precision set to serve with.

    ``caps`` lists the candidate restrictions of ``full_set`` (``None`` keeps
    the whole set).  Each candidate is scored with the accelerator's batched
    ``rps_average_metrics`` (one engine pass, memoised).  Among the
    candidates meeting ``min_fps`` — or, when none does, the fastest
    candidate alone — the ``objective`` picks the winner:

    * ``"energy"`` — lowest average energy per inference (the default;
      restricting the set usually wins here),
    * ``"fps"`` — highest average throughput,
    * ``"robustness"`` — widest precision set (first feasible candidate with
      the most precisions), the conservative choice under an FPS floor.

    Returns ``(chosen, all_candidates)``.
    """
    if objective not in ("energy", "fps", "robustness"):
        raise ValueError(f"unknown scheduling objective {objective!r}")
    candidates: List[PrecisionSchedule] = []
    for cap in caps:
        subset = full_set if cap is None else full_set.restrict(cap)
        metrics = accelerator.rps_average_metrics(layers, subset)
        candidates.append(PrecisionSchedule(
            cap=cap, precision_set=subset,
            average_fps=float(metrics["average_fps"]),
            average_energy=float(metrics["average_energy"])))

    feasible = [c for c in candidates
                if min_fps is None or c.average_fps >= min_fps]
    if not feasible:
        # Nothing meets the floor: serve the fastest configuration.
        fastest = max(candidates, key=lambda c: c.average_fps)
        return fastest, candidates
    if objective == "energy":
        chosen = min(feasible, key=lambda c: c.average_energy)
    elif objective == "fps":
        chosen = max(feasible, key=lambda c: c.average_fps)
    else:
        chosen = max(feasible, key=lambda c: len(c.precision_set))
    return chosen, candidates
