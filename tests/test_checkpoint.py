"""Unit contract of :mod:`repro.checkpoint`.

Three layers: the manager's keep-last-K ring of atomic checksummed files and
its degrade-never-crash load path; bit-exact capture/restore of the full
trainer state (weights, optimizer scratch, schedule, rng stream, history,
extras); and the divergence sentinel's trip conditions.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import checkpoint as ckpt
from repro import io_atomic
from repro.defense import Trainer, TrainingConfig


def _payload(tag: int) -> dict:
    return {"tag": tag, "num_examples": 4}


class TestManagerRing:
    def test_save_stamps_schema_and_step(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path, keep=3)
        manager.save(7, _payload(0))
        loaded = manager.load_latest()
        assert loaded["schema"] == ckpt.CHECKPOINT_SCHEMA_VERSION
        assert loaded["step"] == 7

    def test_newest_step_wins(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path, keep=5)
        for step in (3, 12, 8):
            manager.save(step, _payload(step))
        assert manager.load_latest()["tag"] == 12

    def test_keep_last_k_prunes_oldest(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            manager.save(step, _payload(step))
        assert manager.steps() == [3, 4]

    def test_keep_floor_is_one(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path, keep=0)
        manager.save(1, _payload(1))
        manager.save(2, _payload(2))
        assert manager.steps() == [2]

    def test_empty_or_missing_directory_loads_none(self, tmp_path):
        assert ckpt.CheckpointManager(tmp_path / "nope").load_latest() is None
        assert ckpt.CheckpointManager(tmp_path).load_latest() is None

    def test_files_are_checksummed_envelopes(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path, keep=2)
        path = manager.save(5, _payload(5))
        assert path.read_bytes().startswith(io_atomic.ENVELOPE_MAGIC)


class TestDegrade:
    """A bad newest file never crashes a resume: exactly one warning per bad
    file, then the previous checkpoint in the ring wins."""

    def _ring(self, tmp_path, steps=(1, 2, 3)):
        manager = ckpt.CheckpointManager(tmp_path, keep=len(steps))
        for step in steps:
            manager.save(step, _payload(step))
        return manager

    def _assert_degrades(self, manager, expected_tag, bad_files=1):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = manager.load_latest()
        messages = [str(w.message) for w in caught]
        assert len(messages) == bad_files, messages
        assert all("checkpoint" in m for m in messages)
        if expected_tag is None:
            assert loaded is None
        else:
            assert loaded["tag"] == expected_tag

    def test_truncated_newest_degrades_with_one_warning(self, tmp_path):
        manager = self._ring(tmp_path)
        newest = manager.path_for(3)
        newest.write_bytes(newest.read_bytes()[:20])
        self._assert_degrades(manager, expected_tag=2)

    def test_corrupt_newest_degrades_with_one_warning(self, tmp_path):
        manager = self._ring(tmp_path)
        newest = manager.path_for(3)
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        newest.write_bytes(bytes(blob))
        self._assert_degrades(manager, expected_tag=2)

    def test_stale_schema_degrades_with_one_warning(self, tmp_path):
        manager = self._ring(tmp_path)
        body = io_atomic.pickle.dumps({"schema": -1, "tag": 99})
        manager.path_for(3).write_bytes(io_atomic.wrap_checksummed(body))
        self._assert_degrades(manager, expected_tag=2)

    def test_empty_file_degrades_with_one_warning(self, tmp_path):
        manager = self._ring(tmp_path)
        manager.path_for(3).write_bytes(b"")
        self._assert_degrades(manager, expected_tag=2)

    def test_every_file_bad_returns_none_with_one_warning_each(self, tmp_path):
        manager = self._ring(tmp_path)
        for step in (1, 2, 3):
            manager.path_for(step).write_bytes(b"garbage")
        self._assert_degrades(manager, expected_tag=None, bad_files=3)

    def test_healthy_ring_warns_never(self, tmp_path):
        manager = self._ring(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert manager.load_latest()["tag"] == 3


def _tiny_trainer(tiny_dataset, seed=5):
    from repro.models import preact_resnet18

    model = preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                            blocks_per_stage=(1, 1), seed=0)
    cfg = TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=seed,
                         lr_milestones=(2,))
    return Trainer(model, cfg)


class TestCaptureRestore:
    def test_round_trip_is_bit_exact(self, tiny_dataset):
        x, y = tiny_dataset.x_train[:64], tiny_dataset.y_train[:64]
        trainer = _tiny_trainer(tiny_dataset)
        trainer.train_batch(x[:32], y[:32])
        snap = ckpt.capture_training_state(trainer)

        # Diverge: more training mutates weights, momentum and the rng.
        trainer.train_batch(x[32:], y[32:])
        trainer.rng.random(17)
        trainer.history.record(1.0, 0.5)

        ckpt.restore_training_state(trainer, snap)
        snap2 = ckpt.capture_training_state(trainer)
        for key in snap["model"]:
            assert np.array_equal(snap["model"][key], snap2["model"][key])
        vel1 = snap["optimizer"]["state"]["velocity"]
        vel2 = snap2["optimizer"]["state"]["velocity"]
        assert sorted(vel1) == sorted(vel2)
        assert all(np.array_equal(vel1[i], vel2[i]) for i in vel1)
        assert snap["optimizer"]["lr"] == snap2["optimizer"]["lr"]
        assert snap["scheduler"] == snap2["scheduler"]
        assert snap["rng"] == snap2["rng"]
        assert snap["history"] == snap2["history"]

    def test_snapshot_is_isolated_from_later_training(self, tiny_dataset):
        x, y = tiny_dataset.x_train[:32], tiny_dataset.y_train[:32]
        trainer = _tiny_trainer(tiny_dataset)
        snap = ckpt.capture_training_state(trainer)
        before = {k: v.copy() for k, v in snap["model"].items()}
        trainer.train_batch(x, y)
        assert all(np.array_equal(before[k], snap["model"][k]) for k in before)

    def test_restore_bumps_parameter_versions(self, tiny_dataset):
        trainer = _tiny_trainer(tiny_dataset)
        snap = ckpt.capture_training_state(trainer)
        versions = [p.version for p in trainer.model.parameters()]
        ckpt.restore_training_state(trainer, snap)
        after = [p.version for p in trainer.model.parameters()]
        assert all(a > b for a, b in zip(after, versions))

    def test_restore_rejects_foreign_architecture(self, tiny_dataset):
        trainer = _tiny_trainer(tiny_dataset)
        snap = ckpt.capture_training_state(trainer)
        snap = dict(snap, model={"not.a.param": np.zeros(3, np.float32)})
        with pytest.raises(ValueError, match="does not match"):
            ckpt.restore_training_state(trainer, snap)

    def test_rng_stream_resumes_identically(self, tiny_dataset):
        trainer = _tiny_trainer(tiny_dataset)
        trainer.rng.random(5)
        snap = ckpt.capture_training_state(trainer)
        expected = trainer.rng.random(8)
        ckpt.restore_training_state(trainer, snap)
        assert np.array_equal(trainer.rng.random(8), expected)


class TestDivergenceSentinel:
    def _warmed(self, mult=10.0, norms=16):
        sentinel = ckpt.DivergenceSentinel(grad_mult=mult, min_history=8)
        for _ in range(norms):
            assert sentinel.observe(1.0, 2.0) is None
        return sentinel

    def test_healthy_batches_pass(self):
        self._warmed()

    def test_non_finite_loss_trips(self):
        sentinel = self._warmed()
        assert "loss" in sentinel.observe(float("nan"), 2.0)
        assert "loss" in sentinel.observe(float("inf"), 2.0)

    def test_non_finite_norm_trips(self):
        sentinel = self._warmed()
        assert "gradient" in sentinel.observe(1.0, float("nan"))

    def test_explosion_past_multiple_of_median_trips(self):
        sentinel = self._warmed(mult=10.0)
        assert sentinel.observe(1.0, 19.9) is None      # below 10 x median 2
        assert "median" in sentinel.observe(1.0, 25.0)

    def test_no_ratio_trip_before_min_history(self):
        sentinel = ckpt.DivergenceSentinel(grad_mult=2.0, min_history=8)
        for norm in (1.0, 500.0, 3.0):                  # noisy early steps
            assert sentinel.observe(1.0, norm) is None

    def test_tripping_norm_is_not_admitted_to_the_window(self):
        sentinel = self._warmed(mult=10.0)
        before = list(sentinel.norms)
        sentinel.observe(1.0, 1e9)
        assert list(sentinel.norms) == before

    def test_state_dict_round_trip(self):
        sentinel = self._warmed(mult=7.0)
        clone = ckpt.DivergenceSentinel()
        clone.load_state_dict(sentinel.state_dict())
        assert list(clone.norms) == list(sentinel.norms)
        assert clone.grad_mult == 7.0
        assert clone.min_history == sentinel.min_history


class TestResolveManager:
    def test_explicit_manager_wins(self, tmp_path):
        manager = ckpt.CheckpointManager(tmp_path)
        assert ckpt.resolve_manager(manager) is manager

    def test_path_becomes_manager(self, tmp_path):
        manager = ckpt.resolve_manager(tmp_path / "ring")
        assert isinstance(manager, ckpt.CheckpointManager)
        assert manager.directory == tmp_path / "ring"

    def test_env_dir_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "env-ring"))
        manager = ckpt.resolve_manager(None)
        assert manager is not None
        assert manager.directory == tmp_path / "env-ring"

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        assert ckpt.resolve_manager(None) is None
