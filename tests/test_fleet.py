"""Behavioural tests of the multi-process serving fleet.

Covered contracts (`repro.serving.fleet`):

* **Oracle correctness** — a drained burst resolves to exactly the labels a
  fresh :class:`InferenceSession` produces for the same seeded precision
  assignment and the same (count-cut) micro-batch composition.
* **Worker-count determinism** — with ``max_delay_ms=0`` the full result
  stream is a pure function of (seed, submission order, ``max_batch``):
  identical across ``workers=1/2/4``.
* **Transport equivalence** — shm-ring and inline-pipe transports produce
  identical labels; an undersized ring degrades per-tensor to inline.
* **Error propagation** — a worker-side exception reaches the caller's
  future; failures are counted apart from completions.
* **Resource hygiene** — every shared-memory segment the fleet created is
  unlinked by ``close()``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.inference import InferenceSession
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet
from repro.serving import (FleetConfig, FleetServer, RPSServer,
                           ServingConfig, TensorRing)

PS = PrecisionSet([3, 4, 6])
IMAGE = 16
MAX_BATCH = 4


@pytest.fixture(scope="module")
def model():
    return preact_resnet18(num_classes=10, width=8, blocks_per_stage=(1, 1),
                           precisions=PS, seed=0)


@pytest.fixture(scope="module")
def requests_x():
    rng = np.random.default_rng(0)
    return [rng.random((3, IMAGE, IMAGE)).astype(np.float32)
            for _ in range(36)]


def fleet_config(**overrides) -> FleetConfig:
    defaults = dict(workers=2, max_batch=MAX_BATCH, max_delay_ms=0.0,
                    seed=11, input_shape=(3, IMAGE, IMAGE),
                    drain_timeout_s=60.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def run_burst(model, xs, **overrides):
    """Submit a burst, drain, and return (labels, stats)."""
    fleet = FleetServer(model, PS, fleet_config(**overrides))
    fleet.start()
    try:
        futures = [fleet.submit(x) for x in xs]
    finally:
        fleet.close()
    return [f.result(timeout=10) for f in futures], fleet.stats()


def oracle_labels(model, xs, seed, max_batch=MAX_BATCH):
    """Replay the fleet's deterministic batch composition through a session.

    Supervisor-side draws assign each request a precision in submission
    order; per precision, batches are cut every ``max_batch`` requests plus
    a final drain flush.  (Batch composition matters: activation-quantiser
    ranges are batch-global.)
    """
    draw_rng = np.random.default_rng(seed)
    draws = [PS.sample(draw_rng) for _ in xs]
    groups: dict = {}
    for index, precision in enumerate(draws):
        groups.setdefault(precision.key, (precision, []))[1].append(index)
    session = InferenceSession(model)
    expected = np.empty(len(xs), dtype=np.int64)
    for precision, indices in groups.values():
        for start in range(0, len(indices), max_batch):
            chunk = indices[start:start + max_batch]
            expected[chunk] = session.predict(
                np.stack([xs[i] for i in chunk]), precision)
    return expected


# ---------------------------------------------------------------------------
# Correctness and determinism
# ---------------------------------------------------------------------------

class TestFleetCorrectness:
    def test_burst_matches_session_oracle(self, model, requests_x):
        labels, stats = run_burst(model, requests_x)
        np.testing.assert_array_equal(
            np.asarray(labels), oracle_labels(model, requests_x, seed=11))
        assert stats["completed"] == len(requests_x)
        assert stats["failed"] == 0
        assert stats["respawns"] == 0

    def test_deterministic_across_worker_counts(self, model, requests_x):
        runs = {w: run_burst(model, requests_x, workers=w)[0]
                for w in (1, 2, 4)}
        assert runs[1] == runs[2] == runs[4]

    def test_draw_histogram_matches_stats(self, model, requests_x):
        _, stats = run_burst(model, requests_x)
        draw_rng = np.random.default_rng(11)
        expected: dict = {}
        for _ in requests_x:
            key = PS.sample(draw_rng).key
            expected[key] = expected.get(key, 0) + 1
        assert stats["precision_counts"] == dict(
            sorted(expected.items(), key=lambda kv: str(kv[0])))

    def test_flush_resolves_partial_batches_without_drain(self, model,
                                                          requests_x):
        """flush() is the round barrier of count-cut mode: every request
        submitted before it resolves while the fleet keeps serving."""
        fleet = FleetServer(model, PS, fleet_config())
        with fleet:
            first = [fleet.submit(x) for x in requests_x[:5]]
            fleet.flush()
            labels = [f.result(timeout=60) for f in first]
            assert all(isinstance(label, int) for label in labels)
            second = [fleet.submit(x) for x in requests_x[5:10]]
            fleet.flush()
            [f.result(timeout=60) for f in second]
        assert fleet.stats()["completed"] == 10

    def test_delay_mode_serves_before_drain(self, model, requests_x):
        """With a deadline, partial batches flush without waiting for
        close() — labels resolve while the fleet is still accepting."""
        fleet = FleetServer(model, PS, fleet_config(max_delay_ms=5.0))
        with fleet:
            futures = [fleet.submit(x) for x in requests_x[:6]]
            labels = [f.result(timeout=60) for f in futures]
        assert len(labels) == 6
        assert all(isinstance(label, int) for label in labels)


class TestTransport:
    def test_inline_transport_matches_shm(self, model, requests_x):
        shm_labels, shm_stats = run_burst(model, requests_x, transport="shm")
        inline_labels, inline_stats = run_burst(model, requests_x,
                                                transport="inline")
        assert shm_labels == inline_labels
        assert shm_stats["transport"]["kind"] == "shm"
        assert shm_stats["transport"]["ring_frames"] == len(requests_x)
        assert inline_stats["transport"]["kind"] == "inline"
        assert inline_stats["transport"]["ring_frames"] == 0

    def test_undersized_ring_falls_back_inline(self, model):
        """Inputs bigger than the whole ring go inline, with right answers."""
        rng = np.random.default_rng(4)
        big = [rng.random((3, 24, 24)).astype(np.float32) for _ in range(8)]
        # floor capacity is 4096 bytes; a (3, 24, 24) f32 frame is ~6.9 KiB
        labels, stats = run_burst(model, big, ring_mb=0.001,
                                  input_shape=(3, 24, 24))
        assert stats["transport"]["inline_fallbacks"] == len(big)
        assert stats["transport"]["ring_frames"] == 0
        assert stats["completed"] == len(big)
        np.testing.assert_array_equal(
            np.asarray(labels), oracle_labels(model, big, seed=11))

    def test_rings_unlinked_after_close(self, model, requests_x):
        fleet = FleetServer(model, PS, fleet_config())
        fleet.start()
        names = []
        for handle in fleet._slots:
            names.extend(ring.name for ring in (handle.req_ring,
                                                handle.resp_ring))
        futures = [fleet.submit(x) for x in requests_x[:8]]
        fleet.close()
        [f.result(timeout=10) for f in futures]
        assert names, "shm transport created no rings?"
        for name in names:
            with pytest.raises(FileNotFoundError):
                TensorRing.attach(name, 4096)


# ---------------------------------------------------------------------------
# Errors and lifecycle
# ---------------------------------------------------------------------------

class TestFleetErrors:
    def test_worker_exception_reaches_future(self, model):
        bad = [np.zeros((1, 4, 4), np.float32) for _ in range(9)]
        fleet = FleetServer(model, PS, fleet_config(input_shape=None))
        fleet.start()
        futures = [fleet.submit(x) for x in bad]
        fleet.close()
        for future in futures:
            with pytest.raises(Exception):
                future.result(timeout=10)
        stats = fleet.stats()
        assert stats["failed"] == len(bad)
        assert stats["completed"] == 0
        # An execution error is not a crash: nobody was respawned.
        assert stats["respawns"] == 0

    def test_failed_requests_excluded_from_latency(self, model, requests_x):
        bad = [np.zeros((1, 4, 4), np.float32) for _ in range(6)]
        fleet = FleetServer(model, PS, fleet_config(input_shape=None,
                                                    max_delay_ms=5.0))
        fleet.start()
        bad_futures = [fleet.submit(x) for x in bad]
        # Let the deadline flush resolve the bad batches before submitting
        # good traffic, so no micro-batch ever mixes the two shapes.
        for future in bad_futures:
            with pytest.raises(Exception):
                future.result(timeout=60)
        good_futures = [fleet.submit(x) for x in requests_x[:6]]
        fleet.close()
        good = [f.result(timeout=10) for f in good_futures]
        stats = fleet.stats()
        assert stats["completed"] == len(good)
        assert stats["failed"] == len(bad)
        # Latency window and precision counts describe successes only.
        assert sum(stats["precision_counts"].values()) == len(good)
        assert len(fleet._latencies) == len(good)

    def test_submit_after_close_raises(self, model, requests_x):
        fleet = FleetServer(model, PS, fleet_config())
        fleet.start()
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.submit(requests_x[0])
        fleet.close()                     # idempotent

    def test_hot_swap_routes_new_draws(self, model, requests_x):
        fleet = FleetServer(model, PS, fleet_config(max_delay_ms=5.0))
        with fleet:
            first = [fleet.submit(x) for x in requests_x[:12]]
            [f.result(timeout=60) for f in first]
            before = dict(fleet.stats()["precision_counts"])
            fleet.swap_precision_set(PS.restrict(4))
            second = [fleet.submit(x) for x in requests_x[12:24]]
            [f.result(timeout=60) for f in second]
            after = dict(fleet.stats()["precision_counts"])
        assert after.get(6, 0) == before.get(6, 0)
        assert sum(after.values()) == sum(before.values()) + 12
        assert fleet.stats()["active_precisions"] == [3, 4]


# ---------------------------------------------------------------------------
# RPSServer delegation
# ---------------------------------------------------------------------------

class TestServerDelegation:
    def test_rps_server_workers_2_serves_and_reports_fleet_stats(
            self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=MAX_BATCH,
                                             max_delay_ms=5.0, seed=11),
                               workers=2)
            async with server:
                labels = await asyncio.gather(
                    *[server.submit(x) for x in requests_x[:12]])
                live = server.stats()
            return labels, live, server.stats()

        labels, live, drained = asyncio.run(serve())
        assert len(labels) == 12
        assert live["workers"] == 2
        assert "respawns" in live and "transport" in live
        # Stats survive the stop(): the drained snapshot stays queryable.
        assert drained["workers"] == 2
        assert drained["completed"] >= 12

    def test_workers_1_stays_in_process(self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS, ServingConfig(seed=0), workers=1)
            async with server:
                assert server._fleet is None
                return await server.submit(requests_x[0])

        assert isinstance(asyncio.run(serve()), int)
