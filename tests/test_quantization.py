"""Tests for precisions, the linear quantizer and quantisation-aware layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor
from repro.quantization import (
    DEFAULT_RPS_SET,
    FULL_PRECISION,
    Precision,
    PrecisionSet,
    QuantConv2d,
    QuantLinear,
    QuantizerConfig,
    LinearQuantizer,
    fake_quantize,
    get_model_precision,
    quantize_array,
    quantized_layers,
    set_model_precision,
)


class TestPrecision:
    def test_symmetric_default(self):
        p = Precision(8)
        assert p.weight_bits == 8 and p.act_bits == 8
        assert p.key == 8
        assert str(p) == "8bx8b"

    def test_asymmetric_key(self):
        p = Precision(4, 2)
        assert p.key == "4w2a"
        assert p.bit_operations_per_mac() == 8

    def test_full_precision(self):
        assert FULL_PRECISION.is_full_precision
        assert FULL_PRECISION.key == "fp"
        with pytest.raises(ValueError):
            _ = FULL_PRECISION.symmetric_bits

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            Precision(0)
        with pytest.raises(ValueError):
            Precision(33)

    def test_ordering_and_hashing(self):
        assert Precision(4) < Precision(8)
        assert len({Precision(4), Precision(4)}) == 1


class TestPrecisionSet:
    def test_from_range_matches_paper_default(self):
        assert DEFAULT_RPS_SET.bit_widths == list(range(4, 17))

    def test_deduplication_preserves_order(self):
        ps = PrecisionSet([8, 4, 8, 4])
        assert ps.bit_widths == [8, 4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PrecisionSet([])

    def test_contains_and_getitem(self):
        ps = PrecisionSet([4, 8])
        assert 4 in ps and Precision(8) in ps and 16 not in ps
        assert ps[0].key == 4

    def test_sample_stays_in_set(self):
        ps = PrecisionSet([4, 6, 8])
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert ps.sample(rng).key in ps.keys

    def test_sample_covers_all_members(self):
        ps = PrecisionSet([4, 6, 8])
        rng = np.random.default_rng(0)
        seen = {ps.sample(rng).key for _ in range(200)}
        assert seen == {4, 6, 8}

    def test_lowest_highest(self):
        ps = PrecisionSet([6, 4, 8])
        assert ps.lowest().key == 4
        assert ps.highest().key == 8

    def test_restrict(self):
        ps = PrecisionSet.from_range(4, 16)
        assert ps.restrict(8).bit_widths == [4, 5, 6, 7, 8]
        with pytest.raises(ValueError):
            ps.restrict(2)

    def test_equality(self):
        assert PrecisionSet([4, 8]) == PrecisionSet([4, 8])
        assert PrecisionSet([4, 8]) != PrecisionSet([4, 6])


class TestQuantizerConfig:
    def test_symmetric_range(self):
        cfg = QuantizerConfig(bits=8, symmetric=True)
        assert cfg.qmin == -127 and cfg.qmax == 127

    def test_asymmetric_range(self):
        cfg = QuantizerConfig(bits=8, symmetric=False)
        assert cfg.qmin == 0 and cfg.qmax == 255

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizerConfig(bits=0)


class TestQuantizeArray:
    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_quantization_error_bounded_by_step(self, bits):
        rng = np.random.default_rng(bits)
        x = rng.uniform(-1, 1, size=256).astype(np.float32)
        cfg = QuantizerConfig(bits=bits, symmetric=True)
        q = quantize_array(x, cfg)
        step = np.abs(x).max() / (2 ** (bits - 1) - 1)
        assert np.max(np.abs(q - x)) <= step * 0.5 + 1e-6

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_idempotent(self, bits):
        rng = np.random.default_rng(bits + 100)
        x = rng.uniform(-1, 1, size=128).astype(np.float32)
        cfg = QuantizerConfig(bits=bits, symmetric=True)
        q1 = quantize_array(x, cfg)
        q2 = quantize_array(q1, cfg)
        assert np.allclose(q1, q2, atol=1e-5)

    def test_number_of_distinct_levels(self):
        x = np.linspace(-1, 1, 1000).astype(np.float32)
        cfg = QuantizerConfig(bits=3, symmetric=True)
        q = quantize_array(x, cfg)
        assert len(np.unique(q)) <= 2 ** 3 - 1

    def test_higher_precision_is_more_accurate(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=512).astype(np.float32)
        err4 = np.abs(quantize_array(x, QuantizerConfig(4)) - x).mean()
        err8 = np.abs(quantize_array(x, QuantizerConfig(8)) - x).mean()
        assert err8 < err4

    def test_per_channel_scales(self):
        x = np.stack([np.full((4, 3, 3), 0.1), np.full((4, 3, 3), 10.0)]).astype(np.float32)
        cfg = QuantizerConfig(bits=4, symmetric=True, per_channel=True)
        q = quantize_array(x, cfg)
        # Per-channel scaling keeps the small channel from collapsing to zero.
        assert np.abs(q[0]).max() > 0

    def test_zero_input_handled(self):
        q = quantize_array(np.zeros(8, dtype=np.float32), QuantizerConfig(4))
        assert np.allclose(q, 0)


class TestFakeQuantizeSTE:
    def test_forward_matches_quantize_array(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(4, 4)).astype(np.float32)
        cfg = QuantizerConfig(bits=4)
        out = fake_quantize(Tensor(x), cfg)
        assert np.allclose(out.data, quantize_array(x, cfg), atol=1e-6)

    def test_gradient_passes_through(self):
        x = Tensor(np.linspace(-0.5, 0.5, 16).astype(np.float32), requires_grad=True)
        fake_quantize(x, QuantizerConfig(bits=4)).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_linear_quantizer_ema_smooths_range(self):
        quantizer = LinearQuantizer(QuantizerConfig(bits=8), ema_momentum=0.1)
        x1 = Tensor(np.array([1.0], dtype=np.float32))
        x2 = Tensor(np.array([100.0], dtype=np.float32))
        quantizer(x1)
        quantizer(x2)
        assert quantizer._running_max < 100.0
        quantizer.reset()
        assert quantizer._running_max is None


class TestQuantizedModules:
    def test_full_precision_matches_parent(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        qconv = QuantConv2d(3, 4, 3, padding=1, rng=np.random.default_rng(1))
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(1))
        conv.weight.data[...] = qconv.weight.data
        conv.bias.data[...] = qconv.bias.data
        assert np.allclose(qconv(x).data, conv(x).data, atol=1e-5)

    def test_low_precision_changes_output(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        qconv = QuantConv2d(3, 4, 3, padding=1, rng=np.random.default_rng(1))
        full = qconv(x).data.copy()
        qconv.set_precision(Precision(3))
        low = qconv(x).data
        assert not np.allclose(full, low, atol=1e-5)

    def test_lower_precision_larger_deviation(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 16)).astype(np.float32))
        qlin = QuantLinear(16, 8, rng=np.random.default_rng(2))
        full = qlin(x).data.copy()
        deviations = {}
        for bits in (2, 4, 8):
            qlin.set_precision(Precision(bits))
            deviations[bits] = np.abs(qlin(x).data - full).mean()
        assert deviations[2] > deviations[4] > deviations[8]

    def test_gradients_still_flow_when_quantized(self):
        qlin = QuantLinear(8, 4)
        qlin.set_precision(Precision(4))
        x = Tensor(np.random.default_rng(0).normal(size=(2, 8)).astype(np.float32),
                   requires_grad=True)
        qlin(x).sum().backward()
        assert x.grad is not None
        assert qlin.weight.grad is not None


class TestModelPrecisionSwitch:
    def test_set_and_get_model_precision(self, tiny_rps_model):
        set_model_precision(tiny_rps_model, Precision(4))
        assert get_model_precision(tiny_rps_model).key == 4
        set_model_precision(tiny_rps_model, FULL_PRECISION)
        assert get_model_precision(tiny_rps_model).is_full_precision

    def test_switch_updates_sbn_branches(self, tiny_rps_model):
        from repro.nn.layers import SwitchableBatchNorm2d
        set_model_precision(tiny_rps_model, Precision(6))
        sbn = [m for m in tiny_rps_model.modules()
               if isinstance(m, SwitchableBatchNorm2d)]
        assert sbn and all(layer.active_key == 6 for layer in sbn)

    def test_unknown_precision_falls_back_to_fp_branch(self, tiny_rps_model):
        from repro.nn.layers import SwitchableBatchNorm2d
        set_model_precision(tiny_rps_model, Precision(12))
        sbn = next(m for m in tiny_rps_model.modules()
                   if isinstance(m, SwitchableBatchNorm2d))
        assert sbn.active_key == "fp"

    def test_quantized_layers_enumeration(self, tiny_rps_model):
        layers = quantized_layers(tiny_rps_model)
        assert len(layers) > 3
        assert all(isinstance(l, (QuantConv2d, QuantLinear)) for l in layers)

    def test_get_precision_none_for_plain_model(self):
        plain = nn.Sequential(nn.Linear(4, 2))
        assert get_model_precision(plain) is None

    def test_precision_changes_model_output(self, tiny_rps_model, tiny_dataset):
        x = Tensor(tiny_dataset.x_test[:4])
        set_model_precision(tiny_rps_model, FULL_PRECISION)
        full = tiny_rps_model(x).data.copy()
        set_model_precision(tiny_rps_model, Precision(3))
        low = tiny_rps_model(x).data
        assert not np.allclose(full, low, atol=1e-6)
