"""Chaos / fault-injection harness for the serving fleet.

Every scenario SIGKILLs worker processes at a nasty moment and then holds
the fleet to its normal contracts: **every accepted future resolves** (no
drops, no hangs), the drain completes, stats stay consistent with the
seeded draw histogram, and — because the precision-draw stream lives in
the supervisor and batches are cut by count — the label stream is
*identical* to an undisturbed run.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet
from repro.serving import FleetConfig, FleetServer, WorkerCrashError

PS = PrecisionSet([3, 4, 6])
IMAGE = 16
MAX_BATCH = 4
SEED = 23


@pytest.fixture(scope="module")
def model():
    return preact_resnet18(num_classes=10, width=8, blocks_per_stage=(1, 1),
                           precisions=PS, seed=0)


@pytest.fixture(scope="module")
def requests_x():
    rng = np.random.default_rng(1)
    return [rng.random((3, IMAGE, IMAGE)).astype(np.float32)
            for _ in range(48)]


def chaos_config(**overrides) -> FleetConfig:
    defaults = dict(workers=2, max_batch=MAX_BATCH, max_delay_ms=0.0,
                    seed=SEED, input_shape=(3, IMAGE, IMAGE),
                    drain_timeout_s=60.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def sigkill(pid) -> None:
    if pid is None:
        return
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass                              # already gone: chaos is best-effort


def expected_histogram(n: int) -> dict:
    draw_rng = np.random.default_rng(SEED)
    counts: dict = {}
    for _ in range(n):
        key = PS.sample(draw_rng).key
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: str(kv[0])))


def assert_drop_free(futures, stats, n):
    labels = [f.result(timeout=10) for f in futures]  # resolved, or the bug
    assert len(labels) == n
    assert all(isinstance(label, int) for label in labels)
    assert stats["completed"] == n
    assert stats["failed"] == 0
    assert stats["precision_counts"] == expected_histogram(n)
    return labels


# ---------------------------------------------------------------------------
# Kill scenarios
# ---------------------------------------------------------------------------

class TestKillAWorker:
    def test_kill_mid_burst_drains_drop_free(self, model, requests_x):
        fleet = FleetServer(model, PS, chaos_config())
        fleet.start()
        futures = [fleet.submit(x) for x in requests_x]
        assert fleet.inflight() > 0
        sigkill(fleet.worker_pids()[0])
        fleet.close()
        stats = fleet.stats()
        assert_drop_free(futures, stats, len(requests_x))
        assert stats["respawns"] >= 1

    def test_kill_during_drain(self, model, requests_x):
        fleet = FleetServer(model, PS, chaos_config())
        fleet.start()
        futures = [fleet.submit(x) for x in requests_x]
        victim = fleet.worker_pids()[0]
        closer = threading.Thread(target=fleet.close)
        closer.start()
        sigkill(victim)                   # lands while the drain is running
        closer.join(timeout=90)
        assert not closer.is_alive(), "drain hung after mid-drain kill"
        assert_drop_free(futures, fleet.stats(), len(requests_x))

    def test_kill_before_first_batch(self, model, requests_x):
        fleet = FleetServer(model, PS, chaos_config())
        fleet.start()
        victims = fleet.worker_pids()
        sigkill(victims[0])               # dies before any traffic arrives
        deadline = time.monotonic() + 30.0
        while victims[0] in fleet.worker_pids():
            assert time.monotonic() < deadline, "respawn never happened"
            time.sleep(0.01)
        futures = [fleet.submit(x) for x in requests_x]
        fleet.close()
        stats = fleet.stats()
        assert_drop_free(futures, stats, len(requests_x))
        assert stats["respawns"] == 1

    def test_kill_every_worker_once(self, model, requests_x):
        fleet = FleetServer(model, PS, chaos_config())
        fleet.start()
        futures = [fleet.submit(x) for x in requests_x]
        for pid in fleet.worker_pids():
            sigkill(pid)
        fleet.close()
        stats = fleet.stats()
        assert_drop_free(futures, stats, len(requests_x))
        assert stats["respawns"] >= 2


class TestDeterminismUnderChaos:
    def test_labels_identical_with_and_without_kill(self, model, requests_x):
        """The respawn requeues in submission order and batches resolve
        atomically, so a killed-and-respawned run re-forms exactly the
        micro-batches of an undisturbed one — label-identical output."""
        def run(kill: bool):
            fleet = FleetServer(model, PS, chaos_config())
            fleet.start()
            futures = [fleet.submit(x) for x in requests_x]
            if kill:
                sigkill(fleet.worker_pids()[0])
            fleet.close()
            return ([f.result(timeout=10) for f in futures],
                    fleet.stats())

        calm_labels, _ = run(kill=False)
        chaos_labels, chaos_stats = run(kill=True)
        assert chaos_stats["respawns"] >= 1
        assert calm_labels == chaos_labels

    def test_draw_stream_survives_respawn(self, model, requests_x):
        """Respawning consumes no precision draws: submissions after a kill
        continue the seeded stream exactly where it left off."""
        fleet = FleetServer(model, PS, chaos_config())
        fleet.start()
        first = [fleet.submit(x) for x in requests_x[:20]]
        sigkill(fleet.worker_pids()[0])
        deadline = time.monotonic() + 30.0
        while fleet.stats()["respawns"] == 0:
            assert time.monotonic() < deadline, "respawn never happened"
            time.sleep(0.01)
        second = [fleet.submit(x) for x in requests_x[20:]]
        fleet.close()
        stats = fleet.stats()
        assert_drop_free(first + second, stats, len(requests_x))


class TestRestartBudget:
    def test_exhausted_budget_fails_inflight_futures(self, model, requests_x):
        fleet = FleetServer(model, PS, chaos_config(max_restarts=0))
        fleet.start()
        futures = [fleet.submit(x) for x in requests_x[:24]]
        # Slot 0 owns precisions 3 and 6; with seed 23 the first 24 draws
        # hit both workers, so each side has in-flight requests.
        by_slot = {0: [], 1: []}
        draw_rng = np.random.default_rng(SEED)
        for future in futures:
            key = PS.sample(draw_rng).key
            by_slot[{3: 0, 4: 1, 6: 0}[key]].append(future)
        assert by_slot[0] and by_slot[1]
        sigkill(fleet.worker_pids()[0])
        # Batches the worker finished before the kill resolve normally;
        # everything in flight at death fails with WorkerCrashError — and
        # nothing may hang.
        crashed = 0
        for future in by_slot[0]:
            try:
                assert isinstance(future.result(timeout=30), int)
            except WorkerCrashError:
                crashed += 1
        assert crashed > 0, "kill landed after every slot-0 batch finished"
        # Submissions routed to the dead slot are rejected loudly ...
        with pytest.raises(WorkerCrashError):
            for _ in range(64):
                fleet.submit(requests_x[0])
        fleet.close()
        # ... while the surviving worker still drains its side drop-free.
        for future in by_slot[1]:
            assert isinstance(future.result(timeout=10), int)
        stats = fleet.stats()
        assert stats["respawns"] == 0
        assert stats["failed"] >= crashed


# ---------------------------------------------------------------------------
# Injected-fault scenarios (the repro.faults migration of this suite)
# ---------------------------------------------------------------------------

class TestInjectedFaults:
    """Same contracts as the kill scenarios, driven through seeded
    :mod:`repro.faults` plans instead of ad-hoc signals — the replayable
    half of the chaos harness."""

    @pytest.fixture(autouse=True)
    def _no_ambient_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.uninstall()
        yield
        faults.uninstall()

    def test_latency_faults_drain_drop_free_and_label_identical(
            self, model, requests_x):
        def run(plan):
            with faults.installed(plan):
                fleet = FleetServer(model, PS, chaos_config())
                fleet.start()
                futures = [fleet.submit(x) for x in requests_x]
                fleet.close()
            labels = assert_drop_free(futures, fleet.stats(),
                                      len(requests_x))
            return labels

        calm = run(None)
        slowed = run(FaultPlan.parse(
            "fleet.worker.*=latency:ms=10:p=0.5", seed=3))
        assert calm == slowed, "latency reordered the label stream"

    def test_deterministic_error_faults_exhaust_budget_loudly(
            self, model, requests_x):
        """A worker that crashes on *every* incoming message (p=1 on the
        recv site) can never be saved by respawning — the contract is that
        the failure is loud and bounded: every accepted future resolves
        with WorkerCrashError, later submissions are rejected, and close()
        returns instead of deadlocking."""
        plan = FaultPlan.parse("fleet.worker.recv=error", seed=0)
        with faults.installed(plan):
            fleet = FleetServer(model, PS, chaos_config(max_restarts=1))
            fleet.start()
            futures = []
            rejected = 0
            for x in requests_x:
                try:
                    futures.append(fleet.submit(x))
                except WorkerCrashError:
                    rejected += 1
            fleet.close()
        for future in futures:
            with pytest.raises(WorkerCrashError):
                future.result(timeout=30)
        stats = fleet.stats()
        assert stats["failed"] == len(futures)
        assert stats["completed"] == 0
        assert stats["respawns"] >= 1
        assert len(futures) + rejected == len(requests_x)
