"""Tests for the disk-persisted engine memo store: warm round trips,
corrupt/partial/stale files degrading to a cold start, and atomic-rename
behaviour under concurrent writers."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.accelerator import (
    CACHE_SCHEMA_VERSION,
    EngineStore,
    EvaluationEngine,
    TwoInOneAccelerator,
    model_constants_digest,
    network_layers,
)
from repro.accelerator.optimizer import OptimizerConfig


@pytest.fixture()
def layers():
    return network_layers("resnet18", "cifar10")


def _accelerator(seed: int) -> TwoInOneAccelerator:
    # A per-test optimizer seed gives each test its own fingerprint, so the
    # process-wide shared memo registry cannot leak warmth between tests.
    return TwoInOneAccelerator(optimizer_config=OptimizerConfig(
        population_size=6, total_cycles=1, seed=seed))


def _cold() -> None:
    EvaluationEngine.reset_shared_stores()


class TestWarmRoundTrip:
    def test_second_cold_process_starts_warm(self, tmp_path, layers):
        first = _accelerator(seed=101)
        reference = first.evaluate_grid(layers, [2, 4, 8], persist=True,
                                        cache_dir=tmp_path)
        assert first.engine.cache_info()["misses"] > 0

        _cold()
        rerun = _accelerator(seed=101)
        warm = rerun.evaluate_grid(layers, [2, 4, 8], persist=True,
                                   cache_dir=tmp_path)
        info = rerun.engine.cache_info()
        assert info["misses"] == 0                      # nothing re-simulated
        assert info["disk_cells_loaded"] > 0
        assert np.array_equal(warm.total_cycles, reference.total_cycles)
        assert np.array_equal(warm.total_energy, reference.total_energy)

    def test_persisted_equals_unpersisted(self, tmp_path, layers):
        persisted = _accelerator(seed=102).evaluate_grid(
            layers, [4, 8], persist=True, cache_dir=tmp_path)
        _cold()
        plain = _accelerator(seed=102).evaluate_grid(
            layers, [4, 8], persist=False)
        assert np.array_equal(persisted.total_cycles, plain.total_cycles)
        assert np.array_equal(persisted.total_energy, plain.total_energy)

    def test_summaries_round_trip(self, tmp_path, layers):
        """Persisted summaries let a warm process evaluate *new* precisions
        of cached shapes without re-running the dataflow search."""
        first = _accelerator(seed=103)
        first.evaluate_grid(layers, [4], persist=True, cache_dir=tmp_path)
        store = EngineStore(tmp_path)
        loaded = store.load(first.engine.config_fingerprint())
        assert loaded is not None
        cells, summaries = loaded
        assert len(cells) > 0
        assert len(summaries) > 0


class TestFlushMergeSafety:
    def test_invalidate_then_flush_keeps_disk_cells(self, tmp_path, layers):
        """A manual invalidate must not let a later (smaller) persisted
        evaluation overwrite the store with only its own cells."""
        accelerator = _accelerator(seed=109)
        accelerator.evaluate_grid(layers, [2, 4, 8], persist=True,
                                  cache_dir=tmp_path)
        accelerator.engine.invalidate()
        accelerator.evaluate_grid(layers[:1], [4], persist=True,
                                  cache_dir=tmp_path)

        _cold()
        rerun = _accelerator(seed=109)
        rerun.evaluate_grid(layers, [2, 4, 8], persist=True,
                            cache_dir=tmp_path)
        assert rerun.engine.cache_info()["misses"] == 0   # nothing was lost

    def test_second_cache_dir_still_loads(self, tmp_path, layers):
        """An explicit cache_dir must be honoured even after the store
        already loaded a different directory."""
        warm_dir = tmp_path / "warm"
        empty_dir = tmp_path / "empty"
        _accelerator(seed=110).evaluate_grid(layers, [4], persist=True,
                                             cache_dir=warm_dir)
        _cold()
        rerun = _accelerator(seed=110)
        rerun.evaluate_grid(layers[:1], [4], persist=True,
                            cache_dir=empty_dir)          # marks empty_dir
        rerun.evaluate_grid(layers, [4], persist=True, cache_dir=warm_dir)
        info = rerun.engine.cache_info()
        assert info["disk_cells_loaded"] > 0              # warm_dir was read
        assert info["misses"] <= 1                        # only the pre-warm cell


class TestColdStartDegradation:
    def _warm_path(self, tmp_path, layers, seed):
        accelerator = _accelerator(seed=seed)
        accelerator.evaluate_grid(layers, [4], persist=True,
                                  cache_dir=tmp_path)
        fingerprint = accelerator.engine.config_fingerprint()
        return EngineStore(tmp_path).path_for(fingerprint), fingerprint

    def test_corrupt_file_is_cold_start(self, tmp_path, layers):
        path, fingerprint = self._warm_path(tmp_path, layers, seed=104)
        path.write_bytes(b"not a pickle at all")
        assert EngineStore(tmp_path).load(fingerprint) is None

        _cold()
        rerun = _accelerator(seed=104)
        grid = rerun.evaluate_grid(layers, [4], persist=True,
                                   cache_dir=tmp_path)
        info = rerun.engine.cache_info()
        assert info["disk_cells_loaded"] == 0
        assert info["misses"] > 0                       # recomputed honestly
        assert np.all(grid.total_cycles > 0)
        # ... and the recomputation repaired the file for the next run.
        assert EngineStore(tmp_path).load(fingerprint) is not None

    def test_truncated_file_is_cold_start(self, tmp_path, layers):
        path, fingerprint = self._warm_path(tmp_path, layers, seed=105)
        payload = path.read_bytes()
        path.write_bytes(payload[:len(payload) // 2])
        assert EngineStore(tmp_path).load(fingerprint) is None

    def test_stale_schema_version_invalidates(self, tmp_path, layers):
        path, fingerprint = self._warm_path(tmp_path, layers, seed=106)
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert EngineStore(tmp_path).load(fingerprint) is None

    def test_changed_constants_digest_invalidates(self, tmp_path, layers):
        path, fingerprint = self._warm_path(tmp_path, layers, seed=107)
        payload = pickle.loads(path.read_bytes())
        payload["constants_digest"] = "0" * 64
        path.write_bytes(pickle.dumps(payload))
        assert EngineStore(tmp_path).load(fingerprint) is None

    def test_foreign_fingerprint_payload_rejected(self, tmp_path, layers):
        path, fingerprint = self._warm_path(tmp_path, layers, seed=108)
        payload = pickle.loads(path.read_bytes())
        payload["fingerprint"] = ("some", "other", "config")
        path.write_bytes(pickle.dumps(payload))
        assert EngineStore(tmp_path).load(fingerprint) is None

    def test_missing_file_is_cold_start(self, tmp_path):
        assert EngineStore(tmp_path).load(("no", "such", "config")) is None

    def test_digest_is_stable_within_process(self):
        assert model_constants_digest() == model_constants_digest()
        assert len(model_constants_digest()) == 64


class TestConcurrentWriters:
    FINGERPRINT = ("concurrency", "test", 1)

    def test_interleaved_saves_merge(self, tmp_path):
        store = EngineStore(tmp_path)
        store.save(self.FINGERPRINT, {"a": 1}, {}, merge=True)
        store.save(self.FINGERPRINT, {"b": 2}, {}, merge=True)
        cells, _ = store.load(self.FINGERPRINT)
        assert cells == {"a": 1, "b": 2}

    def test_parallel_saves_never_clobber(self, tmp_path):
        """Hammer one fingerprint from many threads: the atomic rename must
        keep the file loadable at all times, whoever wins each race."""
        store = EngineStore(tmp_path)
        errors = []

        def writer(worker: int) -> None:
            try:
                for round_index in range(5):
                    store.save(self.FINGERPRINT,
                               {(worker, round_index): worker}, {})
                    loaded = store.load(self.FINGERPRINT)
                    assert loaded is not None       # never torn, never stale-schema
            except Exception as exc:               # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        cells, _ = store.load(self.FINGERPRINT)
        # Every key ever written belongs to the union; merge-on-save means
        # the final file holds at least the last writer's full round.
        assert set(cells) <= {(w, r) for w in range(8) for r in range(5)}
        assert len(cells) >= 5
