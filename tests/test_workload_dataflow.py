"""Tests for workload shapes, the dataflow representation and the memory model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.dataflow import DIMS, Dataflow, default_dataflow
from repro.accelerator.memory import MemoryHierarchy, MemoryLevel, default_hierarchy
from repro.accelerator.optimizer.search_space import (
    crossover_dataflows,
    mutate_dataflow,
    random_dataflow,
)
from repro.accelerator.workload import (
    LayerShape,
    available_workloads,
    network_layers,
)


class TestLayerShape:
    def test_mac_count(self):
        layer = LayerShape("l", n=2, k=8, c=4, y=10, x=10, r=3, s=3)
        assert layer.macs == 2 * 8 * 4 * 10 * 10 * 9

    def test_input_dims_follow_stride(self):
        layer = LayerShape("l", n=1, k=1, c=1, y=16, x=16, r=3, s=3, stride=2)
        assert layer.input_height == 33

    def test_tensor_sizes(self):
        layer = LayerShape("fc", n=1, k=10, c=512, y=1, x=1, r=1, s=1)
        sizes = layer.tensor_sizes()
        assert sizes["weights"] == 5120
        assert sizes["outputs"] == 10
        assert sizes["inputs"] == 512

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            LayerShape("bad", n=0, k=1, c=1, y=1, x=1, r=1, s=1)

    def test_with_batch(self):
        layer = LayerShape("l", n=1, k=2, c=2, y=4, x=4, r=3, s=3)
        assert layer.with_batch(8).macs == 8 * layer.macs


class TestNetworkWorkloads:
    def test_six_workloads_available(self):
        assert len(available_workloads()) == 6

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            network_layers("lenet", "mnist")

    def test_resnet50_total_macs_close_to_published(self):
        """ResNet-50 at 224x224 is ~4.1 GMACs; the builder should be within 10%."""
        layers = network_layers("resnet50", "imagenet")
        total = sum(l.macs for l in layers)
        assert total == pytest.approx(4.1e9, rel=0.12)

    def test_vgg16_total_macs_close_to_published(self):
        """VGG-16 at 224x224 is ~15.5 GMACs."""
        total = sum(l.macs for l in network_layers("vgg16", "imagenet"))
        assert total == pytest.approx(15.5e9, rel=0.1)

    def test_alexnet_total_macs_close_to_published(self):
        """AlexNet is ~0.7 GMACs."""
        total = sum(l.macs for l in network_layers("alexnet", "imagenet"))
        assert total == pytest.approx(0.72e9, rel=0.15)

    def test_resnet18_imagenet_macs(self):
        total = sum(l.macs for l in network_layers("resnet18", "imagenet"))
        assert total == pytest.approx(1.8e9, rel=0.15)

    def test_cifar_networks_are_smaller(self):
        cifar = sum(l.macs for l in network_layers("resnet18", "cifar10"))
        imagenet = sum(l.macs for l in network_layers("resnet18", "imagenet"))
        assert cifar < imagenet

    def test_batch_scaling(self):
        single = sum(l.macs for l in network_layers("alexnet", "imagenet"))
        batched = sum(l.macs for l in network_layers("alexnet", "imagenet", batch=4))
        assert batched == 4 * single

    def test_layer_names_unique(self):
        for network, dataset in available_workloads():
            names = [l.name for l in network_layers(network, dataset)]
            assert len(names) == len(set(names))


class TestDataflow:
    def layer(self):
        return LayerShape("l", n=1, k=32, c=16, y=8, x=8, r=3, s=3)

    def test_default_dataflow_covers_layer(self):
        layer = self.layer()
        flow = default_dataflow(layer, num_units=256)
        assert flow.covers(layer)
        assert flow.spatial_units() <= 256

    def test_tiling_factor_validation(self):
        with pytest.raises(ValueError):
            Dataflow(tiling={"DRAM": {"K": 0}})

    def test_loop_order_validation(self):
        with pytest.raises(ValueError):
            Dataflow(tiling={}, loop_order={"DRAM": ["K", "C"]})

    def test_total_factor_product(self):
        flow = Dataflow(tiling={"DRAM": {"K": 2}, "GlobalBuffer": {"K": 4},
                                "Spatial": {"K": 2}, "RegisterFile": {"K": 1}})
        assert flow.total_factor("K") == 16
        assert flow.inner_tile("K", "GlobalBuffer") == 8

    def test_padded_dims_and_utilization(self):
        layer = LayerShape("l", n=1, k=10, c=1, y=1, x=1, r=1, s=1)
        flow = Dataflow(tiling={"Spatial": {"K": 4}, "DRAM": {"K": 3}})
        padded = flow.padded_dims(layer)
        assert padded["K"] == 12
        assert flow.utilization_loss(layer) == pytest.approx(1 - 10 / 12)

    def test_tile_elements_respects_tensor_dims(self):
        flow = Dataflow(tiling={"RegisterFile": {"K": 4, "C": 2, "R": 3, "S": 3}})
        assert flow.tile_elements("weights", "RegisterFile") == 4 * 2 * 9
        assert flow.tile_elements("outputs", "RegisterFile") == 4

    def test_footprint_scales_with_precision(self):
        flow = default_dataflow(self.layer(), num_units=64)
        assert (flow.footprint_bits("GlobalBuffer", 8, 8)
                > flow.footprint_bits("GlobalBuffer", 4, 4))

    def test_copy_is_independent(self):
        flow = default_dataflow(self.layer(), num_units=64)
        clone = flow.copy()
        clone.tiling["DRAM"]["K"] = 99
        assert flow.tiling["DRAM"]["K"] != 99

    def test_describe_mentions_levels(self):
        text = default_dataflow(self.layer(), num_units=64).describe()
        assert "DRAM" in text and "Spatial" in text


class TestRandomDataflowOperators:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_random_dataflow_always_valid_coverage(self, seed):
        rng = np.random.default_rng(seed)
        layer = LayerShape("l", n=1, k=24, c=12, y=6, x=6, r=3, s=3)
        flow = random_dataflow(layer, num_units=128, rng=rng)
        assert flow.covers(layer)
        assert flow.spatial_units() <= 128
        for dim in DIMS:
            assert all(flow.tiling[level][dim] >= 1
                       for level in flow.tiling)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_mutation_preserves_coverage(self, seed):
        rng = np.random.default_rng(seed)
        layer = LayerShape("l", n=1, k=24, c=12, y=6, x=6, r=3, s=3)
        flow = random_dataflow(layer, num_units=128, rng=rng)
        mutant = mutate_dataflow(flow, layer, 128, rng)
        assert mutant.covers(layer)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_crossover_preserves_coverage(self, seed):
        rng = np.random.default_rng(seed)
        layer = LayerShape("l", n=1, k=24, c=12, y=6, x=6, r=3, s=3)
        a = random_dataflow(layer, num_units=128, rng=rng)
        b = random_dataflow(layer, num_units=128, rng=rng)
        child = crossover_dataflows(a, b, layer, rng)
        assert child.covers(layer)


class TestMemoryHierarchy:
    def test_default_hierarchy_ordering(self):
        hierarchy = default_hierarchy()
        assert hierarchy.level_names() == ["DRAM", "GlobalBuffer", "RegisterFile"]
        assert hierarchy.dram.energy_per_bit > hierarchy.global_buffer.energy_per_bit
        assert (hierarchy.global_buffer.energy_per_bit
                > hierarchy.register_file.energy_per_bit)

    def test_access_energy_and_transfer_cycles(self):
        level = MemoryLevel("L", capacity_bits=1e6, bandwidth_bits_per_cycle=128,
                            energy_per_bit=2.0)
        assert level.access_energy(100) == pytest.approx(200)
        assert level.transfer_cycles(256) == pytest.approx(2.0)

    def test_by_name_and_missing(self):
        hierarchy = default_hierarchy()
        assert hierarchy.by_name("DRAM").name == "DRAM"
        with pytest.raises(KeyError):
            hierarchy.by_name("L4")

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([MemoryLevel("only", 1, 1, 1)])

    def test_scaled_changes_buffers_not_dram(self):
        hierarchy = default_hierarchy()
        scaled = hierarchy.scaled(buffer_scale=2.0)
        assert scaled.global_buffer.capacity_bits == pytest.approx(
            2 * hierarchy.global_buffer.capacity_bits)
        assert scaled.dram.capacity_bits == hierarchy.dram.capacity_bits
