"""The CI fault matrix: under every ``REPRO_FAULTS`` preset, zero drops.

Contract (the PR 8 acceptance bar): whatever a preset injects — latency,
worker-crashing errors, ring corruption, hangs — **every submitted future
resolves** with a label or one of the lifecycle exceptions
(:class:`DeadlineExceeded`, :class:`RejectedError`,
:class:`WorkerCrashError`), ``close()`` returns (no supervisor deadlock),
and the stats ledger accounts for every accepted request.

CI runs this file once per preset with ``REPRO_FAULTS`` exported (the
environment spec then *replaces* the built-in table); locally, with no
environment spec, the whole matrix runs parametrized.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import faults
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet
from repro.serving import (DeadlineExceeded, FleetConfig, FleetServer,
                           RejectedError, WorkerCrashError)

PS = PrecisionSet([3, 4, 6])
IMAGE = 16
SEED = 23

#: name -> (fault spec, FleetConfig overrides). Error/hang presets target
#: sites *outside* the worker's exec try-block, so an injected fault is a
#: worker crash absorbed by respawn (or WorkerCrashError past the budget) —
#: never a silently dropped future.
PRESETS = {
    "latency": ("fleet.worker.*=latency:ms=5:p=0.3;"
                "transport.ring.write=latency:ms=2:p=0.2", {}),
    "error": ("fleet.worker.recv=error:p=0.05", {}),
    "corrupt": ("transport.ring.write=corrupt:p=0.25;"
                "transport.ring.read=corrupt:p=0.25", {}),
    "hang": ("fleet.worker.exec=hang:s=30:p=0.2",
             {"max_restarts": 2, "hang_timeout_s": 0.8}),
}

_ENV_SPEC = os.environ.get("REPRO_FAULTS", "").strip()
if _ENV_SPEC:                             # CI leg: one preset via the env
    PRESETS = {"env": (_ENV_SPEC, {"max_restarts": 3,
                                   "hang_timeout_s": 0.8})}

ALLOWED = (DeadlineExceeded, RejectedError, WorkerCrashError)


@pytest.fixture(autouse=True)
def _plan_from_env_only(monkeypatch):
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def model():
    return preact_resnet18(num_classes=10, width=8, blocks_per_stage=(1, 1),
                           precisions=PS, seed=0)


@pytest.fixture(scope="module")
def requests_x():
    rng = np.random.default_rng(1)
    return [rng.random((3, IMAGE, IMAGE)).astype(np.float32)
            for _ in range(48)]


def matrix_config(**overrides) -> FleetConfig:
    defaults = dict(workers=2, max_batch=4, max_delay_ms=0.0, seed=SEED,
                    input_shape=(3, IMAGE, IMAGE), drain_timeout_s=60.0,
                    heartbeat_s=0.2)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def run_fleet(model, xs, fleet_config, deadline_ms=None):
    """Submit everything, drain, and return (outcomes, stats).

    ``submit`` may itself raise WorkerCrashError once a slot's budget is
    burned — that is a *loud* rejection, recorded as an outcome too.
    """
    fleet = FleetServer(model, PS, fleet_config)
    fleet.start()
    futures, outcomes = [], []
    for x in xs:
        try:
            futures.append(fleet.submit(x, deadline_ms=deadline_ms))
        except WorkerCrashError as error:
            outcomes.append(error)
    fleet.close()                          # a drain deadlock fails the test
    for future in futures:
        error = future.exception(timeout=30)
        outcomes.append(error if error is not None else future.result())
    return outcomes, fleet.stats(), len(futures)


class TestFaultMatrix:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_submitted_future_resolves(self, preset, model, requests_x,
                                             monkeypatch):
        spec, overrides = PRESETS[preset]
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        outcomes, stats, accepted = run_fleet(
            model, requests_x, matrix_config(**overrides))
        assert len(outcomes) == len(requests_x), "a future was dropped"
        bad = [o for o in outcomes
               if not isinstance(o, int) and not isinstance(o, ALLOWED)]
        assert not bad, f"disallowed outcomes under {preset!r}: {bad}"
        # The stats ledger accounts for every accepted request exactly once.
        assert (stats["completed"] + stats["failed"]
                + stats["deadline_expired"] + stats["shed"]) == accepted

    def test_matrix_with_lifecycle_limits(self, model, requests_x,
                                          monkeypatch):
        """Deadlines + shedding layered on top of injected latency still
        account for every request across all four outcome classes."""
        spec = PRESETS.get("latency", next(iter(PRESETS.values())))[0]
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        outcomes, stats, accepted = run_fleet(
            model, requests_x, matrix_config(queue_limit=16),
            deadline_ms=500.0)
        assert len(outcomes) == len(requests_x)
        assert all(isinstance(o, (int,) + ALLOWED) for o in outcomes)
        assert (stats["completed"] + stats["failed"]
                + stats["deadline_expired"] + stats["shed"]) == accepted

    @pytest.mark.skipif(bool(_ENV_SPEC),
                        reason="built-in presets replaced by REPRO_FAULTS")
    def test_corruption_actually_exercises_the_retry_path(self, model,
                                                          requests_x,
                                                          monkeypatch):
        spec, _ = PRESETS["corrupt"]
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        outcomes, stats, _ = run_fleet(model, requests_x, matrix_config())
        assert all(isinstance(o, int) for o in outcomes), \
            "inline retry must fully absorb ring corruption"
        assert stats["transport"]["ring_retries"] >= 1, \
            "preset never hit a CRC check; it tests nothing"

    @pytest.mark.skipif(bool(_ENV_SPEC),
                        reason="built-in presets replaced by REPRO_FAULTS")
    def test_latency_faults_keep_the_label_stream(self, model, requests_x,
                                                  monkeypatch):
        """Latency shifts timing, not order: with count-cut batches the
        label stream stays byte-identical to the calm run."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        calm, calm_stats, _ = run_fleet(model, requests_x, matrix_config())
        spec, _ = PRESETS["latency"]
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        faulty, _, _ = run_fleet(model, requests_x, matrix_config())
        assert calm_stats["failed"] == 0
        assert calm == faulty
