"""Parity tests: the vectorized evaluation engine must agree bit-for-bit
(within 1e-9 relative) with the scalar reference path across randomized
layer shapes, precisions, and all four accelerator designs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    BitFusionAccelerator,
    DNNGuardAccelerator,
    StripesAccelerator,
    TwoInOneAccelerator,
    LayerShape,
    network_layers,
)
from repro.accelerator.mac import (
    FixedPointMAC,
    SpatialBitFusionMAC,
    SpatialTemporalMAC,
    TemporalBitSerialMAC,
)
from repro.accelerator.optimizer import OptimizerConfig
from repro.quantization import Precision

RTOL = 1e-9
FAST = OptimizerConfig(population_size=6, total_cycles=1, seed=0)


def random_layers(count: int = 8, seed: int = 7):
    """Randomized conv/FC shapes in the range the paper's workloads span."""
    rng = np.random.default_rng(seed)
    layers = []
    for index in range(count):
        if rng.random() < 0.25:     # FC layer
            layers.append(LayerShape(name=f"fc{index}", n=1,
                                     k=int(rng.integers(10, 1200)),
                                     c=int(rng.integers(16, 2048)),
                                     y=1, x=1, r=1, s=1))
        else:
            feature = int(rng.choice([4, 7, 8, 14, 16, 28, 32]))
            kernel = int(rng.choice([1, 3, 5]))
            layers.append(LayerShape(name=f"conv{index}", n=1,
                                     k=int(rng.integers(8, 512)),
                                     c=int(rng.integers(3, 512)),
                                     y=feature, x=feature,
                                     r=kernel, s=kernel,
                                     stride=int(rng.choice([1, 2]))))
    return layers


def accelerator_factories():
    return [
        ("2-in-1", lambda: TwoInOneAccelerator(optimizer_config=FAST)),
        ("BitFusion", lambda: BitFusionAccelerator()),
        ("Stripes", lambda: StripesAccelerator(optimizer_config=FAST)),
        ("DNNGuard", lambda: DNNGuardAccelerator()),
    ]


def assert_performance_equal(reference, engine_result):
    assert engine_result.compute_cycles == pytest.approx(
        reference.compute_cycles, rel=RTOL)
    assert engine_result.total_cycles == pytest.approx(
        reference.total_cycles, rel=RTOL)
    assert engine_result.total_energy == pytest.approx(
        reference.total_energy, rel=RTOL)
    assert engine_result.spatial_utilization == pytest.approx(
        reference.spatial_utilization, rel=RTOL)
    assert engine_result.mapping_efficiency == pytest.approx(
        reference.mapping_efficiency, rel=RTOL)
    for boundary, cycles in reference.memory_cycles.items():
        assert engine_result.memory_cycles[boundary] == pytest.approx(
            cycles, rel=RTOL)
    for boundary, tensors in reference.traffic_bits.items():
        for tensor, bits in tensors.items():
            assert engine_result.traffic_bits[boundary][tensor] == pytest.approx(
                bits, rel=RTOL)
    for component, value in reference.energy_breakdown.items():
        assert engine_result.energy_breakdown[component] == pytest.approx(
            value, rel=RTOL)


@pytest.mark.parametrize("name,factory", accelerator_factories())
def test_engine_matches_scalar_reference(name, factory):
    accelerator = factory()
    precisions = [1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 16]
    for layer in random_layers():
        for precision in precisions:
            reference = accelerator.evaluate_layer_reference(layer, precision)
            engine = accelerator.evaluate_layer(layer, precision)
            assert_performance_equal(reference, engine)


@pytest.mark.parametrize("name,factory", accelerator_factories())
def test_grid_matches_network_aggregates(name, factory):
    accelerator = factory()
    layers = network_layers("resnet18", "cifar10")
    precisions = [2, 4, 8, 16]
    grid = accelerator.evaluate_grid(layers, precisions)
    for j, precision in enumerate(precisions):
        network = accelerator.evaluate_network(layers, precision)
        assert grid.network_cycles()[j] == pytest.approx(
            network.total_cycles, rel=RTOL)
        assert grid.network_energy()[j] == pytest.approx(
            network.total_energy, rel=RTOL)
        assert grid.throughput_fps()[j] == pytest.approx(
            network.throughput_fps, rel=RTOL)


@pytest.mark.parametrize("unit_cls", [SpatialTemporalMAC, SpatialBitFusionMAC,
                                      TemporalBitSerialMAC, FixedPointMAC])
def test_vectorized_mac_models_match_scalar(unit_cls):
    """The closed-form array cost models equal the scalar recurrences."""
    unit = unit_cls()
    rng = np.random.default_rng(3)
    wb = rng.integers(1, 33, size=64)
    ab = rng.integers(1, 33, size=64)
    macs = unit.macs_per_cycle_array(wb, ab)
    energy = unit.energy_per_mac_array(wb, ab)
    for i in range(len(wb)):
        precision = Precision(int(wb[i]), int(ab[i]))
        assert macs[i] == pytest.approx(unit.macs_per_cycle(precision),
                                        rel=RTOL)
        assert energy[i] == pytest.approx(unit.energy_per_mac(precision),
                                          rel=RTOL)


def test_grid_deduplicates_repeated_shapes():
    """Same-shaped layers must produce identical rows from one evaluation."""
    accelerator = BitFusionAccelerator()
    accelerator.engine.invalidate()
    layer = LayerShape(name="a", n=1, k=64, c=32, y=16, x=16, r=3, s=3)
    clone = LayerShape(name="b", n=1, k=64, c=32, y=16, x=16, r=3, s=3)
    grid = accelerator.evaluate_grid([layer, clone], [4, 8])
    assert np.array_equal(grid.total_cycles[0], grid.total_cycles[1])
    assert np.array_equal(grid.total_energy[0], grid.total_energy[1])
    # Only one shape was actually simulated.
    assert accelerator.engine.cache_info()["entries"] == 2
