"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, no_grad, stack
from repro.nn.tensor import _unbroadcast


def numeric_gradient(fn, array, index, eps=1e-3):
    old = array[index]
    array[index] = old + eps
    plus = fn()
    array[index] = old - eps
    minus = fn()
    array[index] = old
    return (plus - minus) / (2 * eps)


class TestTensorBasics:
    def test_construction_defaults_to_float32(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.dtype == np.float32
        assert t.shape == (2, 2)
        assert not t.requires_grad

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_zeros_ones_randn(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)
        r = Tensor.randn(5, 5, rng=np.random.default_rng(0))
        assert r.shape == (5, 5)

    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(RuntimeError):
            out.backward()

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad
        assert y._backward is None


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3, 4])
        assert np.allclose(b.grad, [1, 2])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert np.allclose(a.grad, [1])
        assert np.allclose(b.grad, [-1])
        c = Tensor([2.0], requires_grad=True)
        (-c).backward()
        assert np.allclose(c.grad, [-1])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_rsub_rdiv_radd_rmul(self):
        a = Tensor([2.0], requires_grad=True)
        assert np.allclose((5 - a).data, [3.0])
        assert np.allclose((8 / a).data, [4.0])
        assert np.allclose((5 + a).data, [7.0])
        assert np.allclose((5 * a).data, [10.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_grad_accumulates_over_multiple_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()          # d/da a^2 = 2a = 4
        assert np.allclose(a.grad, [4.0])


class TestUnaryOps:
    @pytest.mark.parametrize("op,reference", [
        ("exp", np.exp), ("log", np.log), ("sqrt", np.sqrt),
        ("tanh", np.tanh), ("abs", np.abs),
    ])
    def test_forward_matches_numpy(self, op, reference):
        x = Tensor([0.5, 1.5, 2.5])
        assert np.allclose(getattr(x, op)().data, reference(x.data), atol=1e-6)

    def test_sigmoid_range(self):
        x = Tensor(np.linspace(-5, 5, 11))
        y = x.sigmoid().data
        assert np.all((y > 0) & (y < 1))

    def test_relu_gradient_masks_negatives(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_clip_gradient_masks_saturated(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1, 1).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_exp_gradient_property(self, values):
        x = Tensor(np.array(values, dtype=np.float32), requires_grad=True)
        x.exp().sum().backward()
        assert np.allclose(x.grad, np.exp(np.array(values, dtype=np.float32)),
                           rtol=1e-4, atol=1e-5)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(x.grad, np.ones((3, 4)))

    def test_mean_gradient(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.1)

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1, 0]])

    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_gradient(self):
        x = Tensor(np.random.rand(2, 3, 4).astype(np.float32), requires_grad=True)
        x.transpose(2, 0, 1).sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten(1).shape == (2, 12)

    def test_getitem_gradient(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        assert np.allclose(x.grad, expected)

    def test_matmul_forward_and_gradient(self):
        a = Tensor(np.random.rand(3, 4).astype(np.float32), requires_grad=True)
        b = Tensor(np.random.rand(4, 2).astype(np.float32), requires_grad=True)
        out = a @ b
        assert np.allclose(out.data, a.data @ b.data, atol=1e-5)
        out.sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 2)

    def test_matmul_numeric_gradient(self):
        rng = np.random.default_rng(1)
        a_data = rng.normal(size=(2, 3)).astype(np.float32)
        b_data = rng.normal(size=(3, 2)).astype(np.float32)
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def loss():
            return float(((a_data @ b_data) ** 2).sum())

        num = numeric_gradient(loss, a_data, (0, 1))
        assert a.grad[0, 1] == pytest.approx(num, rel=0.05)


class TestConcatenateStack:
    def test_concatenate_forward_and_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(2 * np.ones((3, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1)
        assert np.allclose(b.grad, 1)

    def test_stack_forward_and_grad(self):
        tensors = [Tensor(np.full((2,), float(i)), requires_grad=True)
                   for i in range(3)]
        out = stack(tensors, axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, 1)


class TestUnbroadcast:
    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_restores_shape(self, rows, cols):
        grad = np.ones((rows, cols), dtype=np.float32)
        assert _unbroadcast(grad, (1, cols)).shape == (1, cols)
        assert _unbroadcast(grad, (cols,)).shape == (cols,)

    def test_unbroadcast_sums_contributions(self):
        grad = np.ones((3, 4), dtype=np.float32)
        assert np.allclose(_unbroadcast(grad, (4,)), 3.0)
