"""Tests for the adversarial attacks (constraints, effectiveness, protocols)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    APGD,
    AutoAttack,
    BanditsAttack,
    CWInf,
    EnsemblePGD,
    FGSM,
    FGSMRS,
    PGD,
    eps_from_255,
    input_gradient,
    predict_labels,
)
from repro.attacks.base import Attack
from repro.defense import Trainer, TrainingConfig, evaluate_accuracy
from repro.quantization import PrecisionSet

EPS = eps_from_255(16)


@pytest.fixture(scope="module")
def trained_setup(tiny_dataset):
    """A naturally trained tiny model (vulnerable to attacks) plus eval data."""
    from repro.models import preact_resnet18

    model = preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                            blocks_per_stage=(1, 1), seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=4, batch_size=48, lr=0.1))
    trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train)
    x = tiny_dataset.x_test[:48]
    y = tiny_dataset.y_test[:48]
    return model, x, y


ALL_ATTACKS = [
    ("fgsm", lambda: FGSM(EPS)),
    ("fgsm_rs", lambda: FGSMRS(EPS)),
    ("pgd", lambda: PGD(EPS, steps=5)),
    ("cw", lambda: CWInf(EPS, steps=5)),
    ("apgd", lambda: APGD(EPS, steps=5)),
    ("autoattack", lambda: AutoAttack(EPS, steps=5)),
    ("bandits", lambda: BanditsAttack(EPS, steps=10)),
]


class TestAttackConstraints:
    @pytest.mark.parametrize("name,factory", ALL_ATTACKS)
    def test_within_epsilon_ball_and_pixel_box(self, name, factory, trained_setup):
        model, x, y = trained_setup
        result = factory().run(model, x, y)
        assert result.x_adv.shape == x.shape
        assert result.x_adv.dtype == np.float32
        assert np.max(np.abs(result.x_adv - x)) <= EPS + 1e-5
        assert result.x_adv.min() >= -1e-6
        assert result.x_adv.max() <= 1.0 + 1e-6

    def test_epsilon_zero_leaves_input_unchanged(self, trained_setup):
        model, x, y = trained_setup
        result = PGD(0.0, steps=3).run(model, x, y)
        assert np.allclose(result.x_adv, x, atol=1e-6)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PGD(-0.1)

    def test_project_is_idempotent(self):
        attack = PGD(EPS, steps=1)
        rng = np.random.default_rng(0)
        x = rng.random((4, 3, 8, 8)).astype(np.float32)
        x_adv = x + rng.normal(scale=0.5, size=x.shape).astype(np.float32)
        once = attack.project(x, x_adv)
        twice = attack.project(x, once)
        assert np.allclose(once, twice)

    @given(st.floats(1.0, 32.0))
    @settings(max_examples=20, deadline=None)
    def test_eps_from_255(self, eps):
        assert eps_from_255(eps) == pytest.approx(eps / 255.0)


class TestAttackEffectiveness:
    def test_pgd_reduces_accuracy_of_natural_model(self, trained_setup):
        model, x, y = trained_setup
        clean = evaluate_accuracy(model, x, y)
        result = PGD(EPS, steps=10).run(model, x, y)
        adv = evaluate_accuracy(model, result.x_adv, y)
        assert clean > 0.6
        assert adv < clean - 0.2

    def test_more_pgd_steps_is_at_least_as_strong(self, trained_setup):
        model, x, y = trained_setup
        weak = evaluate_accuracy(model, PGD(EPS, steps=1, random_init=False)
                                 .run(model, x, y).x_adv, y)
        strong = evaluate_accuracy(model, PGD(EPS, steps=10, random_init=False)
                                   .run(model, x, y).x_adv, y)
        assert strong <= weak + 0.05

    def test_larger_epsilon_is_at_least_as_strong(self, trained_setup):
        model, x, y = trained_setup
        small = evaluate_accuracy(model, PGD(EPS / 4, steps=5).run(model, x, y).x_adv, y)
        large = evaluate_accuracy(model, PGD(EPS, steps=5).run(model, x, y).x_adv, y)
        assert large <= small + 0.05

    def test_fgsm_reduces_accuracy(self, trained_setup):
        model, x, y = trained_setup
        clean = evaluate_accuracy(model, x, y)
        adv = evaluate_accuracy(model, FGSM(EPS).run(model, x, y).x_adv, y)
        assert adv < clean

    def test_success_mask_matches_predictions(self, trained_setup):
        model, x, y = trained_setup
        result = PGD(EPS, steps=5).run(model, x, y)
        preds = predict_labels(model, result.x_adv)
        assert np.array_equal(result.success_mask, preds != y)
        assert result.success_rate == pytest.approx(result.success_mask.mean())

    def test_restarts_keep_best_per_example(self, trained_setup):
        model, x, y = trained_setup
        single = PGD(EPS, steps=5, restarts=1, rng=np.random.default_rng(0))
        multi = PGD(EPS, steps=5, restarts=3, rng=np.random.default_rng(0))
        acc_single = evaluate_accuracy(model, single.run(model, x, y).x_adv, y)
        acc_multi = evaluate_accuracy(model, multi.run(model, x, y).x_adv, y)
        assert acc_multi <= acc_single + 0.05

    def test_bandits_is_gradient_free_but_effective(self, trained_setup):
        model, x, y = trained_setup
        clean = evaluate_accuracy(model, x, y)
        attack = BanditsAttack(EPS, steps=30)
        result = attack.run(model, x[:24], y[:24])
        assert attack.queries_used > 0
        adv = evaluate_accuracy(model, result.x_adv, y[:24])
        assert adv <= clean

    def test_attack_restores_model_training_mode(self, trained_setup):
        model, x, y = trained_setup
        model.train()
        PGD(EPS, steps=1).run(model, x[:8], y[:8])
        assert model.training
        model.eval()
        PGD(EPS, steps=1).run(model, x[:8], y[:8])
        assert not model.training


class TestGradientHelpers:
    def test_input_gradient_shape_and_nonzero(self, trained_setup):
        model, x, y = trained_setup
        for loss in ("ce", "cw", "dlr"):
            grad = input_gradient(model, x[:8], y[:8], loss=loss)
            assert grad.shape == x[:8].shape
            assert np.abs(grad).sum() > 0

    def test_unknown_loss_rejected(self, trained_setup):
        model, x, y = trained_setup
        with pytest.raises(ValueError):
            input_gradient(model, x[:2], y[:2], loss="hinge")

    def test_predict_labels_batches(self, trained_setup):
        model, x, y = trained_setup
        assert np.array_equal(predict_labels(model, x, batch_size=7),
                              predict_labels(model, x, batch_size=64))


class TestAutoAttack:
    def test_apgd_checkpoints_are_increasing(self):
        apgd = APGD(EPS, steps=25)
        checkpoints = apgd._checkpoints()
        assert checkpoints == sorted(checkpoints)
        assert checkpoints[-1] <= 25

    def test_autoattack_at_least_as_strong_as_single_apgd(self, trained_setup):
        model, x, y = trained_setup
        apgd_acc = evaluate_accuracy(
            model, APGD(EPS, steps=5).run(model, x, y).x_adv, y)
        auto_acc = evaluate_accuracy(
            model, AutoAttack(EPS, steps=5).run(model, x, y).x_adv, y)
        assert auto_acc <= apgd_acc + 0.05


class TestEnsemblePGD:
    def test_runs_on_rps_model_and_respects_constraints(self, trained_rps_model,
                                                        tiny_dataset,
                                                        precision_set):
        x = tiny_dataset.x_test[:24]
        y = tiny_dataset.y_test[:24]
        attack = EnsemblePGD(EPS, precision_set, steps=3)
        result = attack.run(trained_rps_model, x, y)
        assert np.max(np.abs(result.x_adv - x)) <= EPS + 1e-5
        assert result.x_adv.min() >= -1e-6 and result.x_adv.max() <= 1 + 1e-6

    def test_name_reflects_steps(self, precision_set):
        assert EnsemblePGD(EPS, precision_set, steps=20).name == "E-PGD-20"


class TestBaseAttack:
    def test_perturb_is_abstract(self):
        attack = Attack(EPS)
        with pytest.raises(NotImplementedError):
            attack.perturb(None, np.zeros((1, 3, 4, 4), np.float32), np.zeros(1))

    def test_random_start_stays_in_ball(self):
        attack = Attack(EPS, rng=np.random.default_rng(0))
        x = np.full((8, 3, 4, 4), 0.5, dtype=np.float32)
        started = attack.random_start(x)
        assert np.max(np.abs(started - x)) <= EPS + 1e-6
