"""Unit tests for the neural-network primitives in repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F
from repro.nn import Tensor


def reference_conv2d(x, w, b, stride, padding):
    """Naive direct convolution used as a correctness oracle."""
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (wdt + 2 * padding - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.float32)
    for ni in range(n):
        for ko in range(c_out):
            for yo in range(out_h):
                for xo in range(out_w):
                    patch = xp[ni, :, yo * stride:yo * stride + kh,
                               xo * stride:xo * stride + kw]
                    out[ni, ko, yo, xo] = (patch * w[ko]).sum()
            if b is not None:
                out[ni, ko] += b[ko]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride,
                       padding=padding)
        expected = reference_conv2d(x, w, b, stride, padding)
        assert out.shape == expected.shape
        assert np.allclose(out.data, expected, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 8, 8))),
                     Tensor(np.zeros((4, 2, 3, 3))))

    def test_gradients_flow_to_all_parents(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32), requires_grad=True)
        w = nn.Parameter(rng.normal(size=(4, 3, 3, 3)).astype(np.float32))
        b = nn.Parameter(np.zeros(4, dtype=np.float32))
        out = F.conv2d(x, w, b, stride=1, padding=1)
        (out * out).sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert w.grad is not None and w.grad.shape == w.shape
        assert b.grad is not None and b.grad.shape == b.shape

    def test_input_gradient_numeric(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        w_data = rng.normal(size=(3, 2, 3, 3)).astype(np.float32) * 0.2
        x = Tensor(x_data, requires_grad=True)
        out = F.conv2d(x, Tensor(w_data), None, stride=1, padding=1)
        (out * out).sum().backward()

        index = (0, 1, 2, 2)
        eps = 1e-2

        def loss(arr):
            o = reference_conv2d(arr, w_data, None, 1, 1)
            return float((o * o).sum())

        perturbed = x_data.copy()
        perturbed[index] += eps
        plus = loss(perturbed)
        perturbed[index] -= 2 * eps
        minus = loss(perturbed)
        numeric = (plus - minus) / (2 * eps)
        assert x.grad[index] == pytest.approx(numeric, rel=0.05, abs=1e-2)

    def test_im2col_col2im_adjoint(self):
        """col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = F.im2col(x, (3, 3), stride=1, padding=1)
        c = rng.normal(size=cols.shape).astype(np.float32)
        lhs = float((cols * c).sum())
        rhs = float((x * F.col2im(c, x.shape, (3, 3), 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == pytest.approx(4)
        assert x.grad[0, 0, 1, 1] == pytest.approx(1)
        assert x.grad[0, 0, 0, 0] == pytest.approx(0)

    def test_avg_pool_forward_and_gradient(self):
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_adaptive_avg_pool_requires_divisibility(self):
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_adaptive_avg_pool_global(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.adaptive_avg_pool2d(x, 1)
        assert out.shape == (1, 1, 1, 1)
        assert out.data.item() == pytest.approx(7.5)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        gamma = nn.Parameter(np.ones(4)); beta = nn.Parameter(np.zeros(4))
        rm, rv = np.zeros(4, np.float32), np.ones(4, np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-3)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_updated_in_training_only(self):
        x = Tensor(np.random.default_rng(0).normal(2.0, 1.0, (16, 3, 4, 4)).astype(np.float32))
        gamma = nn.Parameter(np.ones(3)); beta = nn.Parameter(np.zeros(3))
        rm, rv = np.zeros(3, np.float32), np.ones(3, np.float32)
        F.batch_norm(x, gamma, beta, rm, rv, training=True, momentum=0.5)
        assert not np.allclose(rm, 0)
        rm_copy = rm.copy()
        F.batch_norm(x, gamma, beta, rm, rv, training=False)
        assert np.allclose(rm, rm_copy)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        gamma = nn.Parameter(np.ones(2)); beta = nn.Parameter(np.zeros(2))
        rm = np.full(2, 10.0, dtype=np.float32)
        rv = np.ones(2, dtype=np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=False)
        assert np.allclose(out.data, 0, atol=1e-3)

    def test_2d_input_supported(self):
        x = Tensor(np.random.default_rng(0).normal(size=(10, 6)).astype(np.float32))
        gamma = nn.Parameter(np.ones(6)); beta = nn.Parameter(np.zeros(6))
        rm, rv = np.zeros(6, np.float32), np.ones(6, np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert out.shape == (10, 6)


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)).astype(np.float32))
        probs = F.softmax(x).data
        assert np.allclose(probs.sum(axis=1), 1, atol=1e-5)
        assert np.all(probs >= 0)

    def test_log_softmax_matches_softmax_log(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data),
                           atol=1e-5)

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(2).normal(size=(3, 5)).astype(np.float32)
        assert np.allclose(F.softmax(Tensor(x)).data,
                           F.softmax(Tensor(x + 100.0)).data, atol=1e-5)

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_uniform_equals_log_classes(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-4)

    def test_cross_entropy_gradient_is_probs_minus_onehot(self):
        logits = Tensor(np.zeros((2, 3), dtype=np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([0, 2])).backward()
        expected = np.full((2, 3), 1 / 3, dtype=np.float32)
        expected[0, 0] -= 1
        expected[1, 2] -= 1
        assert np.allclose(logits.grad, expected / 2, atol=1e-5)

    def test_nll_sum_reduction(self):
        log_probs = F.log_softmax(Tensor(np.zeros((3, 4), dtype=np.float32)))
        loss_sum = F.nll_loss(log_probs, np.array([0, 1, 2]), reduction="sum")
        assert loss_sum.item() == pytest.approx(3 * np.log(4), rel=1e-4)

    def test_nll_unknown_reduction(self):
        log_probs = F.log_softmax(Tensor(np.zeros((1, 2), dtype=np.float32)))
        with pytest.raises(ValueError):
            F.nll_loss(log_probs, np.array([0]), reduction="bogus")

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0], dtype=np.float32))
        assert loss.item() == pytest.approx(2.5)


class TestDropoutAndPad:
    def test_dropout_identity_at_eval(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert np.allclose(F.dropout(x, 0.5, training=False).data, 1.0)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)

    def test_pad2d_shape_and_gradient(self):
        x = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32), requires_grad=True)
        out = F.pad2d(x, 2)
        assert out.shape == (1, 1, 7, 7)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32))
        assert F.pad2d(x, 0) is x


class TestLinear:
    def test_linear_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 8)).astype(np.float32)
        w = rng.normal(size=(3, 8)).astype(np.float32)
        b = rng.normal(size=(3,)).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b, atol=1e-5)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_linear_shape_property(self, batch, in_features, out_features):
        x = Tensor(np.zeros((batch, in_features), dtype=np.float32))
        w = Tensor(np.zeros((out_features, in_features), dtype=np.float32))
        assert F.linear(x, w).shape == (batch, out_features)
