"""Cache-correctness tests for the evaluation engine's memo layer:
hits on repeated queries, invalidation when the accelerator configuration
changes, and trade-off curves scored through the engine."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.accelerator import (
    BitFusionAccelerator,
    DNNGuardAccelerator,
    EvaluationEngine,
    MemoryHierarchy,
    MemoryLevel,
    TwoInOneAccelerator,
    network_layers,
)
from repro.accelerator.mac.base import AreaBreakdown
from repro.accelerator.optimizer import OptimizerConfig
from repro.accelerator.performance_model import ArrayConfig
from repro.core.tradeoff import OperatingPoint, TradeoffController, TradeoffCurve
from repro.quantization import Precision, PrecisionSet

FAST = OptimizerConfig(population_size=6, total_cycles=1, seed=0)


@pytest.fixture()
def accelerator():
    accelerator = TwoInOneAccelerator(optimizer_config=FAST)
    # Engines share memo stores across instances with identical configs;
    # start each test from a cold cache so the counters are deterministic.
    accelerator.engine.invalidate()
    accelerator.engine.stats = type(accelerator.engine.stats)()
    return accelerator


@pytest.fixture()
def layers():
    return network_layers("resnet18", "cifar10")


class TestCacheHits:
    def test_identical_queries_hit(self, accelerator, layers):
        accelerator.evaluate_network(layers, 4)
        before = accelerator.engine.cache_info()
        assert before["misses"] > 0
        result_a = accelerator.evaluate_network(layers, 4)
        after = accelerator.engine.cache_info()
        assert after["misses"] == before["misses"]          # no re-simulation
        assert after["hits"] >= before["hits"] + len(layers)
        result_b = accelerator.evaluate_network(layers, 4)
        assert result_b.total_cycles == result_a.total_cycles
        assert result_b.total_energy == result_a.total_energy

    def test_shape_keyed_sharing(self, accelerator, layers):
        """Repeated layer shapes cost one simulation, not one per layer."""
        accelerator.evaluate_network(layers, 8)
        entries = accelerator.engine.cache_info()["entries"]
        unique_shapes = {(l.n, l.k, l.c, l.y, l.x, l.r, l.s, l.stride)
                         for l in layers}
        assert entries == len(unique_shapes)

    def test_grid_primes_scalar_queries(self, accelerator, layers):
        accelerator.evaluate_grid(layers, [4, 6, 8])
        before = accelerator.engine.cache_info()["misses"]
        accelerator.evaluate_layer(layers[0], 6)
        accelerator.rps_average_metrics(layers, PrecisionSet([4, 8]))
        assert accelerator.engine.cache_info()["misses"] == before

    def test_rps_average_matches_manual_mean(self, accelerator, layers):
        metrics = accelerator.rps_average_metrics(layers, PrecisionSet([4, 8]))
        fps = [accelerator.throughput_fps(layers, p) for p in (4, 8)]
        energy = [accelerator.energy_per_inference(layers, p) for p in (4, 8)]
        assert metrics["average_fps"] == pytest.approx(np.mean(fps), rel=1e-9)
        assert metrics["average_energy"] == pytest.approx(np.mean(energy),
                                                          rel=1e-9)


class TestInvalidation:
    def test_config_change_invalidates(self, accelerator, layers):
        layer = layers[0]
        baseline = accelerator.evaluate_layer(layer, 4)
        # Doubling the array must be observed by the next query.
        accelerator.num_units *= 2
        accelerator.array = type(accelerator.array)(
            mac_unit=accelerator.mac_unit, num_units=accelerator.num_units,
            frequency_hz=accelerator.array.frequency_hz)
        accelerator.model.array = accelerator.array
        invalidations = accelerator.engine.stats.invalidations
        misses = accelerator.engine.stats.misses
        changed = accelerator.evaluate_layer(layer, 4)
        assert accelerator.engine.stats.invalidations == invalidations + 1
        assert accelerator.engine.stats.misses == misses + 1  # re-simulated
        # A bigger array can only tie or improve the compute bound.
        assert changed.compute_cycles <= baseline.compute_cycles
        assert changed.spatial_utilization <= baseline.spatial_utilization

    def test_derating_change_invalidates(self, accelerator, layers):
        layer = layers[0]
        baseline = accelerator.evaluate_layer(layer, 4)
        accelerator.compute_derating = 2.0
        derated = accelerator.evaluate_layer(layer, 4)
        assert derated.compute_cycles == pytest.approx(
            2.0 * baseline.compute_cycles, rel=1e-9)

    def test_manual_invalidate_clears(self, accelerator, layers):
        accelerator.evaluate_network(layers, 4)
        assert accelerator.engine.cache_info()["entries"] > 0
        accelerator.engine.invalidate()
        assert accelerator.engine.cache_info()["entries"] == 0

    def test_lru_eviction_bounds_entries(self, layers):
        accelerator = BitFusionAccelerator()
        accelerator.engine.invalidate()
        accelerator.engine.max_entries = 4
        accelerator.evaluate_network(layers, 4)
        accelerator.evaluate_network(layers, 8)
        info = accelerator.engine.cache_info()
        assert info["entries"] <= 4
        assert info["evictions"] > 0

    def test_grid_larger_than_cache_still_completes(self, layers):
        """A single grid whose cell count exceeds max_entries must not rely
        on the LRU retaining every cell it just computed."""
        accelerator = BitFusionAccelerator()
        accelerator.engine.invalidate()
        accelerator.engine.max_entries = 4
        grid = accelerator.evaluate_grid(layers, [4, 8])
        assert np.all(grid.total_cycles > 0)
        assert accelerator.engine.cache_info()["entries"] <= 4
        # And the values agree with an uncached engine.
        fresh = BitFusionAccelerator()
        fresh.engine.invalidate()
        reference = fresh.evaluate_grid(layers, [4, 8])
        assert np.allclose(grid.total_cycles, reference.total_cycles)
        assert np.allclose(grid.total_energy, reference.total_energy)


def _mutate_memory_level(accelerator, level_index: int, **changes) -> None:
    levels = list(accelerator.model.memory.levels)
    levels[level_index] = replace(levels[level_index], **changes)
    accelerator.model.memory = MemoryHierarchy(levels)


class TestFingerprintAudit:
    """Every field that affects a cached metric must move the fingerprint —
    a missed field silently serves stale cached results."""

    #: (label, mutator) pairs covering the whole cost-relevant config
    #: surface: MAC unit identity + area breakdown + native precision
    #: ceiling, array geometry and clock, derating, dataflow policy, every
    #: evolutionary-search hyper-parameter, and each field of each memory
    #: level the model reads.
    MUTATIONS = [
        ("mac_unit.type", lambda acc: setattr(
            acc, "mac_unit", type("OtherMAC", (type(acc.mac_unit),), {})())),
        ("mac_unit.name", lambda acc: setattr(acc.mac_unit, "name", "other")),
        ("mac_unit.max_native_bits", lambda acc: setattr(
            acc.mac_unit, "max_native_bits", 4)),
        ("mac_unit.area_breakdown", lambda acc: setattr(
            acc.mac_unit, "_breakdown",
            AreaBreakdown(multiplier=1.0, shift_add=2.0, register=3.0))),
        ("num_units", lambda acc: setattr(acc, "num_units",
                                          acc.num_units + 1)),
        ("array.frequency_hz", lambda acc: setattr(
            acc, "array", ArrayConfig(mac_unit=acc.mac_unit,
                                      num_units=acc.num_units,
                                      frequency_hz=1e9))),
        ("compute_derating", lambda acc: setattr(acc, "compute_derating",
                                                 1.5)),
        ("optimize_dataflow", lambda acc: setattr(
            acc, "optimize_dataflow", not acc.optimize_dataflow)),
        ("optimizer.population_size", lambda acc: setattr(
            acc, "optimizer_config",
            replace(acc.optimizer_config,
                    population_size=acc.optimizer_config.population_size + 1))),
        ("optimizer.total_cycles", lambda acc: setattr(
            acc, "optimizer_config",
            replace(acc.optimizer_config,
                    total_cycles=acc.optimizer_config.total_cycles + 1))),
        ("optimizer.survivor_fraction", lambda acc: setattr(
            acc, "optimizer_config",
            replace(acc.optimizer_config, survivor_fraction=0.77))),
        ("optimizer.objective", lambda acc: setattr(
            acc, "optimizer_config",
            replace(acc.optimizer_config, objective="latency"))),
        ("optimizer.seed", lambda acc: setattr(
            acc, "optimizer_config",
            replace(acc.optimizer_config,
                    seed=acc.optimizer_config.seed + 1))),
        ("memory.dram.bandwidth", lambda acc: _mutate_memory_level(
            acc, 0, bandwidth_bits_per_cycle=999.0)),
        ("memory.dram.energy", lambda acc: _mutate_memory_level(
            acc, 0, energy_per_bit=99.0)),
        ("memory.gb.capacity", lambda acc: _mutate_memory_level(
            acc, 1, capacity_bits=8e6)),
        ("memory.gb.bandwidth", lambda acc: _mutate_memory_level(
            acc, 1, bandwidth_bits_per_cycle=999.0)),
        ("memory.gb.energy", lambda acc: _mutate_memory_level(
            acc, 1, energy_per_bit=9.0)),
        ("memory.gb.name", lambda acc: _mutate_memory_level(
            acc, 1, name="RenamedBuffer")),
        ("memory.rf.capacity", lambda acc: _mutate_memory_level(
            acc, 2, capacity_bits=32e3)),
        ("memory.rf.energy", lambda acc: _mutate_memory_level(
            acc, 2, energy_per_bit=0.9)),
    ]

    @pytest.mark.parametrize("label,mutate",
                             MUTATIONS, ids=[m[0] for m in MUTATIONS])
    def test_every_config_field_moves_the_fingerprint(self, label, mutate):
        accelerator = TwoInOneAccelerator(optimizer_config=FAST)
        baseline = accelerator.engine.config_fingerprint()
        mutate(accelerator)
        assert accelerator.engine.config_fingerprint() != baseline, \
            f"mutating {label} did not change the fingerprint"

    def test_fingerprint_is_stable_without_mutation(self):
        accelerator = TwoInOneAccelerator(optimizer_config=FAST)
        assert (accelerator.engine.config_fingerprint()
                == accelerator.engine.config_fingerprint())
        twin = TwoInOneAccelerator(optimizer_config=FAST)
        assert (twin.engine.config_fingerprint()
                == accelerator.engine.config_fingerprint())


class TestSharedStoreEviction:
    def test_evicted_store_rebinds_not_diverges(self, layers):
        """LRU-evicting a fingerprint from the shared registry must not let
        a *new* same-fingerprint engine diverge from a live engine that
        still holds the evicted store."""
        config = OptimizerConfig(population_size=6, total_cycles=1, seed=4242)
        first = TwoInOneAccelerator(optimizer_config=config)
        store = first.engine._store
        first.evaluate_layer(layers[0], 4)
        baseline_entries = first.engine.cache_info()["entries"]
        assert baseline_entries > 0

        # Flood the bounded registry with distinct fingerprints until the
        # first engine's store is evicted from the strong LRU.
        unit_area = BitFusionAccelerator().mac_unit.area
        for index in range(EvaluationEngine._MAX_SHARED_STORES + 2):
            BitFusionAccelerator(
                area_budget=unit_area * (50 + index))  # distinct num_units
        assert first.engine._fingerprint not in EvaluationEngine._SHARED_STORES

        # A newcomer with the same configuration must find the *same* store
        # (via the weak registry), not silently start a fresh one.
        second = TwoInOneAccelerator(optimizer_config=config)
        assert second.engine._store is store
        hits_before = second.engine.stats.hits
        second.evaluate_layer(layers[0], 4)
        assert second.engine.stats.hits == hits_before + 1  # warm, no miss
        assert second.engine.cache_info()["entries"] == baseline_entries


class TestEngineScoredCurves:
    def _scored_curve(self, accelerator, layers, caps=(8, 5, 4)):
        """Operating points with synthetic (descending) robustness, energy
        scored entirely through the engine."""
        full_set = PrecisionSet([3, 4, 5, 6, 7, 8])
        controller = TradeoffController(model=None, full_set=full_set)
        points = controller.operating_points(caps=list(caps))
        for rank, point in enumerate(points):
            point.robust_accuracy = 0.5 - 0.1 * rank
            point.natural_accuracy = 0.8
        controller.score_efficiency(points, accelerator, layers)
        return TradeoffCurve(points=points)

    def test_monotone_tradeoff_on_engine_scores(self, accelerator, layers):
        curve = self._scored_curve(accelerator, layers)
        for point in curve.points:
            assert point.average_energy is not None
            assert point.average_fps is not None
        # Shrinking the precision set towards cheap precisions must reduce
        # the engine-scored average energy monotonically.
        assert curve.is_monotone_tradeoff()

    def test_non_monotone_detected(self, accelerator, layers):
        curve = self._scored_curve(accelerator, layers)
        curve.points[0].average_energy, curve.points[-1].average_energy = (
            curve.points[-1].average_energy, curve.points[0].average_energy)
        assert not curve.is_monotone_tradeoff()

    def test_rps_points_include_extra_layers(self, layers):
        """Designs with mandatory extra work (DNNGuard's detection network)
        must account for it in RPS points exactly as in static points."""
        guard = DNNGuardAccelerator()
        metrics = guard.rps_average_metrics(layers, PrecisionSet([4, 8]))
        manual = np.mean([guard.evaluate_network(layers, p).total_energy
                          for p in (4, 8)])
        assert metrics["average_energy"] == pytest.approx(manual, rel=1e-9)

    def test_static_point_matches_network_evaluation(self, accelerator, layers):
        point = OperatingPoint(label="static 4-bit", precision_set=None,
                               static_precision=Precision(4))
        full_set = PrecisionSet([4, 8])
        controller = TradeoffController(model=None, full_set=full_set)
        controller.score_efficiency([point], accelerator, layers)
        network = accelerator.evaluate_network(layers, 4)
        assert point.average_energy == pytest.approx(network.total_energy,
                                                     rel=1e-9)
        assert point.average_fps == pytest.approx(network.throughput_fps,
                                                  rel=1e-9)
