"""Request-lifecycle robustness contracts (PR 8 tentpole).

Four escalation layers under test, all driven through the seeded
:mod:`repro.faults` layer rather than ad-hoc monkeypatching:

* **Deadlines** — a request whose deadline passes while it waits inside a
  formed micro-batch is dropped *pre-execution* and resolves with
  :class:`DeadlineExceeded`; expiries are counted separately from failures.
* **Load shedding** — past ``queue_limit`` in-flight requests, ``submit``
  sheds with :class:`RejectedError` *without consuming a precision draw*,
  so the accepted requests' label stream stays the seeded stream.
* **Hang detection** — a worker that goes silent while holding pending
  requests (SIGSTOP, or an injected ``hang`` fault) is killed by the
  supervisor's heartbeat monitor and escalates through the ordinary
  respawn/requeue path; budget exhaustion fails loudly, never silently.
* **Store retry/breaker** — the engine-store client retries transient
  failures with seeded exponential backoff and opens a circuit breaker
  after consecutive exhausted calls, half-open-probing its way back.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import faults
from repro.accelerator.store_service import (EngineStoreServer,
                                             RemoteEngineStore,
                                             StoreProtocolError)
from repro.faults import FaultPlan
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet
from repro.serving import (DeadlineExceeded, FleetConfig, FleetServer,
                           RejectedError, WorkerCrashError)

PS = PrecisionSet([3, 4, 6])
IMAGE = 16
SEED = 23


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def model():
    return preact_resnet18(num_classes=10, width=8, blocks_per_stage=(1, 1),
                           precisions=PS, seed=0)


@pytest.fixture(scope="module")
def requests_x():
    rng = np.random.default_rng(1)
    return [rng.random((3, IMAGE, IMAGE)).astype(np.float32)
            for _ in range(48)]


def lifecycle_config(**overrides) -> FleetConfig:
    defaults = dict(workers=1, max_batch=4, max_delay_ms=0.0, seed=SEED,
                    input_shape=(3, IMAGE, IMAGE), drain_timeout_s=60.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def resolve_all(futures, timeout=30):
    """Outcome per future: an int label or the raised exception (never a
    timeout — a future that cannot resolve IS the bug)."""
    outcomes = []
    for future in futures:
        error = future.exception(timeout=timeout)
        outcomes.append(error if error is not None else future.result())
    return outcomes


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expiry_inside_a_formed_micro_batch(self, model, requests_x):
        """A slow batch ahead in the queue makes later requests expire while
        they sit fully formed in the worker's buffers; the worker drops them
        at flush, pre-execution, and each resolves with DeadlineExceeded."""
        plan = FaultPlan.parse("fleet.worker.exec=latency:ms=300", seed=0)
        with faults.installed(plan):
            fleet = FleetServer(model, PS, lifecycle_config())
            fleet.start()
            futures = fleet.submit_many(requests_x[:12], deadline_ms=120.0)
            fleet.close()
        outcomes = resolve_all(futures)
        labels = [o for o in outcomes if isinstance(o, int)]
        expired = [o for o in outcomes if isinstance(o, DeadlineExceeded)]
        assert len(labels) + len(expired) == 12, outcomes
        assert labels, "every batch expired; the latency fault overshot"
        assert expired, "nothing expired behind a 300ms batch"
        stats = fleet.stats()
        assert stats["completed"] == len(labels)
        assert stats["deadline_expired"] == len(expired)
        assert stats["failed"] == 0, "expiries must not count as failures"

    def test_already_expired_requests_never_execute(self, model, requests_x):
        fleet = FleetServer(model, PS, lifecycle_config())
        fleet.start()
        futures = fleet.submit_many(requests_x[:8], deadline_ms=0.001)
        fleet.close()
        outcomes = resolve_all(futures)
        assert all(isinstance(o, DeadlineExceeded) for o in outcomes)
        stats = fleet.stats()
        assert stats["deadline_expired"] == 8
        assert stats["completed"] == 0

    def test_no_deadline_by_default(self, model, requests_x):
        fleet = FleetServer(model, PS, lifecycle_config())
        fleet.start()
        futures = fleet.submit_many(requests_x[:8])
        fleet.close()
        assert all(isinstance(o, int) for o in resolve_all(futures))
        assert fleet.stats()["deadline_expired"] == 0


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------

class TestLoadShedding:
    def test_burst_sheds_and_accepted_stream_stays_seeded(self, model,
                                                          requests_x):
        plan = FaultPlan.parse("fleet.worker.exec=latency:ms=100", seed=0)
        with faults.installed(plan):
            fleet = FleetServer(model, PS, lifecycle_config(queue_limit=4))
            fleet.start()
            futures = fleet.submit_many(requests_x)
            fleet.close()
        outcomes = resolve_all(futures)
        labels = [o for o in outcomes if isinstance(o, int)]
        shed = [o for o in outcomes if isinstance(o, RejectedError)]
        assert len(labels) + len(shed) == len(requests_x), outcomes
        assert shed, "48-deep burst against queue_limit=4 never shed"
        assert labels, "everything shed; nothing was served"
        stats = fleet.stats()
        assert stats["shed"] == len(shed)
        assert stats["completed"] == len(labels)
        # Shed requests consume no precision draw: the accepted requests'
        # histogram is exactly the first len(labels) draws of the stream.
        draw_rng = np.random.default_rng(SEED)
        expected: dict = {}
        for _ in labels:
            key = PS.sample(draw_rng).key
            expected[key] = expected.get(key, 0) + 1
        assert stats["precision_counts"] == \
            dict(sorted(expected.items(), key=lambda kv: str(kv[0])))

    def test_unlimited_queue_never_sheds(self, model, requests_x):
        fleet = FleetServer(model, PS, lifecycle_config(queue_limit=0))
        fleet.start()
        futures = fleet.submit_many(requests_x)
        fleet.close()
        assert all(isinstance(o, int) for o in resolve_all(futures))
        assert fleet.stats()["shed"] == 0


# ---------------------------------------------------------------------------
# Hang detection
# ---------------------------------------------------------------------------

class TestHangDetection:
    def test_sigstopped_worker_is_escalated_drop_free(self, model,
                                                      requests_x):
        """SIGSTOP freezes a worker without closing its pipe — invisible to
        EOF-based death detection.  The heartbeat monitor must notice the
        silence, kill the process, and let respawn/requeue resolve every
        accepted future."""
        plan = FaultPlan.parse("fleet.worker.exec=latency:ms=50", seed=0)
        with faults.installed(plan):
            fleet = FleetServer(model, PS, lifecycle_config(
                workers=2, heartbeat_s=0.2, hang_timeout_s=1.0))
            fleet.start()
            futures = fleet.submit_many(requests_x)
            os.kill(fleet.worker_pids()[0], signal.SIGSTOP)
            fleet.close()
        outcomes = resolve_all(futures)
        assert all(isinstance(o, int) for o in outcomes), outcomes
        stats = fleet.stats()
        assert stats["hangs"] >= 1, "monitor never detected the SIGSTOP"
        assert stats["respawns"] >= 1
        assert stats["completed"] == len(requests_x)
        assert stats["failed"] == 0

    def test_injected_hang_exhausts_budget_loudly(self, model, requests_x):
        """A worker that hangs on every incarnation burns its restart budget
        through repeated monitor escalations; the in-flight requests then
        fail with WorkerCrashError — loudly, with zero drops and no
        supervisor deadlock."""
        plan = FaultPlan.parse("fleet.worker.exec=hang:s=30", seed=0)
        with faults.installed(plan):
            fleet = FleetServer(model, PS, lifecycle_config(
                max_restarts=1, heartbeat_s=0.1, hang_timeout_s=0.5))
            fleet.start()
            futures = fleet.submit_many(requests_x[:8])
            fleet.close()
        outcomes = resolve_all(futures)
        assert all(isinstance(o, WorkerCrashError) for o in outcomes), outcomes
        stats = fleet.stats()
        assert stats["hangs"] >= 2          # both incarnations escalated
        assert stats["respawns"] == 1
        assert stats["failed"] == 8

    def test_idle_fleet_never_trips_the_monitor(self, model, requests_x):
        """Heartbeats separate 'idle' from 'hung': a fleet sitting without
        traffic for several hang timeouts must not burn its workers."""
        fleet = FleetServer(model, PS, lifecycle_config(
            heartbeat_s=0.1, hang_timeout_s=0.3))
        fleet.start()
        time.sleep(1.0)
        futures = fleet.submit_many(requests_x[:8])
        fleet.close()
        assert all(isinstance(o, int) for o in resolve_all(futures))
        stats = fleet.stats()
        assert stats["hangs"] == 0
        assert stats["respawns"] == 0


# ---------------------------------------------------------------------------
# Store client retry / circuit breaker
# ---------------------------------------------------------------------------

@pytest.fixture()
def service(tmp_path):
    server = EngineStoreServer(tmp_path / "store.sock",
                               cache_dir=tmp_path / "cache")
    with server:
        yield server


class TestStoreRetry:
    def test_transient_faults_retried_with_exponential_backoff(
            self, service, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "2")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_MS", "50")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_CAP_MS", "2000")
        client = RemoteEngineStore(service.socket_path, seed=0)
        sleeps: list = []
        client._sleep = sleeps.append
        with faults.installed(FaultPlan.parse("store.client.send=error:n=2")):
            assert client.ping()
        assert client.attempt_count == 3
        assert client.retry_count == 2
        # Jittered exponential: attempt k nominally 50 * 2**k ms, scaled by
        # a seeded factor in [0.5, 1.5).
        assert 0.025 <= sleeps[0] < 0.075
        assert 0.050 <= sleeps[1] < 0.150
        assert client.breaker_state == "closed"

    def test_server_side_fault_is_a_retryable_transport_failure(
            self, service, monkeypatch):
        """An injected server-side fault drops the connection instead of
        answering; the client sees a transport failure and retries into a
        healthy exchange — no warning, no protocol error."""
        monkeypatch.setenv("REPRO_STORE_RETRIES", "2")
        client = RemoteEngineStore(service.socket_path, seed=0)
        client._sleep = lambda _s: None
        with faults.installed(FaultPlan.parse("store.server.recv=error:n=1")):
            assert client.ping()
        assert client.attempt_count == 2
        assert client.retry_count == 1

    def test_backoff_is_seeded_and_capped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKOFF_MS", "50")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_CAP_MS", "200")
        one = RemoteEngineStore(tmp_path / "a.sock", seed=9)
        two = RemoteEngineStore(tmp_path / "b.sock", seed=9)
        series = [one._backoff_s(k) for k in range(6)]
        assert series == [two._backoff_s(k) for k in range(6)]
        assert all(s < 0.200 * 1.5 for s in series), "cap ignored"

    def test_protocol_errors_are_not_retried(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "3")
        client = RemoteEngineStore(service.socket_path, seed=0)
        with pytest.raises(StoreProtocolError):
            client._call(("no-such-op",))
        assert client.attempt_count == 1, "definitive verdicts must not retry"
        assert client.retry_count == 0


class TestCircuitBreaker:
    def _dead_client(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "0")
        monkeypatch.setenv("REPRO_STORE_BREAKER_FAILURES", "2")
        monkeypatch.setenv("REPRO_STORE_BREAKER_RESET_S", "30")
        client = RemoteEngineStore(tmp_path / "flaky.sock", seed=0)
        client._sleep = lambda _s: None
        clock = [0.0]
        client._now = lambda: clock[0]
        return client, clock

    def test_full_breaker_sequence(self, tmp_path, monkeypatch, recwarn):
        client, clock = self._dead_client(tmp_path, monkeypatch)
        # Two consecutive exhausted calls open the breaker ...
        assert not client.ping()
        assert client.breaker_state == "closed"
        assert not client.ping()
        assert client.breaker_state == "open"
        assert client.breaker_opens == 1
        assert client.attempt_count == 2
        # ... which fast-fails without touching the socket ...
        assert not client.ping()
        assert client.attempt_count == 2
        assert client.fastfail_count == 1
        # ... until the reset period elapses and one probe goes through.
        clock[0] = 31.0
        assert client.breaker_state == "half-open"
        assert not client.ping()            # probe fails, breaker reopens
        assert client.attempt_count == 3
        assert client.breaker_opens == 2
        assert client.breaker_state == "open"
        # The service comes back: the next half-open probe closes it.
        server = EngineStoreServer(tmp_path / "flaky.sock",
                                   cache_dir=tmp_path / "cache")
        with server:
            clock[0] = 62.0
            assert client.breaker_state == "half-open"
            assert client.ping()
            assert client.breaker_state == "closed"
        # Degradation stayed warn-once through the whole ordeal.
        unreachable = [w for w in recwarn.list
                       if "unreachable" in str(w.message)]
        assert len(unreachable) == 1

    def test_breaker_disabled_by_zero_threshold(self, tmp_path, monkeypatch,
                                                recwarn):
        client, _clock = self._dead_client(tmp_path, monkeypatch)
        monkeypatch.setenv("REPRO_STORE_BREAKER_FAILURES", "0")
        for _ in range(5):
            assert not client.ping()
        assert client.breaker_state == "closed"
        assert client.attempt_count == 5, "calls must keep probing"


# ---------------------------------------------------------------------------
# Eager pre-warm on precision-set swap (PR 6 follow-on)
# ---------------------------------------------------------------------------

class TestWarmOnSwap:
    def test_fleet_swap_prewarms_newly_owned_plans(self, model, requests_x):
        """Growing the live set must eagerly compile the new precision's
        plan on its owning worker — observable through the warm-ack
        ``plan_keys()`` introspection before any 6-bit request arrives."""
        fleet = FleetServer(model, PS.restrict(4),
                            lifecycle_config(workers=2))
        fleet.start()
        assert all(keys is None for keys in fleet.plan_keys().values()), \
            "no warm was requested yet; acks should be empty"
        fleet.swap_precision_set(PS)      # slot 0 newly owns 6-bit
        deadline = time.monotonic() + 30.0
        while True:
            reported = [keys for keys in fleet.plan_keys().values()
                        if keys is not None]
            if any(key[0] == 6 for keys in reported for key in keys):
                break
            assert time.monotonic() < deadline, \
                "swap never pre-warmed the 6-bit plan on its owner"
            time.sleep(0.02)
        # Traffic drawn from the grown set still drains drop-free.
        futures = [fleet.submit(x) for x in requests_x[:8]]
        fleet.close()
        assert all(isinstance(o, int) for o in resolve_all(futures))
