"""Tests for the model zoo and the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.data import DataLoader, DATASET_PRESETS, make_dataset
from repro.models import (
    available_models,
    build_model,
    preact_resnet18,
    resnet18,
    resnet50,
    vgg16,
    wide_resnet32,
    alexnet,
)
from repro.nn import Tensor
from repro.nn.layers import BatchNorm2d, SwitchableBatchNorm2d
from repro.quantization import Precision, PrecisionSet, set_model_precision


class TestModelZoo:
    @pytest.mark.parametrize("name", ["preact_resnet18", "wide_resnet32",
                                      "resnet18", "resnet50", "alexnet", "vgg16"])
    def test_forward_shape(self, name):
        model = build_model(name, num_classes=7, scale=8)
        out = model(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 7)

    def test_registry_lists_six_networks(self):
        assert len(available_models()) == 6

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("lenet")

    def test_backward_through_every_model(self):
        from repro.nn import functional as F
        for name in available_models():
            model = build_model(name, num_classes=4, scale=4)
            x = Tensor(np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32),
                       requires_grad=True)
            loss = F.cross_entropy(model(x), np.array([0, 1]))
            loss.backward()
            assert x.grad is not None
            grads = [p.grad for p in model.parameters() if p.grad is not None]
            assert len(grads) > 0

    def test_precision_set_creates_switchable_bn(self):
        ps = PrecisionSet([4, 8])
        model = build_model("preact_resnet18", precisions=ps, scale=4)
        sbn = [m for m in model.modules() if isinstance(m, SwitchableBatchNorm2d)]
        plain = [m for m in model.modules()
                 if type(m) is BatchNorm2d]
        assert sbn
        # Plain BN only appears inside SBN branches, never standalone.
        standalone = [m for m in plain
                      if not any(m is b for s in sbn for b in s._branches.values())]
        assert not standalone

    def test_no_precisions_creates_plain_bn(self):
        model = build_model("resnet18", scale=4)
        assert not any(isinstance(m, SwitchableBatchNorm2d) for m in model.modules())
        assert any(isinstance(m, BatchNorm2d) for m in model.modules())

    def test_wider_model_has_more_parameters(self):
        small = build_model("resnet18", scale=4)
        large = build_model("resnet18", scale=8)
        assert large.num_parameters() > small.num_parameters()

    def test_deterministic_construction(self):
        a = build_model("alexnet", scale=8, seed=3)
        b = build_model("alexnet", scale=8, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_precision_switch_changes_logits(self):
        ps = PrecisionSet([3, 8])
        model = build_model("vgg16", precisions=ps, scale=4)
        x = Tensor(np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32))
        set_model_precision(model, Precision(8))
        high = model(x).data.copy()
        set_model_precision(model, Precision(3))
        low = model(x).data
        assert not np.allclose(high, low)

    def test_imagenet_stem_downscales(self):
        model = resnet50(num_classes=10, width=8, imagenet_stem=True)
        out = model(Tensor(np.zeros((1, 3, 64, 64), dtype=np.float32)))
        assert out.shape == (1, 10)

    def test_wide_resnet_depth_validation(self):
        with pytest.raises(ValueError):
            wide_resnet32(depth=8)

    def test_direct_constructors(self):
        for ctor in (preact_resnet18, resnet18, vgg16, alexnet):
            model = ctor(num_classes=3, width=4) if ctor is not vgg16 else ctor(num_classes=3, width=4)
            out = model(Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32)))
            assert out.shape == (1, 3)


class TestSyntheticDatasets:
    def test_presets_cover_paper_datasets(self):
        assert set(DATASET_PRESETS) == {"cifar10", "cifar100", "svhn", "imagenet"}

    def test_shapes_and_ranges(self, tiny_dataset):
        c, h, w = tiny_dataset.image_shape
        assert tiny_dataset.x_train.shape[1:] == (c, h, w)
        assert tiny_dataset.x_train.dtype == np.float32
        assert tiny_dataset.x_train.min() >= 0.0
        assert tiny_dataset.x_train.max() <= 1.0
        assert tiny_dataset.y_train.max() < tiny_dataset.num_classes

    def test_deterministic_given_seed(self):
        a = make_dataset("cifar10", train_size=32, test_size=16)
        b = make_dataset("cifar10", train_size=32, test_size=16)
        assert np.allclose(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_different_seed_differs(self):
        a = make_dataset("cifar10", train_size=32, test_size=16, seed=0)
        b = make_dataset("cifar10", train_size=32, test_size=16, seed=1)
        assert not np.allclose(a.x_train, b.x_train)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            make_dataset("mnist")

    def test_all_classes_present(self):
        ds = make_dataset("cifar10", train_size=400, test_size=100)
        assert len(np.unique(ds.y_train)) == ds.num_classes

    def test_classes_are_separable_by_prototype_distance(self):
        """A nearest-prototype classifier should beat chance by a wide margin,
        confirming the class structure a CNN is supposed to learn."""
        ds = make_dataset("cifar10", train_size=64, test_size=128)
        protos = ds.prototypes().reshape(ds.num_classes, -1)
        flat = ds.x_test.reshape(len(ds.x_test), -1)
        distances = ((flat[:, None, :] - protos[None, :, :]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == ds.y_test).mean()
        assert accuracy > 0.8

    def test_subset_restricts_sizes(self, tiny_dataset):
        subset = tiny_dataset.subset(train=10, test=5)
        assert len(subset.x_train) == 10 and len(subset.x_test) == 5
        assert subset.num_classes == tiny_dataset.num_classes

    def test_imagenet_preset_is_larger_images(self):
        cfg = DATASET_PRESETS["imagenet"]
        assert cfg.image_shape[1] > DATASET_PRESETS["cifar10"].image_shape[1]


class TestDataLoader:
    def test_batch_count_and_shapes(self):
        x = np.zeros((50, 3, 4, 4), dtype=np.float32)
        y = np.zeros(50, dtype=np.int64)
        loader = DataLoader(x, y, batch_size=16)
        batches = list(loader)
        assert len(loader) == 4 and len(batches) == 4
        assert batches[0][0].shape == (16, 3, 4, 4)
        assert batches[-1][0].shape == (2, 3, 4, 4)

    def test_drop_last(self):
        loader = DataLoader(np.zeros((50, 2)), np.zeros(50), batch_size=16,
                            drop_last=True)
        assert len(loader) == 3
        assert all(len(xb) == 16 for xb, _ in loader)

    def test_shuffle_covers_all_samples(self):
        x = np.arange(40, dtype=np.float32).reshape(40, 1)
        y = np.arange(40)
        loader = DataLoader(x, y, batch_size=7, shuffle=True,
                            rng=np.random.default_rng(0))
        seen = np.concatenate([yb for _, yb in loader])
        assert sorted(seen.tolist()) == list(range(40))

    def test_no_shuffle_preserves_order(self):
        x = np.arange(10, dtype=np.float32).reshape(10, 1)
        y = np.arange(10)
        loader = DataLoader(x, y, batch_size=4, shuffle=False)
        first_batch = next(iter(loader))
        assert np.array_equal(first_batch[1], [0, 1, 2, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), np.zeros(4), batch_size=2)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), np.zeros(5), batch_size=0)
